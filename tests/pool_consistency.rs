//! Pool oracle: the persistent work-stealing executor is an *execution
//! detail*, never a semantic change. Every parallel path — batch
//! fan-out, parallel range refinement, kNN, join, subsequence scans,
//! sharded scatter-gather — must answer byte-identically to sequential
//! execution at every worker count, because `parallel_map` preserves
//! order and the per-item work is deterministic.
//!
//! Three levels:
//!
//! - a property test drives randomized relations through every query
//!   form at worker counts {1, 2, hardware}, plain and sharded, and
//!   demands byte-identical outputs (rows, order, counters);
//! - a panic-isolation test proves a panicking task poisons only its
//!   own result slot — the panic resurfaces on the caller and the pool
//!   keeps serving;
//! - a nested-fan-out test runs maps inside maps on a two-worker pool,
//!   which must complete (inner maps run inline on the owning worker)
//!   and still preserve order.

use proptest::prelude::*;
use tsq::core::executor::{self, Pool};
use tsq::core::SeriesRelation;
use tsq::lang::{Catalog, QueryOutput};
use tsq::TimeSeries;

/// Every parallel execution path, phrased over relation `w`. The
/// `WITH (threads = 2)` forms force a nested fan-out when the batch
/// itself already runs on the pool.
fn oracle_queries() -> Vec<String> {
    vec![
        "FIND SIMILAR TO w.s0 IN w WITHIN 3".to_string(),
        "FIND SIMILAR TO w.s0 IN w WITHIN 3 WITH (threads = 2)".to_string(),
        "FIND SIMILAR TO w.s1 IN w WITHIN 40 APPLY mavg(4)".to_string(),
        "FIND 5 NEAREST TO w.s1 IN w".to_string(),
        "FIND 5 NEAREST TO w.s1 IN w WITH (threads = 2)".to_string(),
        "JOIN w WITHIN 2".to_string(),
        "FIND SUBSEQUENCE OF [0, 0.5, 1, 0.5, 0, -0.5] IN w WITHIN 4 WINDOW 6".to_string(),
        "FIND 3 NEAREST SUBSEQUENCE OF [0, 0.5, 1, 0.5, 0, -0.5] IN w WINDOW 6".to_string(),
    ]
}

fn catalog_from(init: &[Vec<f64>], shards: usize) -> Catalog {
    let items: Vec<(String, TimeSeries)> = init
        .iter()
        .enumerate()
        .map(|(i, vals)| (format!("s{i}"), TimeSeries::new(vals.clone())))
        .collect();
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_labeled("w", items).unwrap())
        .unwrap();
    if shards > 1 {
        cat.run_mut(&format!("SHARD w INTO {shards} BY HASH"))
            .unwrap();
    }
    cat
}

fn run_all(cat: &Catalog, threads: usize) -> Vec<QueryOutput> {
    let (results, summary) = cat.run_batch(oracle_queries(), threads);
    assert_eq!(summary.threads, threads);
    results
        .into_iter()
        .map(|r| r.expect("oracle query must parse and execute"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Byte-identity across worker counts: for random data, plain and
    /// sharded, every query form answers identically at 1, 2, and
    /// hardware-width threads — rows, row order, and counters.
    #[test]
    fn pool_backed_execution_is_byte_identical_to_sequential(
        init in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 14..=14),
            5..=7,
        )
    ) {
        let widths = [1usize, 2, executor::default_threads()];
        for shards in [1usize, 3] {
            let cat = catalog_from(&init, shards);
            let want = run_all(&cat, 1);
            for &threads in &widths {
                let got = run_all(&cat, threads);
                prop_assert_eq!(
                    &got, &want,
                    "shards = {}, threads = {}", shards, threads
                );
            }
        }
    }
}

/// A panicking task poisons only its own result slot: the caller sees
/// the original panic payload after every item settles, and the pool's
/// workers survive to serve the next map.
#[test]
fn panicking_task_poisons_only_its_slot_and_pool_keeps_serving() {
    let pool = Pool::new(2);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.map(2, vec![0u32, 1, 2, 3], |i| {
            if i == 2 {
                panic!("boom");
            }
            i * 10
        })
    }));
    let payload = caught.expect_err("the panic must resurface on the caller");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "boom");
    // Same pool, next map: still fully operational.
    assert_eq!(pool.map(2, vec![1u32, 2, 3], |i| i + 1), vec![2, 3, 4]);
}

/// Nested fan-outs on a tiny pool must not deadlock: a worker that hits
/// an inner `map` runs it inline instead of blocking on its own queue.
#[test]
fn nested_fan_outs_complete_in_order_on_a_two_worker_pool() {
    let pool = std::sync::Arc::new(Pool::new(2));
    let inner_pool = std::sync::Arc::clone(&pool);
    let got = pool.map(4, (0..6u32).collect(), move |o| {
        inner_pool.map(4, (0..5u32).collect::<Vec<u32>>(), |i| o * 10 + i)
    });
    let want: Vec<Vec<u32>> = (0..6)
        .map(|o| (0..5).map(|i| o * 10 + i).collect())
        .collect();
    assert_eq!(got, want);
}

/// The process-wide pool counters are observable and monotone: a
/// parallel map accounts at least its helper tasks, and steals never
/// decrease.
#[test]
fn global_pool_counters_are_monotone_and_visible() {
    let before = executor::pool_stats();
    let out = executor::parallel_map(2, (0..64u64).collect::<Vec<u64>>(), |i| i * 3);
    assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<u64>>());
    let after = executor::pool_stats();
    assert!(after.tasks > before.tasks, "helper tasks must be counted");
    assert!(after.steals >= before.steals);
}
