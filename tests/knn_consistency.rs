//! Nearest-neighbor queries agree with exhaustive scans for every
//! transformation and space (the RKV95 pruning generalized to transformed
//! indexes must never dismiss a true neighbor).

use tsq_core::{FeatureSchema, IndexConfig, LinearTransform, SimilarityIndex, SpaceKind};
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};

fn assert_knn_matches_scan(idx: &SimilarityIndex, t: &LinearTransform, k: usize, qid: usize) {
    let q = idx.series(qid).unwrap().clone();
    let (got, _) = idx.knn_query(&q, k, t).unwrap();
    let want = idx.scan_knn(&q, k, t).unwrap();
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        // Distances must agree; ids may differ under exact ties.
        assert!(
            (g.distance - w.distance).abs() < 1e-9,
            "transform {}: {} vs {}",
            t.name(),
            g.distance,
            w.distance
        );
    }
}

#[test]
fn knn_polar_normal_form() {
    let rel = RandomWalkGenerator::new(4001).relation(250, 64);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    for t in [
        LinearTransform::identity(64),
        LinearTransform::moving_average(64, 5),
        LinearTransform::moving_average(64, 20),
        LinearTransform::reverse(64),
    ] {
        for k in [1usize, 5, 25] {
            assert_knn_matches_scan(&idx, &t, k, 13);
        }
    }
}

#[test]
fn knn_rectangular() {
    let rel = RandomWalkGenerator::new(4002).relation(200, 32);
    let cfg = IndexConfig {
        space: SpaceKind::Rectangular,
        ..IndexConfig::default()
    };
    let idx = SimilarityIndex::build(cfg, rel).unwrap();
    for t in [
        LinearTransform::identity(32),
        LinearTransform::reverse(32),
        LinearTransform::scale(32, 3.0),
    ] {
        assert_knn_matches_scan(&idx, &t, 10, 77);
    }
}

#[test]
fn knn_raw_schema() {
    let rel = StockGenerator::new(4003).relation(150, 64);
    for space in [SpaceKind::Polar, SpaceKind::Rectangular] {
        let cfg = IndexConfig {
            schema: FeatureSchema::Raw { k: 3 },
            space,
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, rel.clone()).unwrap();
        let t = LinearTransform::identity(64);
        assert_knn_matches_scan(&idx, &t, 7, 0);
    }
}

#[test]
fn knn_prunes_against_scan() {
    // Best-first search must touch far fewer entries than the relation
    // size times tree fanout would suggest.
    let rel = RandomWalkGenerator::new(4004).relation(2000, 64);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let q = idx.series(999).unwrap().clone();
    let t = LinearTransform::identity(64);
    let (_, stats) = idx.knn_query(&q, 3, &t).unwrap();
    assert!(
        stats.index.entries_tested < 2000,
        "expected pruning, tested {} entries",
        stats.index.entries_tested
    );
}

#[test]
fn knn_under_warp() {
    let mut gen = RandomWalkGenerator::new(4005);
    let mut rel = gen.relation(100, 32);
    let special = gen.series(32);
    rel.push(special.clone());
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let t = LinearTransform::time_warp(32, 3);
    let q = tsq_series::warp::stretch(&special, 3);
    let (knn, _) = idx.knn_query(&q, 1, &t).unwrap();
    assert_eq!(knn[0].id, 100);
    assert!(knn[0].distance < 1e-9);
}
