//! End-to-end service suite: a real `SharedCatalog` behind a real TCP
//! server. Answers through the binary wire protocol and the HTTP facade
//! must match direct in-process execution exactly; a writer must be able
//! to register a relation while the server chews a long batch; metrics
//! must account for everything; shutdown must drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tsq::core::SeriesRelation;
use tsq::lang::QueryOutput;
use tsq::series::generate::RandomWalkGenerator;
use tsq::service::{Client, ServiceConfig};
use tsq::{Catalog, SharedCatalog};

fn shared_catalog() -> SharedCatalog {
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series("walks", RandomWalkGenerator::new(41).relation(60, 64))
            .unwrap(),
    )
    .unwrap();
    SharedCatalog::new(cat)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        exec_threads: 2,
        poll_interval: Duration::from_millis(5),
        ..ServiceConfig::default()
    }
}

/// The queries the acceptance criteria call out: range, kNN, join,
/// subsequence.
fn acceptance_queries() -> Vec<String> {
    vec![
        "FIND SIMILAR TO walks.s3 IN walks WITHIN 2".to_string(),
        "FIND 5 NEAREST TO walks.s7 IN walks APPLY mavg(8)".to_string(),
        "JOIN walks WITHIN 1.5 APPLY mavg(6) USING INDEX".to_string(),
        "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 40 WINDOW 64".to_string(),
    ]
}

/// Row-by-row equality between a wire answer and the in-process oracle.
fn assert_reply_matches(reply: &tsq::service::QueryReply, oracle: &QueryOutput, query: &str) {
    assert_eq!(reply.plan, oracle.plan, "{query}");
    assert_eq!(reply.rows.len(), oracle.rows.len(), "{query}");
    for (wire, direct) in reply.rows.iter().zip(&oracle.rows) {
        assert_eq!(wire.a, direct.a, "{query}");
        assert_eq!(wire.b, direct.b, "{query}");
        assert_eq!(wire.offset, direct.offset.map(|o| o as u64), "{query}");
        assert_eq!(
            wire.distance.to_bits(),
            direct.distance.to_bits(),
            "{query}"
        );
    }
    assert_eq!(reply.stats, oracle.stats, "{query}");
}

#[test]
fn wire_answers_match_in_process_execution() {
    let shared = shared_catalog();
    let handle = tsq::lang::serve("127.0.0.1:0", shared.clone(), config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    for query in acceptance_queries() {
        let oracle = shared.run(&query).unwrap();
        let reply = client.query(&query).unwrap();
        assert_reply_matches(&reply, &oracle, &query);
    }

    // The same queries as one batch: slot order and content preserved.
    let queries = acceptance_queries();
    let slots = client.batch(&queries, 2).unwrap();
    assert_eq!(slots.len(), queries.len());
    for (query, slot) in queries.iter().zip(&slots) {
        let oracle = shared.run(query).unwrap();
        assert_reply_matches(slot.as_ref().unwrap(), &oracle, query);
    }

    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"queries_ok\":8"), "{stats}");

    let snap = handle.shutdown();
    assert_eq!(snap.queries_ok, 8);
    assert_eq!(snap.queries_err, 0);
    assert_eq!(snap.in_flight, 0);
}

#[test]
fn http_facade_matches_in_process_execution() {
    let shared = shared_catalog();
    let handle = tsq::lang::serve("127.0.0.1:0", shared.clone(), config()).unwrap();
    let addr = handle.addr();

    let query = "FIND 3 NEAREST TO walks.s2 IN walks";
    let oracle = shared.run(query).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{query}",
                query.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut answer = String::new();
    stream.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("HTTP/1.1 200 OK"), "{answer}");
    assert!(
        answer.contains(&format!("\"plan\":\"{}\"", oracle.plan)),
        "{answer}"
    );
    assert!(
        answer.contains(&format!("\"row_count\":{}", oracle.rows.len())),
        "{answer}"
    );
    // The top row (the query series itself at distance 0) is rendered.
    assert!(
        answer.contains(&format!("\"a\":\"{}\"", oracle.rows[0].a)),
        "{answer}"
    );

    // Unknown relation → 400 with the typed code.
    let bad = "FIND 1 NEAREST TO ghosts.s0 IN ghosts";
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{bad}",
                bad.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut answer = String::new();
    stream.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("HTTP/1.1 400"), "{answer}");
    assert!(answer.contains("\"error\":\"bad-query\""), "{answer}");

    // /metrics sees both outcomes.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut metrics = String::new();
    stream.read_to_string(&mut metrics).unwrap();
    assert!(metrics.contains("\"queries_ok\":1"), "{metrics}");
    assert!(metrics.contains("\"queries_err\":1"), "{metrics}");

    let snap = handle.shutdown();
    assert!(snap.http_requests >= 3);
}

#[test]
fn register_completes_while_server_chews_a_long_batch() {
    // The acceptance criterion for the batch-lock fix, through the full
    // network stack: a long batch is served over TCP while a writer
    // registers a new relation through the same shared catalog — the
    // writer must finish before the batch does, and the new relation
    // must be immediately queryable through the server.
    let shared = shared_catalog();
    let handle = tsq::lang::serve("127.0.0.1:0", shared.clone(), config()).unwrap();
    let addr = handle.addr();

    let batch: Vec<String> = (0..80)
        .map(|i| {
            format!(
                "JOIN walks WITHIN {} APPLY mavg(6) USING INDEX",
                1.0 + (i % 5) as f64 * 0.25
            )
        })
        .collect();
    let batch_thread = {
        let batch = batch.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.set_timeout(Some(Duration::from_secs(120))).unwrap();
            let slots = client.batch(&batch, 2).unwrap();
            (slots, Instant::now())
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    shared
        .register(
            SeriesRelation::from_series("fresh", RandomWalkGenerator::new(43).relation(12, 32))
                .unwrap(),
        )
        .unwrap();
    let writer_done = Instant::now();

    // Queryable through the server right away, on a new connection.
    let mut probe = Client::connect(addr).unwrap();
    probe.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let reply = probe.query("FIND 2 NEAREST TO fresh.s1 IN fresh").unwrap();
    assert_eq!(reply.rows.len(), 2);
    let probe_done = Instant::now();

    let (slots, batch_done) = batch_thread.join().unwrap();
    assert!(
        writer_done < batch_done && probe_done < batch_done,
        "register stalled behind the served batch"
    );
    assert_eq!(slots.len(), batch.len());
    assert!(slots.iter().all(Result::is_ok));

    let snap = handle.shutdown();
    assert_eq!(snap.queries_err, 0);
    assert_eq!(snap.queries_ok as usize, batch.len() + 1);
}
