//! Property-based round-trip suite for the persistence subsystem:
//! arbitrary catalogs (randomized relation counts, cardinalities, series
//! lengths and values — including varied-length relations for the
//! subsequence index) survive `save → open` with
//!
//! - **byte-identical snapshots** on re-serialization (which pins the
//!   R\*-tree node structure, entry order and every stored `f64` bit), and
//! - **identical answers and identical traversal statistics** for every
//!   query form: range, k-NN, join, and subsequence range/k-NN.
//!
//! This is the Lemma-1 promise extended across a process boundary: a
//! restored index is indistinguishable from the one that was saved.

use proptest::prelude::*;
use tsq_core::{
    IndexConfig, LinearTransform, QueryWindow, ScanMode, SimilarityIndex, SubseqConfig, SubseqIndex,
};
use tsq_lang::Catalog;
use tsq_series::TimeSeries;
use tsq_store::{Decoder, Encoder};

/// An equal-length relation for the whole-match index: `count` series of
/// length `len` with bounded values.
fn whole_relation(max_count: usize, max_len: usize) -> impl Strategy<Value = Vec<TimeSeries>> {
    (2usize..=max_count, 8usize..=max_len).prop_flat_map(|(count, len)| {
        prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, len..=len).prop_map(TimeSeries::new),
            count..=count,
        )
    })
}

/// A varied-length relation for the ST-index (lengths deliberately
/// heterogeneous; some may fall below the window and contribute nothing).
fn varied_relation(max_count: usize) -> impl Strategy<Value = Vec<TimeSeries>> {
    prop::collection::vec(
        (6usize..48).prop_flat_map(|len| {
            prop::collection::vec(-1e3f64..1e3, len..=len).prop_map(TimeSeries::new)
        }),
        2..=max_count,
    )
}

fn round_trip_catalog(cat: &Catalog) -> Catalog {
    let bytes = cat.snapshot_bytes().expect("serialize snapshot");
    let mut fresh = Catalog::new();
    fresh.restore_bytes(&bytes).expect("snapshot must restore");
    assert_eq!(
        bytes,
        fresh.snapshot_bytes().expect("re-serialize snapshot"),
        "re-serialization must be byte-identical"
    );
    fresh
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whole-match indexes: range + k-NN answers and traversal stats are
    /// identical after an in-memory save/open round trip.
    #[test]
    fn similarity_index_round_trips(rel in whole_relation(10, 40)) {
        let idx = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let mut enc = Encoder::new();
        idx.write_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = SimilarityIndex::read_from(&mut dec).unwrap();
        dec.finish().unwrap();
        restored.tree().validate();
        let mut enc2 = Encoder::new();
        restored.write_to(&mut enc2).unwrap();
        prop_assert_eq!(&bytes, &enc2.into_bytes(), "byte-identical tree state");

        let n = rel[0].len();
        let t = LinearTransform::identity(n);
        let ma = LinearTransform::moving_average(n, 3.min(n));
        for q in [&rel[0], &rel[rel.len() - 1]] {
            for eps in [0.0, 1.0, 25.0] {
                let (a, sa) = idx.range_query(q, eps, &t, &QueryWindow::default()).unwrap();
                let (b, sb) = restored.range_query(q, eps, &t, &QueryWindow::default()).unwrap();
                prop_assert_eq!(a, b);
                prop_assert_eq!(sa.index, sb.index, "traversal stats must match");
                prop_assert_eq!(sa.candidates, sb.candidates);
                prop_assert_eq!(sa.false_hits, sb.false_hits);
            }
            let (ka, ksa) = idx.knn_query(q, 3, &ma).unwrap();
            let (kb, ksb) = restored.knn_query(q, 3, &ma).unwrap();
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(ksa.index, ksb.index);
        }
    }

    /// ST-indexes over varied-length relations: subsequence range + k-NN
    /// agree (answers and stats) after the round trip, and both still
    /// match the sliding-scan oracle.
    #[test]
    fn subseq_index_round_trips(rel in varied_relation(8), window in 4usize..12) {
        let idx = SubseqIndex::build(SubseqConfig::new(window), rel.clone()).unwrap();
        let mut enc = Encoder::new();
        idx.write_to(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = SubseqIndex::read_from(&mut dec).unwrap();
        dec.finish().unwrap();
        restored.tree().validate();
        let mut enc2 = Encoder::new();
        restored.write_to(&mut enc2);
        prop_assert_eq!(&bytes, &enc2.into_bytes());

        // Query with a window cut from the longest stored series (one is
        // always >= 6; skip the rare case where none fits the window).
        let Some(src) = rel.iter().find(|s| s.len() >= window) else { return; };
        let q = TimeSeries::new(src.values()[..window].to_vec());
        for eps in [0.0, 2.0, 50.0] {
            let (a, sa) = idx.subseq_range(&q, eps).unwrap();
            let (b, sb) = restored.subseq_range(&q, eps).unwrap();
            prop_assert_eq!(&a, &b, "eps {}", eps);
            prop_assert_eq!(sa.index, sb.index);
            prop_assert_eq!(sa.candidates, sb.candidates);
            // And the restored index still equals the ground truth.
            let (scan, _) = restored.scan_subseq_range(&q, eps, ScanMode::Naive).unwrap();
            prop_assert_eq!(b, scan);
        }
        let (ka, _) = idx.subseq_knn(&q, 5).unwrap();
        let (kb, _) = restored.subseq_knn(&q, 5).unwrap();
        prop_assert_eq!(ka, kb);
    }

    /// Whole catalogs through the language layer: every query form
    /// (range, k-NN, join, subsequence) answers identically — rows and
    /// simulated disk accesses — on the restored catalog.
    #[test]
    fn catalog_round_trips(
        rel_a in whole_relation(8, 32),
        rel_b in whole_relation(6, 24),
    ) {
        let mut cat = Catalog::new();
        let len_a = rel_a[0].len();
        let len_b = rel_b[0].len();
        cat.register(tsq_core::SeriesRelation::from_series("alpha", rel_a).unwrap()).unwrap();
        cat.register(tsq_core::SeriesRelation::from_series("beta", rel_b).unwrap()).unwrap();
        let queries = [
            "FIND SIMILAR TO alpha.s0 IN alpha WITHIN 10".to_string(),
            "FIND 3 NEAREST TO beta.s1 IN beta".to_string(),
            "JOIN alpha WITHIN 2 USING INDEX".to_string(),
            "JOIN beta WITHIN 2 APPLY mavg(3) USING TREE".to_string(),
            format!("FIND SUBSEQUENCE OF alpha.s1 IN alpha WITHIN 20 WINDOW {len_a}"),
            format!("FIND 2 NEAREST SUBSEQUENCE OF beta.s0 IN beta WINDOW {len_b}"),
        ];
        // Prime the subsequence cache so the snapshot carries ST-indexes.
        let want: Vec<_> = queries.iter().map(|q| cat.run(q).unwrap()).collect();
        let fresh = round_trip_catalog(&cat);
        prop_assert_eq!(fresh.subseq_cache_len(), cat.subseq_cache_len());
        for (q, want) in queries.iter().zip(&want) {
            let got = fresh.run(q).unwrap();
            prop_assert_eq!(&got, want, "{}", q);
        }
    }
}
