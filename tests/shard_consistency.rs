//! Sharding oracle: a sharded relation is an *execution layout*, never a
//! semantic change. After **any** interleaving of appends and queries,
//! every query form on a sharded catalog must answer byte-identically —
//! rows, row order, distances bit-for-bit — to the unsharded engine
//! running on the same data, and the merged counters must be the exact
//! sum of the per-shard counters.
//!
//! Four levels:
//!
//! - a property test drives randomized shard counts (hash and range) and
//!   randomized append/query interleavings against an unsharded oracle
//!   catalog receiving the same appends;
//! - a tie-determinism test duplicates series so kNN distance ties cross
//!   shard boundaries, and demands the unsharded tie order survives the
//!   scatter-gather merge;
//! - a snapshot test proves a sharded catalog round-trips byte-identically
//!   through `save → open → save` and that the restored catalog keeps
//!   answering like the unsharded oracle;
//! - a live-server test runs the same parity through a real `tsq-service`
//!   server — binary wire protocol and HTTP/JSON facade — with `WITH`
//!   options in the query text.
//!
//! Counter policy: `WITH (force = scan)` plans visit exactly the same
//! series in the same per-shard order as the unsharded scan, so *all*
//! counters match. Index plans prune per-shard trees whose layouts
//! differ from the single big tree, so rows must still match exactly but
//! only the merged == Σ per-shard identity is pinned.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use tsq::core::plan::ExecStats;
use tsq::core::SeriesRelation;
use tsq::lang::{AppendRow, Catalog, QueryOutput};
use tsq::series::generate::RandomWalkGenerator;
use tsq::service::{Client, ServiceConfig};
use tsq::{SharedCatalog, TimeSeries};

/// The query forms the oracle pins, phrased over relation `w`. Every
/// scatter-gather merge path is covered: range, range + transform, kNN,
/// join (auto and forced), subsequence range, subsequence kNN.
fn oracle_queries() -> Vec<String> {
    vec![
        "FIND SIMILAR TO w.s0 IN w WITHIN 3".to_string(),
        "FIND SIMILAR TO w.s1 IN w WITHIN 40 APPLY mavg(4)".to_string(),
        "FIND 5 NEAREST TO w.s1 IN w".to_string(),
        "JOIN w WITHIN 2".to_string(),
        "JOIN w WITHIN 2 WITH (force = index)".to_string(),
        "FIND SUBSEQUENCE OF [0, 0.5, 1, 0.5, 0, -0.5] IN w WITHIN 4 WINDOW 6".to_string(),
        "FIND 3 NEAREST SUBSEQUENCE OF [0, 0.5, 1, 0.5, 0, -0.5] IN w WINDOW 6".to_string(),
    ]
}

/// Asserts the sharded answer equals the unsharded oracle answer:
/// byte-identical rows (order included), and merged counters that are
/// the exact sum of the per-shard counters.
fn assert_sharded_matches(sharded: &QueryOutput, oracle: &QueryOutput, q: &str) {
    assert_eq!(sharded.rows, oracle.rows, "{q}");
    assert!(
        oracle.shard_stats.is_empty(),
        "{q}: oracle must be unsharded"
    );
    assert_eq!(
        sharded.stats,
        ExecStats::sum(&sharded.shard_stats),
        "{q}: merged counters must be the exact sum of the shard counters"
    );
}

/// Initial uniform data plus append rounds; every round appends the same
/// point count to every series, so the relation stays uniform and every
/// query form keeps answering between rounds.
type ShardScript = (Vec<Vec<f64>>, Vec<Vec<f64>>, usize, usize);

fn shard_script() -> impl Strategy<Value = ShardScript> {
    (4usize..8, 12usize..16).prop_flat_map(|(count, len)| {
        (
            prop::collection::vec(
                prop::collection::vec(-50.0f64..50.0, len..=len),
                count..=count,
            ),
            // 1-3 append rounds of 1-3 points each (applied to every series).
            prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 1..4), 1..4),
            1usize..6,
            // 0 = hash, 1 = range (the shim has no bool strategy).
            0usize..2,
        )
    })
}

fn catalog_from(init: &[Vec<f64>]) -> Catalog {
    let items: Vec<(String, TimeSeries)> = init
        .iter()
        .enumerate()
        .map(|(i, vals)| (format!("s{i}"), TimeSeries::new(vals.clone())))
        .collect();
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_labeled("w", items).unwrap())
        .unwrap();
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The oracle invariant, property-tested: random shard counts × hash
    /// and range partitioning × append/query interleavings, always
    /// byte-identical to the unsharded engine on the same data.
    #[test]
    fn sharded_answers_are_byte_identical_under_append_interleavings(
        (init, rounds, shards, by_pick) in shard_script()
    ) {
        let mut sharded = catalog_from(&init);
        let mut oracle = catalog_from(&init);
        let by = if by_pick == 0 { "HASH" } else { "RANGE" };
        sharded
            .run_mut(&format!("SHARD w INTO {shards} BY {by}"))
            .unwrap();

        // Prime the subsequence cache on both sides so appends exercise
        // the incremental-extension path, not fresh builds.
        let sub_q = "FIND SUBSEQUENCE OF [0, 0.5, 1, 0.5, 0, -0.5] IN w WITHIN 4 WINDOW 6";
        sharded.run(sub_q).unwrap();
        oracle.run(sub_q).unwrap();

        for round in &rounds {
            let count = sharded.relation("w").unwrap().len();
            let rows: Vec<AppendRow> = (0..count)
                .map(|i| AppendRow {
                    label: format!("s{i}"),
                    values: round.clone(),
                })
                .collect();
            sharded.append("w", &rows).unwrap();
            oracle.append("w", &rows).unwrap();

            for q in oracle_queries() {
                let got = sharded.run(&q).unwrap();
                let want = oracle.run(&q).unwrap();
                if shards == 1 {
                    // SHARD INTO 1 restores plain unsharded execution.
                    prop_assert_eq!(got, want, "{}", q);
                } else {
                    assert_sharded_matches(&got, &want, &q);
                }
            }

            // A forced scan visits the same series in the same global
            // order on both sides: every counter matches, not just rows.
            let scan = "FIND SIMILAR TO w.s0 IN w WITHIN 3 WITH (force = scan)";
            let got = sharded.run(scan).unwrap();
            let want = oracle.run(scan).unwrap();
            prop_assert_eq!(&got.rows, &want.rows, "{}", scan);
            prop_assert_eq!(got.stats, want.stats, "{}", scan);

            // WITH (threads/shards) caps scatter width without changing
            // a single answer byte.
            let capped = "FIND 5 NEAREST TO w.s1 IN w WITH (threads = 2, shards = 1)";
            let plain = "FIND 5 NEAREST TO w.s1 IN w";
            prop_assert_eq!(
                sharded.run(capped).unwrap().rows,
                sharded.run(plain).unwrap().rows,
                "{}", capped
            );
        }
    }
}

/// kNN distance ties must break identically across the shard merge: a
/// relation of duplicated series puts exact-tie pairs on *different*
/// shards, and the gather must reproduce the unsharded tie order.
#[test]
fn knn_tie_order_survives_the_shard_merge() {
    let base = RandomWalkGenerator::new(31).relation(8, 24);
    // 16 series, each one an exact duplicate of another: s{i} == s{i+8}.
    let items: Vec<(String, TimeSeries)> = (0..16)
        .map(|i| (format!("s{i}"), base[i % 8].clone()))
        .collect();
    let mut oracle = Catalog::new();
    oracle
        .register(SeriesRelation::from_labeled("w", items.clone()).unwrap())
        .unwrap();

    for by in ["HASH", "RANGE"] {
        for shards in [2usize, 3, 5] {
            let mut sharded = Catalog::new();
            sharded
                .register(SeriesRelation::from_labeled("w", items.clone()).unwrap())
                .unwrap();
            sharded
                .run_mut(&format!("SHARD w INTO {shards} BY {by}"))
                .unwrap();
            for q in [
                // k cuts through a tie group: every answer holds ties.
                "FIND 3 NEAREST TO w.s0 IN w",
                "FIND 9 NEAREST TO w.s0 IN w",
                "FIND 16 NEAREST TO w.s3 IN w",
            ] {
                let got = sharded.run(q).unwrap();
                let want = oracle.run(q).unwrap();
                assert_sharded_matches(&got, &want, &format!("{q} [{shards} by {by}]"));
            }
        }
    }
}

/// A sharded catalog round-trips byte-identically through
/// `save → open → save`, and the restored catalog still answers exactly
/// like the unsharded oracle.
#[test]
fn sharded_snapshot_save_open_save_round_trips() {
    let walks = RandomWalkGenerator::new(59).relation(24, 20);
    let mut sharded = Catalog::new();
    sharded
        .register(SeriesRelation::from_series("w", walks.clone()).unwrap())
        .unwrap();
    sharded.run_mut("SHARD w INTO 4 BY RANGE").unwrap();
    // Append after sharding so the saved state exercises shard routing.
    sharded
        .run_mut("APPEND w CSV (s0, 1.5, -0.5) (s23, 0.25, 2)")
        .unwrap();
    let heal: Vec<String> = (1..23).map(|i| format!("(s{i}, 0.5, -1)")).collect();
    sharded
        .run_mut(&format!("APPEND w CSV {}", heal.join(" ")))
        .unwrap();

    let mut oracle = Catalog::new();
    let items: Vec<(String, TimeSeries)> = {
        let rel = sharded.relation("w").unwrap();
        (0..rel.len())
            .map(|id| {
                (
                    rel.label(id).unwrap().to_string(),
                    rel.get(id).unwrap().clone(),
                )
            })
            .collect()
    };
    oracle
        .register(SeriesRelation::from_labeled("w", items).unwrap())
        .unwrap();

    let bytes = sharded.snapshot_bytes().unwrap();
    let dir = std::env::temp_dir().join(format!("tsq-shard-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sharded.tsq");
    sharded.save(&path).unwrap();

    let mut restored = Catalog::new();
    restored.open(&path).unwrap();
    assert_eq!(
        restored.snapshot_bytes().unwrap(),
        bytes,
        "save → open → save must reproduce the sharded snapshot byte for byte"
    );
    let layout = restored
        .shard_layout("w")
        .expect("restored relation is sharded");
    assert_eq!(layout.1, 4, "shard count survives the round-trip");

    for q in oracle_queries() {
        let got = restored.run(&q).unwrap();
        let want = oracle.run(&q).unwrap();
        assert_sharded_matches(&got, &want, &q);
        assert_eq!(
            got.rows,
            sharded.run(&q).unwrap().rows,
            "{q}: restore must not change answers"
        );
    }
}

/// Live-server parity: the same byte-identity holds through a real
/// `tsq-service` server — binary wire protocol and the HTTP facade —
/// with `WITH` options travelling inside the query text.
#[test]
fn sharded_answers_match_the_oracle_through_a_live_server() {
    let walks = RandomWalkGenerator::new(67).relation(30, 24);
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_series("w", walks.clone()).unwrap())
        .unwrap();
    cat.run_mut("SHARD w INTO 3 BY HASH").unwrap();
    let shared = SharedCatalog::new(cat);

    let mut oracle = Catalog::new();
    oracle
        .register(SeriesRelation::from_series("w", walks).unwrap())
        .unwrap();

    let config = ServiceConfig {
        workers: 4,
        exec_threads: 2,
        poll_interval: Duration::from_millis(5),
        ..ServiceConfig::default()
    };
    let handle = tsq::lang::serve("127.0.0.1:0", shared.clone(), config).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let queries = [
        "FIND SIMILAR TO w.s0 IN w WITHIN 3".to_string(),
        "FIND 5 NEAREST TO w.s1 IN w".to_string(),
        "JOIN w WITHIN 2 WITH (force = index)".to_string(),
        "FIND SIMILAR TO w.s2 IN w WITHIN 3 WITH (force = scan, threads = 2)".to_string(),
        "FIND 4 NEAREST TO w.s3 IN w WITH (shards = 2)".to_string(),
    ];
    for q in &queries {
        let want = oracle.run(q).unwrap();
        let reply = client.query(q).unwrap();
        assert_eq!(reply.rows.len(), want.rows.len(), "{q}");
        for (w, d) in reply.rows.iter().zip(&want.rows) {
            assert_eq!(w.a, d.a, "{q}");
            assert_eq!(w.b, d.b, "{q}");
            assert_eq!(w.offset, d.offset.map(|o| o as u64), "{q}");
            assert_eq!(w.distance.to_bits(), d.distance.to_bits(), "{q}");
        }
        assert_eq!(
            reply.shard_stats.len(),
            3,
            "{q}: one counter block per shard"
        );
        assert_eq!(
            reply.stats,
            ExecStats::sum(&reply.shard_stats),
            "{q}: wire-decoded merged counters must sum the shard blocks"
        );
    }

    // APPEND through the wire routes to the owning shards; answers track.
    let heal: Vec<String> = (0..30).map(|i| format!("(s{i}, 0.75, -0.25)")).collect();
    client
        .query(&format!("APPEND w CSV {}", heal.join(" ")))
        .unwrap();
    oracle
        .run_mut(&format!("APPEND w CSV {}", heal.join(" ")))
        .unwrap();
    let q = "FIND 5 NEAREST TO w.s1 IN w";
    let want = oracle.run(q).unwrap();
    let reply = client.query(q).unwrap();
    for (w, d) in reply.rows.iter().zip(&want.rows) {
        assert_eq!(w.a, d.a, "{q}");
        assert_eq!(w.distance.to_bits(), d.distance.to_bits(), "{q}");
    }

    // HTTP facade: the JSON reply carries the per-shard breakdown and
    // the Sharded plan name for a WITH-optioned query.
    let q = "FIND 3 NEAREST TO w.s2 IN w WITH (threads = 2)";
    let want = oracle.run(q).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{q}",
                q.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut answer = String::new();
    stream.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("HTTP/1.1 200 OK"), "{answer}");
    assert!(answer.contains("\"plan\":\"Sharded(3):"), "{answer}");
    assert!(
        answer.contains(&format!("\"row_count\":{}", want.rows.len())),
        "{answer}"
    );
    assert!(answer.contains("\"shards\":[{"), "{answer}");
    assert!(
        answer.contains(&format!("\"a\":\"{}\"", want.rows[0].a)),
        "{answer}"
    );

    // The metrics endpoint counts scatter-gather traffic.
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"sharded_queries\":"), "{stats}");
    assert!(stats.contains("\"shards_probed\":"), "{stats}");

    let snap = handle.shutdown();
    assert_eq!(snap.in_flight, 0);
    assert_eq!(snap.queries_err, 0, "no query may fail");
    assert!(snap.sharded_queries >= queries.len() as u64);
    assert!(snap.shards_probed >= 3 * queries.len() as u64);
}
