//! Concurrency suite: many clients hammering one catalog must see exactly
//! the answers a single-threaded client would, and one misbehaving query
//! must never take the service down.
//!
//! Four properties are pinned here, end to end through the query language:
//!
//! 1. **Oracle agreement** — concurrent readers, batched execution, the
//!    parallel filter/refine range query, and parallel index builds all
//!    return results byte-identical to their sequential oracles, for every
//!    thread count tried.
//! 2. **Poison resilience** — a query thread that panics mid-flight (the
//!    pre-fix failure mode: `.lock().unwrap()` on a poisoned catalog
//!    mutex) leaves the catalog fully usable for every later client.
//! 3. **Typed rejection of non-finite inputs** — NaN/∞ die at the lexer
//!    or engine boundary with typed errors, never inside a comparison.
//! 4. **Cache discipline** — the per-(relation, window) ST-index cache is
//!    invalidated on relation mutation and LRU-bounded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tsq::core::{
    executor, BatchQuery, IndexConfig, LinearTransform, QueryExecutor, QueryWindow, SeriesRelation,
    SimilarityIndex,
};
use tsq::lang::LangError;
use tsq::series::generate::{RandomWalkGenerator, StockGenerator};
use tsq::{Catalog, SharedCatalog, TimeSeries};

fn shared_catalog() -> SharedCatalog {
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series("walks", RandomWalkGenerator::new(31).relation(80, 64))
            .unwrap(),
    )
    .unwrap();
    cat.register(
        SeriesRelation::from_series("stocks", StockGenerator::new(32).relation(60, 64)).unwrap(),
    )
    .unwrap();
    SharedCatalog::new(cat)
}

/// A mixed workload touching both relations and every query form.
fn workload() -> Vec<String> {
    let mut queries = Vec::new();
    for i in 0..10 {
        queries.push(format!("FIND SIMILAR TO walks.s{i} IN walks WITHIN 2"));
        queries.push(format!(
            "FIND 5 NEAREST TO stocks.s{i} IN stocks APPLY mavg(8)"
        ));
        queries.push(format!(
            "FIND SUBSEQUENCE OF walks.s{i} IN walks WITHIN 40 WINDOW 64"
        ));
        queries.push(format!(
            "FIND 3 NEAREST SUBSEQUENCE OF stocks.s{i} IN stocks WINDOW 64"
        ));
    }
    queries.push("JOIN walks WITHIN 1.5 APPLY mavg(6) USING INDEX".to_string());
    queries
}

#[test]
fn concurrent_readers_agree_with_sequential_oracle() {
    let shared = shared_catalog();
    let queries = workload();
    let oracle: Vec<_> = queries.iter().map(|q| shared.run(q)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let shared = shared.clone();
            let queries = &queries;
            let oracle = &oracle;
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() * 4 {
                    break;
                }
                let q = i % queries.len();
                assert_eq!(shared.run(&queries[q]), oracle[q], "query {q}");
            });
        }
    });
}

#[test]
fn batched_execution_agrees_with_sequential_oracle() {
    let shared = shared_catalog();
    let queries = workload();
    let oracle: Vec<_> = queries.iter().map(|q| shared.run(q)).collect();
    for threads in [1usize, 2, 4, 8] {
        let (results, summary) = shared.run_batch(queries.clone(), threads);
        assert_eq!(results, oracle, "threads = {threads}");
        assert_eq!(summary.queries, queries.len());
        assert_eq!(summary.errors, 0);
        assert!(summary.nodes_visited > 0);
        assert!(summary.queries_per_second() > 0.0);
    }
}

#[test]
fn register_completes_while_long_batch_in_flight() {
    // Regression: `SharedCatalog::run_batch` used to hold the catalog
    // read lock for the whole batch, so a concurrent `register` (write
    // lock) stalled until every queued query had run. The lock is now
    // taken per query: a writer waits for at most the queries currently
    // executing, and the batch's answers are still byte-identical to the
    // sequential oracle.
    let shared = shared_catalog();
    let queries: Vec<String> = (0..100)
        .map(|i| {
            format!(
                "JOIN walks WITHIN {} APPLY mavg(6) USING INDEX",
                1.0 + (i % 5) as f64 * 0.25
            )
        })
        .collect();
    let oracle: Vec<_> = queries.iter().map(|q| shared.run(q)).collect();
    let batch_thread = {
        let shared = shared.clone();
        let queries = queries.clone();
        std::thread::spawn(move || {
            let out = shared.run_batch(queries, 2);
            (out, Instant::now())
        })
    };
    // Give the batch a head start, then register mid-flight.
    std::thread::sleep(Duration::from_millis(30));
    shared
        .register(
            SeriesRelation::from_series("late", RandomWalkGenerator::new(77).relation(10, 32))
                .unwrap(),
        )
        .unwrap();
    let writer_done = Instant::now();
    // The new relation is queryable immediately — not after the batch.
    assert!(shared.run("FIND 2 NEAREST TO late.s0 IN late").is_ok());
    let probe_done = Instant::now();
    let ((results, summary), batch_done) = batch_thread.join().unwrap();
    assert!(
        writer_done < batch_done && probe_done < batch_done,
        "writer stalled behind the whole batch: the per-query lock regressed \
         (batch finished {:?} before the writer)",
        writer_done.saturating_duration_since(batch_done)
    );
    assert_eq!(results, oracle);
    assert_eq!(summary.queries, queries.len());
    assert_eq!(summary.errors, 0);
}

#[test]
fn core_executor_and_parallel_range_agree_with_oracle() {
    let rel = RandomWalkGenerator::new(33).relation(250, 64);
    let index = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
    let t = LinearTransform::moving_average(64, 6);
    // Parallel filter + refine within one query.
    let (seq, _) = index
        .range_query(&rel[7], 2.5, &t, &QueryWindow::default())
        .unwrap();
    for threads in [2usize, 5] {
        let (par, _) = index
            .range_query_parallel(&rel[7], 2.5, &t, &QueryWindow::default(), threads)
            .unwrap();
        assert_eq!(par, seq, "threads = {threads}");
    }
    // Batched fan-out across queries.
    let batch: Vec<BatchQuery> = (0..16)
        .map(|i| BatchQuery::Range {
            q: rel[i].clone(),
            eps: 2.0,
            transform: t.clone(),
            window: QueryWindow::default(),
        })
        .collect();
    let (seq_results, _) = QueryExecutor::new(1).run_batch(&index, batch.clone());
    let (par_results, stats) = QueryExecutor::new(4).run_batch(&index, batch);
    let seq_rows: Vec<_> = seq_results.into_iter().map(|r| r.unwrap().0).collect();
    let par_rows: Vec<_> = par_results.into_iter().map(|r| r.unwrap().0).collect();
    assert_eq!(par_rows, seq_rows);
    assert_eq!(stats.queries, 16);
    assert_eq!(stats.errors, 0);
}

#[test]
fn panicking_client_leaves_service_available() {
    // Service-level smoke: a client thread that dies does not disturb any
    // other client. (The guards here drop before the unwind, so this does
    // not poison a lock by itself — the failing-before tests that poison
    // the inner cache lock and the outer catalog lock directly live in
    // `crates/lang/src/exec.rs`, where the private locks are reachable.)
    let shared = shared_catalog();
    let probe = "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 40 WINDOW 64";
    let want = shared.run(probe).unwrap();
    let crashing = shared.clone();
    let handle = std::thread::spawn(move || {
        crashing.run(probe).unwrap();
        panic!("client bug");
    });
    assert!(handle.join().is_err());
    // Every later client still gets full service: cache hits, cache
    // misses, registration, and batches.
    assert_eq!(shared.run(probe).unwrap(), want);
    shared
        .register(
            SeriesRelation::from_series("fresh", RandomWalkGenerator::new(99).relation(10, 32))
                .unwrap(),
        )
        .unwrap();
    assert!(shared.run("FIND 2 NEAREST TO fresh.s1 IN fresh").is_ok());
    let (results, summary) = shared.run_batch(workload(), 4);
    assert_eq!(summary.errors, 0);
    assert_eq!(results.len(), summary.queries);
}

#[test]
fn non_finite_inputs_rejected_with_typed_errors() {
    let shared = shared_catalog();
    // Lexer boundary: overflowing literals.
    assert!(matches!(
        shared.run("FIND SIMILAR TO walks.s0 IN walks WITHIN 1e999"),
        Err(LangError::Lex { .. })
    ));
    assert!(matches!(
        shared.run("FIND 3 NEAREST TO [1e400, 2, 3] IN walks"),
        Err(LangError::Lex { .. })
    ));
    // Engine boundary: NaN thresholds via the core API.
    let rel = RandomWalkGenerator::new(34).relation(20, 32);
    let index = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
    let t = LinearTransform::identity(32);
    for eps in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(matches!(
            index.range_query(&rel[0], eps, &t, &QueryWindow::default()),
            Err(tsq::core::Error::NonFinite { .. })
        ));
    }
    // Value boundary: series construction.
    assert!(TimeSeries::try_new(vec![0.0, f64::NEG_INFINITY]).is_err());
}

#[test]
fn bad_nearest_counts_rejected() {
    let shared = shared_catalog();
    for src in [
        "FIND 1e20 NEAREST TO walks.s0 IN walks",
        "FIND 2.7 NEAREST TO walks.s0 IN walks",
        "FIND 0 NEAREST TO walks.s0 IN walks",
    ] {
        assert!(
            matches!(shared.run(src), Err(LangError::Parse { .. })),
            "{src}"
        );
    }
}

#[test]
fn subseq_cache_bounded_and_invalidated_through_shared_handle() {
    let mut cat = Catalog::new();
    cat.set_subseq_cache_capacity(2);
    cat.register(
        SeriesRelation::from_series("walks", RandomWalkGenerator::new(35).relation(12, 64))
            .unwrap(),
    )
    .unwrap();
    let shared = SharedCatalog::new(cat);
    for w in [8usize, 12, 16, 24] {
        let vals: Vec<String> = (0..w).map(|i| format!("{i}")).collect();
        shared
            .run(&format!(
                "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 100 WINDOW {w}",
                vals.join(", ")
            ))
            .unwrap();
    }
    // Capacity 2 held despite 4 distinct windows; answers stayed correct
    // (each run above succeeded against a freshly built or cached index).
    shared.with_relation("walks", |rel| assert!(rel.is_some()));
}

#[test]
fn parallel_build_threads_never_change_answers() {
    let mut g = RandomWalkGenerator::new(36);
    let rel: Vec<TimeSeries> = (0..20).map(|i| g.series(100 + (i % 4) * 17)).collect();
    let q = TimeSeries::new(rel[5].values()[10..42].to_vec());
    let seq = tsq::core::SubseqIndex::build(tsq::core::SubseqConfig::new(32), rel.clone()).unwrap();
    let (want, _) = seq.subseq_range(&q, 4.0).unwrap();
    for threads in [2usize, 3, executor::default_threads().max(2)] {
        let par = tsq::core::SubseqIndex::build_parallel(
            tsq::core::SubseqConfig::new(32),
            rel.clone(),
            threads,
        )
        .unwrap();
        assert_eq!(
            par.subseq_range(&q, 4.0).unwrap().0,
            want,
            "threads = {threads}"
        );
    }
}
