//! Oracle suite for the subsequence ST-index: on randomized relations
//! (varied series lengths, seeds and window sizes), the index answers must
//! equal the naive sliding-scan ground truth **exactly** — Lemma 1's
//! no-false-dismissal guarantee restated for subsequence queries.
//!
//! Two independent oracles cross-check every configuration:
//! - `subseq_range` vs. a naive full-distance sliding scan (match sets are
//!   compared as exact `(series, offset)` sets, plus distances);
//! - `subseq_knn` vs. a brute-force scan over every window (distances must
//!   agree to 1e-9; ids may differ only under exact ties).

use tsq_core::{ScanMode, SubseqConfig, SubseqIndex, SubseqMatch};
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};
use tsq_series::TimeSeries;

/// A relation of random walks with deliberately varied lengths.
fn varied_relation(seed: u64, count: usize, base_len: usize) -> Vec<TimeSeries> {
    let mut g = RandomWalkGenerator::new(seed);
    (0..count)
        .map(|i| g.series(base_len + (i * 13) % (base_len / 2 + 1)))
        .collect()
}

/// A query window sliced out of a stored series, perturbed so it is not an
/// exact resident (exercises near-boundary distances).
fn probe(series: &TimeSeries, start: usize, window: usize, jitter: f64) -> TimeSeries {
    TimeSeries::new(
        series.values()[start..start + window]
            .iter()
            .enumerate()
            .map(|(i, v)| v + jitter * ((i as f64 * 0.9).sin()))
            .collect(),
    )
}

fn assert_range_matches(idx: &SubseqIndex, q: &TimeSeries, eps: f64, label: &str) {
    let (indexed, stats) = idx.subseq_range(q, eps).unwrap();
    let (scan, scan_stats) = idx.scan_subseq_range(q, eps, ScanMode::Naive).unwrap();
    assert_eq!(
        indexed, scan,
        "{label}: index and naive sliding scan disagree at eps {eps}"
    );
    // The scan always pays for every window; the index never pays more.
    assert_eq!(scan_stats.windows, idx.windows_total());
    assert!(
        stats.candidates <= idx.windows_total(),
        "{label}: candidates {} > windows {}",
        stats.candidates,
        idx.windows_total()
    );
}

fn assert_knn_matches(idx: &SubseqIndex, q: &TimeSeries, k: usize, label: &str) {
    let (got, _) = idx.subseq_knn(q, k).unwrap();
    let want = idx.scan_subseq_knn(q, k).unwrap();
    assert_eq!(got.len(), want.len(), "{label}: k {k}");
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(
            (g.distance - w.distance).abs() < 1e-9,
            "{label}: k {k}, rank {i}: {} vs {}",
            g.distance,
            w.distance
        );
    }
}

#[test]
fn range_oracle_across_seeds_windows_and_thresholds() {
    for seed in [1u64, 2, 3] {
        for window in [4usize, 9, 16, 31] {
            let rel = varied_relation(seed * 100, 10, 48);
            let idx = SubseqIndex::build(SubseqConfig::new(window), rel.clone()).unwrap();
            for (qid, start, jitter) in [(0usize, 0usize, 0.0), (3, 5, 0.3), (7, 11, 1.5)] {
                let q = probe(&rel[qid], start, window, jitter);
                for eps in [0.0, 0.25, 1.0, 4.0, 16.0, 1e6] {
                    assert_range_matches(
                        &idx,
                        &q,
                        eps,
                        &format!("seed {seed}, w {window}, q ({qid},{start},{jitter})"),
                    );
                }
            }
        }
    }
}

#[test]
fn range_oracle_matches_early_abandoning_scan_too() {
    let rel = varied_relation(42, 12, 64);
    let idx = SubseqIndex::build(SubseqConfig::new(12), rel.clone()).unwrap();
    let q = probe(&rel[5], 20, 12, 0.7);
    for eps in [0.5, 2.0, 8.0] {
        let (naive, _) = idx.scan_subseq_range(&q, eps, ScanMode::Naive).unwrap();
        let (ea, ea_stats) = idx
            .scan_subseq_range(&q, eps, ScanMode::EarlyAbandon)
            .unwrap();
        assert_eq!(naive, ea, "scan modes disagree at eps {eps}");
        assert_eq!(ea_stats.windows, idx.windows_total());
        let (indexed, _) = idx.subseq_range(&q, eps).unwrap();
        assert_eq!(indexed, naive);
    }
}

#[test]
fn knn_oracle_across_seeds_and_windows() {
    for seed in [11u64, 12] {
        for window in [5usize, 16, 24] {
            let rel = varied_relation(seed, 8, 50);
            let idx = SubseqIndex::build(SubseqConfig::new(window), rel.clone()).unwrap();
            for (qid, start, jitter) in [(1usize, 2usize, 0.0), (4, 7, 0.9)] {
                let q = probe(&rel[qid], start, window, jitter);
                for k in [1usize, 3, 10, 40, 1000] {
                    assert_knn_matches(
                        &idx,
                        &q,
                        k,
                        &format!("seed {seed}, w {window}, q ({qid},{start},{jitter})"),
                    );
                }
            }
        }
    }
}

#[test]
fn knn_distances_are_sorted_and_self_window_is_first() {
    let rel = varied_relation(99, 10, 60);
    let idx = SubseqIndex::build(SubseqConfig::new(16), rel.clone()).unwrap();
    let q = probe(&rel[2], 9, 16, 0.0); // exact resident window
    let (got, _) = idx.subseq_knn(&q, 12).unwrap();
    assert_eq!(got.len(), 12);
    assert_eq!((got[0].series, got[0].offset), (2, 9));
    assert!(got[0].distance < 1e-9);
    for pair in got.windows(2) {
        assert!(pair[0].distance <= pair[1].distance + 1e-12);
    }
}

#[test]
fn stock_workload_and_trail_size_ablation_agree() {
    // Different trail sizes change only the grouping, never the answer.
    let rel: Vec<TimeSeries> = {
        let mut g = StockGenerator::new(2024);
        g.relation(6, 96)
    };
    let q = probe(&rel[3], 40, 20, 0.4);
    let mut answers: Vec<Vec<SubseqMatch>> = Vec::new();
    for trail in [1usize, 4, 16, 64] {
        let cfg = SubseqConfig {
            trail,
            ..SubseqConfig::new(20)
        };
        let idx = SubseqIndex::build(cfg, rel.clone()).unwrap();
        let (matches, _) = idx.subseq_range(&q, 3.0).unwrap();
        let (scan, _) = idx.scan_subseq_range(&q, 3.0, ScanMode::Naive).unwrap();
        assert_eq!(matches, scan, "trail {trail}");
        answers.push(matches);
    }
    for w in answers.windows(2) {
        assert_eq!(w[0], w[1], "answers differ across trail sizes");
    }
}

#[test]
fn coefficient_count_never_changes_the_answer() {
    // More indexed coefficients prune harder but the exact post-check
    // keeps the answer identical (and false hits shrink monotonically in
    // expectation — asserted loosely via candidate counts).
    let rel = varied_relation(7, 9, 72);
    let q = probe(&rel[0], 13, 18, 0.6);
    let mut prev_candidates = usize::MAX;
    let mut reference: Option<Vec<SubseqMatch>> = None;
    for k in [1usize, 2, 4, 8] {
        let cfg = SubseqConfig {
            k,
            ..SubseqConfig::new(18)
        };
        let idx = SubseqIndex::build(cfg, rel.clone()).unwrap();
        let (matches, stats) = idx.subseq_range(&q, 2.0).unwrap();
        match &reference {
            None => reference = Some(matches),
            Some(want) => assert_eq!(&matches, want, "k {k}"),
        }
        // Not strictly monotone in theory (trail MBRs interact), but never
        // wildly worse: allow slack while catching regressions.
        assert!(
            stats.candidates <= prev_candidates.saturating_mul(2),
            "k {k}: candidates exploded ({} after {prev_candidates})",
            stats.candidates
        );
        prev_candidates = stats.candidates;
    }
}

#[test]
fn large_magnitude_data_keeps_the_guarantee() {
    // Sliding-DFT drift scales with the stored coefficients' magnitude;
    // the build-time trail padding must absorb it even when values are
    // ~1e5, far beyond the other tests' ranges.
    let rel: Vec<TimeSeries> = varied_relation(31, 8, 64)
        .into_iter()
        .map(|s| s.scale(1e5))
        .collect();
    let idx = SubseqIndex::build(SubseqConfig::new(16), rel.clone()).unwrap();
    for (qid, start) in [(0usize, 0usize), (5, 30)] {
        let q = probe(&rel[qid], start, 16, 250.0);
        for eps in [0.0, 1e3, 1e5] {
            assert_range_matches(&idx, &q, eps, &format!("magnitude 1e5, q ({qid},{start})"));
        }
        assert_knn_matches(&idx, &q, 5, "magnitude 1e5");
    }
}

#[test]
fn index_beats_scan_candidate_counts_on_selective_queries() {
    // The acceptance criterion's shape: on a bench-like workload the index
    // examines strictly fewer windows than the scan for selective eps.
    let rel = varied_relation(1234, 20, 128);
    let idx = SubseqIndex::build(SubseqConfig::new(32), rel.clone()).unwrap();
    let q = probe(&rel[10], 30, 32, 0.5);
    let (_, stats) = idx.subseq_range(&q, 1.0).unwrap();
    assert!(
        stats.candidates < idx.windows_total(),
        "index examined {} of {} windows",
        stats.candidates,
        idx.windows_total()
    );
}
