//! Streaming-ingest oracle: after **any** interleaving of appends and
//! queries, every query form must answer exactly like a catalog freshly
//! rebuilt from the final data.
//!
//! Three levels:
//!
//! - a property test drives randomized append scripts through the
//!   language-level [`Catalog::append`] path and compares every round
//!   against a rebuilt catalog (byte-identical whole-series answers,
//!   `EXPLAIN ANALYZE` included; identical subsequence row sets and
//!   candidate counters);
//! - a concurrency test drives `APPEND` through a live `tsq-service`
//!   server interleaved with queries and batches, then replays the
//!   append script sequentially and demands the same equivalence;
//! - a snapshot test proves appended state round-trips byte-identically
//!   through `save → open → save`.
//!
//! Counter policy (same as the unit suites): whole-series forms repack
//! canonically, so rows, plans and *all* counters match a fresh build.
//! An incrementally-extended ST-index holds the same trail entries as a
//! fresh one but may pack them into a different node layout, so
//! subsequence forms compare canonicalized rows plus the
//! candidate-level counters (`candidates`/`refined`/`false_hits`) and
//! leave `nodes_visited`/`disk_accesses` to the layout.

use std::time::Duration;

use proptest::prelude::*;
use tsq::core::SeriesRelation;
use tsq::lang::{AppendRow, Catalog, QueryOutput, Row};
use tsq::series::generate::RandomWalkGenerator;
use tsq::service::{Client, IngestRow, ServiceConfig};
use tsq::{SharedCatalog, TimeSeries};

/// A fresh catalog rebuilt from `cat`'s current (post-append) data.
fn rebuilt(cat: &Catalog, name: &str) -> Catalog {
    let rel = cat.relation(name).unwrap();
    let items: Vec<(String, TimeSeries)> = (0..rel.len())
        .map(|id| {
            (
                rel.label(id).unwrap().to_string(),
                rel.get(id).unwrap().clone(),
            )
        })
        .collect();
    let mut fresh = Catalog::new();
    fresh
        .register(SeriesRelation::from_labeled(name, items).unwrap())
        .unwrap();
    fresh
}

/// Sorts subsequence rows into a canonical order: an extended tree and a
/// fresh build may traverse in different orders, the row *set* may not.
fn canonical(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|x, y| {
        (x.distance.to_bits(), &x.a, x.offset).cmp(&(y.distance.to_bits(), &y.a, y.offset))
    });
    rows
}

/// Asserts the subsequence counter policy between a live answer and a
/// rebuilt-oracle answer.
fn assert_subseq_matches(a: &QueryOutput, b: &QueryOutput, q: &str) {
    assert_eq!(canonical(a.rows.clone()), canonical(b.rows.clone()), "{q}");
    assert_eq!(a.plan, b.plan, "{q}");
    assert_eq!(a.stats.candidates, b.stats.candidates, "{q}");
    assert_eq!(a.stats.refined, b.stats.refined, "{q}");
    assert_eq!(a.stats.false_hits, b.stats.false_hits, "{q}");
}

/// An inline `[v1, v2, ...]` literal for the first `n` points of a
/// stored series — a probe that keeps matching before and after appends
/// (appends only ever extend tails).
fn literal_prefix(cat: &Catalog, relation: &str, label: &str, n: usize) -> String {
    let vals: Vec<String> = cat
        .relation(relation)
        .unwrap()
        .get_by_label(label)
        .unwrap()
        .values()[..n]
        .iter()
        .map(|v| format!("{v}"))
        .collect();
    format!("[{}]", vals.join(", "))
}

/// Initial series data plus append rounds of `(series index, values)`.
type IngestScript = (Vec<Vec<f64>>, Vec<Vec<(usize, Vec<f64>)>>);

/// Random ingest scripts: an initial uniform relation (`count` series of
/// `len` points) plus 1-3 append rounds, each a batch of rows targeting
/// existing series with 1-3 finite values. Rounds may leave the relation
/// ragged mid-script; whichever state a round lands in is compared.
fn ingest_script() -> impl Strategy<Value = IngestScript> {
    (3usize..6, 12usize..17).prop_flat_map(|(count, len)| {
        (
            prop::collection::vec(
                prop::collection::vec(-50.0f64..50.0, len..=len),
                count..=count,
            ),
            prop::collection::vec(
                prop::collection::vec(
                    (0usize..count, prop::collection::vec(-50.0f64..50.0, 1..4)),
                    1..6,
                ),
                1..4,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The oracle invariant, property-tested at the language level:
    /// after every append round, every query form on the incrementally
    /// maintained catalog matches a catalog rebuilt from scratch.
    #[test]
    fn appends_match_a_freshly_rebuilt_catalog(
        (init, rounds) in ingest_script()
    ) {
        let items: Vec<(String, TimeSeries)> = init
            .into_iter()
            .enumerate()
            .map(|(i, vals)| (format!("s{i}"), TimeSeries::new(vals)))
            .collect();
        let mut cat = Catalog::new();
        cat.register(SeriesRelation::from_labeled("w", items).unwrap())
            .unwrap();

        // Prime the ST-index cache *before* appending so the cached
        // index answers through the incremental extension path, and
        // build the probes from stored data (a prefix always self-hits).
        let probe = literal_prefix(&cat, "w", "s0", 8);
        let sub_q = format!("FIND SUBSEQUENCE OF {probe} IN w WITHIN 6 WINDOW 8");
        let knn_sub_q = format!("FIND 2 NEAREST SUBSEQUENCE OF {probe} IN w WINDOW 8");
        cat.run(&sub_q).unwrap();

        for round in rounds {
            let rows: Vec<AppendRow> = round
                .into_iter()
                .map(|(idx, values)| AppendRow {
                    label: format!("s{idx}"),
                    values,
                })
                .collect();
            let out = cat.append("w", &rows).unwrap();
            prop_assert_eq!(&out.plan, "Append");

            let fresh = rebuilt(&cat, "w");
            let whole_series = [
                "FIND SIMILAR TO w.s0 IN w WITHIN 3".to_string(),
                "FIND SIMILAR TO w.s1 IN w WITHIN 40 APPLY mavg(4)".to_string(),
                "FIND 2 NEAREST TO w.s1 IN w".to_string(),
                "JOIN w WITHIN 2 USING INDEX".to_string(),
                "JOIN w WITHIN 2".to_string(),
                "EXPLAIN ANALYZE FIND SIMILAR TO w.s0 IN w WITHIN 3".to_string(),
            ];
            if cat.relation("w").unwrap().is_uniform() {
                // Byte-identical: rows, every counter, the rendered
                // EXPLAIN ANALYZE text.
                for q in &whole_series {
                    prop_assert_eq!(cat.run(q).unwrap(), fresh.run(q).unwrap(), "{}", q);
                }
            } else {
                // A ragged relation gates whole-series forms with the
                // same typed error on both sides.
                for q in &whole_series {
                    let live = cat.run(q).unwrap_err().to_string();
                    let oracle = fresh.run(q).unwrap_err().to_string();
                    prop_assert_eq!(live, oracle, "{}", q);
                }
            }
            // Subsequence search works mid-ingest, ragged or not.
            assert_subseq_matches(&cat.run(&sub_q).unwrap(), &fresh.run(&sub_q).unwrap(), &sub_q);
            let a = cat.run(&knn_sub_q).unwrap();
            let b = fresh.run(&knn_sub_q).unwrap();
            prop_assert_eq!(canonical(a.rows), canonical(b.rows), "{}", &knn_sub_q);
        }
    }
}

/// Satellite: live-server concurrency. Four appender threads stream
/// points through `Client::append` while readers and a batch thread
/// query the same server. Each thread owns a disjoint set of series and
/// appends to *all* of them per statement, so the final state is
/// independent of thread interleaving — replaying the script
/// sequentially yields the oracle.
#[test]
fn concurrent_appends_through_a_live_server_match_a_sequential_oracle() {
    const SERIES: usize = 40;
    const LEN: usize = 32;
    const THREADS: usize = 4;
    const ROUNDS: usize = 5;

    // One appended value, deterministic per (thread, round, series, slot).
    fn point(t: usize, r: usize, i: usize, j: usize) -> f64 {
        ((t * 131 + r * 17 + i * 7 + j) % 23) as f64 * 0.25 - 2.0
    }

    let initial = RandomWalkGenerator::new(47).relation(SERIES, LEN);
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_series("walks", initial.clone()).unwrap())
        .unwrap();
    let shared = SharedCatalog::new(cat);

    // Prime the ST-index cache so concurrent appends exercise the
    // incremental extension path, not fresh builds.
    let probe = {
        let vals: Vec<String> = initial[0].values()[..LEN]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        format!("[{}]", vals.join(", "))
    };
    let sub_q = format!("FIND SUBSEQUENCE OF {probe} IN walks WITHIN 20 WINDOW {LEN}");
    shared.run(&sub_q).unwrap();

    let config = ServiceConfig {
        workers: 6,
        exec_threads: 2,
        poll_interval: Duration::from_millis(5),
        ..ServiceConfig::default()
    };
    let handle = tsq::lang::serve("127.0.0.1:0", shared.clone(), config).unwrap();
    let addr = handle.addr();

    let appenders: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                for r in 0..ROUNDS {
                    // Two points for every owned series in one atomic
                    // statement.
                    let rows: Vec<IngestRow> = (0..SERIES)
                        .filter(|i| i % THREADS == t)
                        .map(|i| IngestRow {
                            label: format!("s{i}"),
                            values: vec![point(t, r, i, 0), point(t, r, i, 1)],
                        })
                        .collect();
                    let reply = client.append("walks", rows).unwrap();
                    assert_eq!(reply.plan, "Append");
                    assert_eq!(reply.rows.len(), SERIES / THREADS);
                }
            })
        })
        .collect();

    // Readers race the appenders: subsequence search always answers;
    // whole-series forms may hit the typed ragged gate mid-ingest, but
    // the connection must survive every answer either way.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let sub_q = sub_q.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                for _ in 0..15 {
                    let reply = client.query(&sub_q).unwrap();
                    assert!(!reply.rows.is_empty());
                    match client.query("FIND 3 NEAREST TO walks.s1 IN walks") {
                        Ok(reply) => assert_eq!(reply.rows.len(), 3),
                        Err(tsq::service::ClientError::Remote(e)) => {
                            assert!(e.message.contains("ragged"), "{e}")
                        }
                        Err(other) => panic!("connection must survive: {other}"),
                    }
                }
            })
        })
        .collect();
    let batcher = {
        let sub_q = sub_q.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.set_timeout(Some(Duration::from_secs(60))).unwrap();
            for _ in 0..5 {
                let batch = vec![
                    sub_q.clone(),
                    "FIND 2 NEAREST TO walks.s2 IN walks".to_string(),
                ];
                let slots = client.batch(&batch, 2).unwrap();
                assert_eq!(slots.len(), 2);
                assert!(slots[0].is_ok());
            }
        })
    };

    for t in appenders {
        t.join().unwrap();
    }
    for t in readers {
        t.join().unwrap();
    }
    batcher.join().unwrap();

    // Sequential oracle: replay the script in thread order (series sets
    // are disjoint, so any true interleaving reaches the same state).
    let expected: Vec<(String, TimeSeries)> = (0..SERIES)
        .map(|i| {
            let t = i % THREADS;
            let mut vals = initial[i].values().to_vec();
            for r in 0..ROUNDS {
                vals.push(point(t, r, i, 0));
                vals.push(point(t, r, i, 1));
            }
            (format!("s{i}"), TimeSeries::new(vals))
        })
        .collect();
    // No append was lost, duplicated or torn: the live relation holds
    // exactly the scripted data, bit for bit.
    shared.with_relation("walks", |rel| {
        let rel = rel.expect("walks is registered");
        assert_eq!(rel.len(), SERIES);
        for (label, series) in &expected {
            let got = rel.get_by_label(label).unwrap();
            assert_eq!(got.len(), LEN + 2 * ROUNDS, "{label}");
            let same = got
                .values()
                .iter()
                .zip(series.values())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{label}: appended data diverged from the script");
        }
    });

    let mut oracle = Catalog::new();
    oracle
        .register(SeriesRelation::from_labeled("walks", expected).unwrap())
        .unwrap();
    for q in [
        "FIND SIMILAR TO walks.s3 IN walks WITHIN 2",
        "FIND 5 NEAREST TO walks.s7 IN walks APPLY mavg(8)",
        "JOIN walks WITHIN 1.5 APPLY mavg(6) USING INDEX",
        "EXPLAIN ANALYZE FIND SIMILAR TO walks.s3 IN walks WITHIN 2",
        "EXPLAIN ANALYZE JOIN walks WITHIN 1.5 USING TREE",
    ] {
        assert_eq!(shared.run(q).unwrap(), oracle.run(q).unwrap(), "{q}");
    }
    assert_subseq_matches(
        &shared.run(&sub_q).unwrap(),
        &oracle.run(&sub_q).unwrap(),
        &sub_q,
    );

    // The server answers from the appended state too: one wire query
    // must match the in-process view bit for bit.
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let q = "FIND 4 NEAREST TO walks.s5 IN walks";
    let wire = client.query(q).unwrap();
    let direct = shared.run(q).unwrap();
    assert_eq!(wire.plan, direct.plan);
    assert_eq!(wire.rows.len(), direct.rows.len());
    for (w, d) in wire.rows.iter().zip(&direct.rows) {
        assert_eq!(w.a, d.a);
        assert_eq!(w.distance.to_bits(), d.distance.to_bits());
    }
    assert_eq!(wire.stats, direct.stats);

    let snap = handle.shutdown();
    assert_eq!(snap.in_flight, 0);
    assert!(snap.plans.get("Append").copied().unwrap_or(0) >= (THREADS * ROUNDS) as u64);
}

/// Snapshots round-trip appended state byte-identically: `save → open →
/// save` reproduces the file, and the restored catalog answers every
/// query form — subsequence traversal counters included, because the
/// extended tree's node structure is preserved verbatim — exactly like
/// the live catalog it was saved from.
#[test]
fn appended_catalog_snapshot_round_trips_byte_identically() {
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series("walks", RandomWalkGenerator::new(53).relation(20, 24))
            .unwrap(),
    )
    .unwrap();
    // Prime the cache, then append through both the single-series and
    // the batched CSV form, ending uniform at length 27.
    let probe = literal_prefix(&cat, "walks", "s2", 8);
    let sub_q = format!("FIND SUBSEQUENCE OF {probe} IN walks WITHIN 5 WINDOW 8");
    cat.run(&sub_q).unwrap();
    cat.run_mut("APPEND walks s0 VALUES (0.5, -1.25, 2.0)")
        .unwrap();
    let catch_up: Vec<String> = (1..20)
        .map(|i| format!("(s{i}, 0.25, {i}.5, -2)"))
        .collect();
    cat.run_mut(&format!("APPEND walks CSV {}", catch_up.join(" ")))
        .unwrap();

    let bytes = cat.snapshot_bytes().unwrap();
    let dir = std::env::temp_dir().join(format!("tsq-ingest-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("appended.tsq");
    cat.save(&path).unwrap();

    let mut restored = Catalog::new();
    restored.open(&path).unwrap();
    assert_eq!(
        restored.snapshot_bytes().unwrap(),
        bytes,
        "save → open → save must reproduce the appended snapshot byte for byte"
    );
    for q in [
        "FIND SIMILAR TO walks.s0 IN walks WITHIN 2".to_string(),
        "FIND 4 NEAREST TO walks.s3 IN walks".to_string(),
        "JOIN walks WITHIN 1.5 USING INDEX".to_string(),
        "EXPLAIN ANALYZE FIND 4 NEAREST TO walks.s3 IN walks".to_string(),
        sub_q,
    ] {
        assert_eq!(cat.run(&q).unwrap(), restored.run(&q).unwrap(), "{q}");
    }
}
