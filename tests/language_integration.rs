//! The query language produces exactly what direct engine calls produce.

use tsq_core::{
    IndexConfig, LinearTransform, QueryWindow, ScanMode, SeriesRelation, SimilarityIndex,
};
use tsq_lang::{Catalog, LangError};
use tsq_series::generate::StockGenerator;

fn setup() -> (Catalog, SimilarityIndex, Vec<tsq_series::TimeSeries>) {
    let prices = StockGenerator::new(5001).relation(120, 64);
    let labeled = prices
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, s)| (format!("TK{i:03}"), s))
        .collect();
    let relation = SeriesRelation::from_labeled("stocks", labeled).unwrap();
    let mut catalog = Catalog::new();
    catalog.register(relation).unwrap();
    let index = SimilarityIndex::build(IndexConfig::default(), prices.clone()).unwrap();
    (catalog, index, prices)
}

#[test]
fn similar_equals_engine_range_query() {
    let (catalog, index, prices) = setup();
    let out = catalog
        .run("FIND SIMILAR TO stocks.TK005 IN stocks WITHIN 3 APPLY mavg(10)")
        .unwrap();
    let t = LinearTransform::moving_average(64, 10);
    let (matches, _) = index
        .range_query(&prices[5], 3.0, &t, &QueryWindow::default())
        .unwrap();
    assert_eq!(out.rows.len(), matches.len());
    for (row, m) in out.rows.iter().zip(&matches) {
        assert_eq!(row.a, format!("TK{:03}", m.id));
        assert!((row.distance - m.distance).abs() < 1e-12);
    }
}

#[test]
fn nearest_equals_engine_knn() {
    let (catalog, index, prices) = setup();
    let out = catalog
        .run("FIND 7 NEAREST TO stocks.TK000 IN stocks APPLY reverse")
        .unwrap();
    let t = LinearTransform::reverse(64);
    let (matches, _) = index.knn_query(&prices[0], 7, &t).unwrap();
    assert_eq!(out.rows.len(), 7);
    for (row, m) in out.rows.iter().zip(&matches) {
        assert!((row.distance - m.distance).abs() < 1e-12);
    }
}

#[test]
fn join_equals_engine_join() {
    let (catalog, index, _) = setup();
    let out = catalog
        .run("JOIN stocks WITHIN 1.4 APPLY mavg(20) USING SCAN")
        .unwrap();
    let t = LinearTransform::moving_average(64, 20);
    let outcome = index.join_scan(1.4, &t, ScanMode::EarlyAbandon).unwrap();
    assert_eq!(out.rows.len(), outcome.pairs.len());
}

#[test]
fn unsafe_transform_surfaces_as_engine_error() {
    // mavg has complex multipliers; in a rectangular-space catalog that is
    // an unsafe transformation and must surface as an engine error.
    let prices = StockGenerator::new(5002).relation(30, 32);
    let relation = SeriesRelation::from_series("r", prices).unwrap();
    let cfg = IndexConfig {
        space: tsq_core::SpaceKind::Rectangular,
        ..IndexConfig::default()
    };
    let mut catalog = Catalog::with_config(cfg);
    catalog.register(relation).unwrap();
    let err = catalog
        .run("FIND SIMILAR TO r.s0 IN r WITHIN 1 APPLY mavg(4)")
        .unwrap_err();
    assert!(matches!(
        err,
        LangError::Engine(tsq_core::Error::UnsafeTransform { .. })
    ));
}

#[test]
fn window_clause_equals_engine_window() {
    let (catalog, index, prices) = setup();
    let m = prices[8].mean();
    let out = catalog
        .run(&format!(
            "FIND SIMILAR TO stocks.TK008 IN stocks WITHIN 50 WHERE MEAN BETWEEN {} AND {}",
            m - 2.0,
            m + 2.0
        ))
        .unwrap();
    let w = QueryWindow {
        mean: Some((m - 2.0, m + 2.0)),
        std: None,
    };
    let (matches, _) = index
        .range_query(&prices[8], 50.0, &LinearTransform::identity(64), &w)
        .unwrap();
    assert_eq!(out.rows.len(), matches.len());
}
