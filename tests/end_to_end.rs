//! End-to-end Lemma-1 verification: the transformed-index query pipeline
//! returns exactly the answer set of a sequential scan, for every
//! transformation kind, both coordinate spaces, and both feature schemas.

use tsq_core::{
    FeatureSchema, IndexConfig, LinearTransform, QueryWindow, ScanMode, SimilarityIndex, SpaceKind,
};
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};

fn polar_transforms(n: usize) -> Vec<LinearTransform> {
    vec![
        LinearTransform::identity(n),
        LinearTransform::moving_average(n, 3),
        LinearTransform::moving_average(n, 20),
        LinearTransform::weighted_moving_average(n, &[0.5, 0.3, 0.2]),
        LinearTransform::reverse(n),
        LinearTransform::scale(n, -1.5),
        LinearTransform::shift(n, 4.0),
        LinearTransform::moving_average(n, 5)
            .then(&LinearTransform::reverse(n))
            .unwrap(),
    ]
}

fn rect_transforms(n: usize) -> Vec<LinearTransform> {
    vec![
        LinearTransform::identity(n),
        LinearTransform::reverse(n),
        LinearTransform::scale(n, 2.0),
        LinearTransform::shift(n, -3.0),
    ]
}

#[test]
fn no_false_dismissals_polar_normal_form() {
    let rel = RandomWalkGenerator::new(1001).relation(300, 64);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    for t in polar_transforms(64) {
        for (qid, eps) in [(0usize, 0.5), (42, 1.5), (123, 3.0)] {
            let q = idx.series(qid).unwrap().clone();
            let (scan, _) = idx.scan_range(&q, eps, &t, ScanMode::Naive).unwrap();
            let (indexed, stats) = idx
                .range_query(&q, eps, &t, &QueryWindow::default())
                .unwrap();
            assert_eq!(scan, indexed, "transform {} qid {qid} eps {eps}", t.name());
            // The index must actually prune (not degenerate to a scan).
            assert!(
                stats.index.entries_tested < 2 * idx.len() as u64,
                "no pruning for {}",
                t.name()
            );
        }
    }
}

#[test]
fn no_false_dismissals_rectangular() {
    let rel = RandomWalkGenerator::new(1002).relation(250, 32);
    let cfg = IndexConfig {
        space: SpaceKind::Rectangular,
        ..IndexConfig::default()
    };
    let idx = SimilarityIndex::build(cfg, rel).unwrap();
    for t in rect_transforms(32) {
        let q = idx.series(7).unwrap().clone();
        for eps in [0.4, 1.2, 4.0] {
            let (scan, _) = idx.scan_range(&q, eps, &t, ScanMode::Naive).unwrap();
            let (indexed, _) = idx
                .range_query(&q, eps, &t, &QueryWindow::default())
                .unwrap();
            assert_eq!(scan, indexed, "transform {} eps {eps}", t.name());
        }
    }
}

#[test]
fn no_false_dismissals_raw_schema() {
    let rel = RandomWalkGenerator::new(1003).relation(200, 32);
    for space in [SpaceKind::Polar, SpaceKind::Rectangular] {
        let cfg = IndexConfig {
            schema: FeatureSchema::Raw { k: 3 },
            space,
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, rel.clone()).unwrap();
        let transforms = match space {
            SpaceKind::Polar => vec![
                LinearTransform::identity(32),
                LinearTransform::moving_average(32, 4),
                LinearTransform::scale_raw(32, -2.0),
            ],
            SpaceKind::Rectangular => vec![
                LinearTransform::identity(32),
                LinearTransform::shift_raw(32, 5.0),
                LinearTransform::scale_raw(32, 0.5),
            ],
        };
        for t in transforms {
            let q = idx.series(11).unwrap().clone();
            for eps in [1.0, 10.0, 60.0] {
                let (scan, _) = idx.scan_range(&q, eps, &t, ScanMode::Naive).unwrap();
                let (indexed, _) = idx
                    .range_query(&q, eps, &t, &QueryWindow::default())
                    .unwrap();
                assert_eq!(
                    scan,
                    indexed,
                    "space {space:?} transform {} eps {eps}",
                    t.name()
                );
            }
        }
    }
}

#[test]
fn varying_k_never_loses_answers() {
    // Larger k prunes more, but the answer set is invariant (Lemma 1).
    let rel = StockGenerator::new(1004).relation(200, 128);
    let t = LinearTransform::moving_average(128, 20);
    let q = rel[5].clone();
    let mut reference: Option<Vec<tsq_core::Match>> = None;
    for k in 1..=5 {
        let cfg = IndexConfig {
            schema: FeatureSchema::NormalForm { k },
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, rel.clone()).unwrap();
        let (matches, _) = idx
            .range_query(&q, 2.0, &t, &QueryWindow::default())
            .unwrap();
        match &reference {
            None => reference = Some(matches),
            Some(r) => assert_eq!(r, &matches, "k = {k}"),
        }
    }
}

#[test]
fn candidate_counts_shrink_with_k() {
    // More coefficients -> tighter filter -> fewer false hits (the
    // monotonicity that motivates the paper's cut-off discussion).
    let rel = RandomWalkGenerator::new(1005).relation(600, 64);
    let q = rel[3].clone();
    let t = LinearTransform::identity(64);
    let mut last = u64::MAX;
    for k in [1usize, 2, 4] {
        let cfg = IndexConfig {
            schema: FeatureSchema::NormalForm { k },
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, rel.clone()).unwrap();
        let (_, stats) = idx
            .range_query(&q, 1.0, &t, &QueryWindow::default())
            .unwrap();
        let cand = stats.candidates as u64;
        assert!(
            cand <= last,
            "candidates should not grow with k: {cand} after {last}"
        );
        last = cand;
    }
}

#[test]
fn parallel_scan_and_tree_join_cross_check() {
    let rel = StockGenerator::new(1006).relation(150, 64);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let t = LinearTransform::moving_average(64, 10);
    let q = idx.series(0).unwrap().clone();
    let (serial, _) = idx.scan_range(&q, 3.0, &t, ScanMode::EarlyAbandon).unwrap();
    let (parallel, _) = idx.scan_range_parallel(&q, 3.0, &t, 4).unwrap();
    assert_eq!(serial, parallel);

    let a = idx.join_index(1.0, &t).unwrap();
    let b = idx.join_tree(1.0, &t).unwrap();
    let mut ka: Vec<_> = a.pairs.iter().map(|p| (p.a, p.b)).collect();
    let mut kb: Vec<_> = b.pairs.iter().map(|p| (p.a, p.b)).collect();
    ka.sort_unstable();
    kb.sort_unstable();
    assert_eq!(ka, kb);
}
