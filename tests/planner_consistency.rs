//! Planner correctness property suite.
//!
//! Two invariants across randomized catalogs and every query form:
//!
//! 1. **Plan-independence of answers.** The planner-chosen plan returns
//!    rows identical to the forced-scan oracle (same ids/pairs/offsets;
//!    distances within float tolerance) — whatever access path the cost
//!    model picks, the *answer* never changes. Forced-index plans agree
//!    too.
//! 2. **Snapshot plan stability.** A `save → open` round trip restores
//!    the persisted [`RelationStats`], so the restored catalog renders
//!    byte-for-byte identical `EXPLAIN` output and picks the same plans.
//!
//! Plus the `EXPLAIN ANALYZE` contract: the counters in the rendered text
//! are exactly the [`tsq_lang::QueryOutput::stats`] of the run.

use proptest::prelude::*;
use tsq_core::{
    execute_plan, JoinHint, LinearTransform, LogicalPlan, PlanPreference, PlanRows, Planner,
    QueryWindow, RelationStats, ScanMode, SeriesRelation, SimilarityIndex,
};
use tsq_lang::Catalog;
use tsq_series::generate::RandomWalkGenerator;
use tsq_series::TimeSeries;

fn relation(max_count: usize, max_len: usize) -> impl Strategy<Value = Vec<TimeSeries>> {
    (4usize..=max_count, 8usize..=max_len).prop_flat_map(|(count, len)| {
        prop::collection::vec(
            prop::collection::vec(-1e2f64..1e2, len..=len).prop_map(TimeSeries::new),
            count..=count,
        )
    })
}

fn assert_whole_rows_equal(a: &PlanRows, b: &PlanRows, what: &str) {
    let (PlanRows::Whole(a), PlanRows::Whole(b)) = (a, b) else {
        panic!("{what}: expected whole-series rows");
    };
    assert_eq!(
        a.iter().map(|m| m.id).collect::<Vec<_>>(),
        b.iter().map(|m| m.id).collect::<Vec<_>>(),
        "{what}: answer ids differ between plans"
    );
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x.distance - y.distance).abs() < 1e-9,
            "{what}: distances diverge ({} vs {})",
            x.distance,
            y.distance
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Range queries: Auto / ForceScan / ForceIndex all return the
    /// forced-scan oracle's rows, across selectivities.
    #[test]
    fn range_plans_agree_with_scan_oracle(
        rel in relation(24, 40),
        eps in 0.0f64..30.0,
        smooth in 0u8..2,
    ) {
        let len = rel[0].len();
        let idx = SimilarityIndex::build(Default::default(), rel).unwrap();
        let stats = RelationStats::from_index(&idx);
        let t = if smooth == 1 && len >= 4 {
            LinearTransform::moving_average(len, 3)
        } else {
            LinearTransform::identity(len)
        };
        let logical = LogicalPlan::Range {
            relation: "r".into(),
            query: idx.series(0).unwrap().clone(),
            eps,
            transform: t,
            window: QueryWindow::default(),
        };
        let run = |pref: PlanPreference| {
            let choice = Planner::new(&idx, &stats).with_preference(pref).plan(&logical, None).unwrap();
            execute_plan(&logical, &choice.plan, &idx, None).unwrap().0
        };
        let oracle = run(PlanPreference::ForceScan);
        assert_whole_rows_equal(&run(PlanPreference::Auto), &oracle, "auto vs scan");
        assert_whole_rows_equal(&run(PlanPreference::ForceIndex), &oracle, "index vs scan");
    }

    /// K-NN queries: both access paths produce the same neighbor set.
    #[test]
    fn knn_plans_agree_with_scan_oracle(rel in relation(20, 32), k in 1usize..8) {
        let len = rel[0].len();
        let idx = SimilarityIndex::build(Default::default(), rel).unwrap();
        let stats = RelationStats::from_index(&idx);
        let logical = LogicalPlan::Knn {
            relation: "r".into(),
            query: idx.series(1).unwrap().clone(),
            k,
            transform: LinearTransform::identity(len),
        };
        let run = |pref: PlanPreference| {
            let choice = Planner::new(&idx, &stats).with_preference(pref).plan(&logical, None).unwrap();
            execute_plan(&logical, &choice.plan, &idx, None).unwrap().0
        };
        let oracle = run(PlanPreference::ForceScan);
        // Neighbor *distances* must agree exactly (ids may permute only
        // between exactly-tied distances, which random data never hits).
        assert_whole_rows_equal(&run(PlanPreference::Auto), &oracle, "auto vs scan");
        assert_whole_rows_equal(&run(PlanPreference::ForceIndex), &oracle, "index vs scan");
    }

    /// Un-hinted joins: every strategy the planner may pick returns the
    /// scan oracle's unordered pair set, once per pair.
    #[test]
    fn join_plans_agree_with_scan_oracle(rel in relation(16, 24), eps in 0.0f64..20.0) {
        let len = rel[0].len();
        let idx = SimilarityIndex::build(Default::default(), rel).unwrap();
        let stats = RelationStats::from_index(&idx);
        let t = LinearTransform::identity(len);
        let logical = LogicalPlan::Join {
            relation: "r".into(),
            eps,
            transform: t.clone(),
            hint: None,
        };
        let oracle = idx.join_scan(eps, &t, ScanMode::Naive).unwrap();
        let want: Vec<(usize, usize)> = oracle.pairs.iter().map(|p| (p.a, p.b)).collect();
        for pref in [PlanPreference::Auto, PlanPreference::ForceScan, PlanPreference::ForceIndex] {
            let choice = Planner::new(&idx, &stats).with_preference(pref).plan(&logical, None).unwrap();
            let (rows, _) = execute_plan(&logical, &choice.plan, &idx, None).unwrap();
            let PlanRows::Pairs(pairs) = rows else { panic!("join returns pairs") };
            let got: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
            prop_assert_eq!(&got, &want, "{:?}", pref);
        }
        // Hinted joins keep the paper's twice-per-pair accounting.
        let hinted = LogicalPlan::Join {
            relation: "r".into(),
            eps,
            transform: t,
            hint: Some(JoinHint::Tree),
        };
        let choice = Planner::new(&idx, &stats).plan(&hinted, None).unwrap();
        let (rows, _) = execute_plan(&hinted, &choice.plan, &idx, None).unwrap();
        prop_assert_eq!(rows.len(), 2 * want.len());
    }
}

/// End-to-end through the language: the planner-run answer equals the
/// subsequence sliding-scan oracle, and range answers equal the forced
/// scan, on a realistic catalog.
#[test]
fn language_level_answers_are_plan_independent() {
    let mut cat = Catalog::new();
    let rel = SeriesRelation::from_series("walks", RandomWalkGenerator::new(4242).relation(80, 48))
        .unwrap();
    cat.register(rel).unwrap();
    // Range across selectivities: compare against the core scan oracle.
    let index = |name: &str, cat: &Catalog| -> SimilarityIndex {
        // Rebuild an identical index for oracle scans (catalog internals
        // are private; registration is deterministic).
        let rel = cat.relation(name).unwrap();
        SimilarityIndex::build(Default::default(), rel.series().to_vec()).unwrap()
    };
    let idx = index("walks", &cat);
    for eps in [0.1, 1.0, 4.0, 50.0] {
        let out = cat
            .run(&format!("FIND SIMILAR TO walks.s7 IN walks WITHIN {eps}"))
            .unwrap();
        let (oracle, _) = idx
            .scan_range(
                idx.series(7).unwrap(),
                eps,
                &LinearTransform::identity(48),
                ScanMode::Naive,
            )
            .unwrap();
        assert_eq!(
            out.rows.len(),
            oracle.len(),
            "eps={eps}: planner answer diverges from scan oracle"
        );
        for (row, m) in out.rows.iter().zip(&oracle) {
            assert_eq!(row.a, format!("s{}", m.id), "eps={eps}");
            assert!((row.distance - m.distance).abs() < 1e-9);
        }
    }
}

/// Snapshot round trip: the restored catalog plans byte-for-byte
/// identically — same EXPLAIN text (estimates included) and same chosen
/// plans, for every query form.
#[test]
fn snapshot_round_trip_preserves_plan_choices() {
    let mut cat = Catalog::new();
    for (name, seed, count, len) in [("walks", 7u64, 90usize, 64usize), ("small", 8, 12, 32)] {
        let rel =
            SeriesRelation::from_series(name, RandomWalkGenerator::new(seed).relation(count, len))
                .unwrap();
        cat.register(rel).unwrap();
    }
    // Prime a subseq cache entry so its plan is "cached" on both sides.
    cat.run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 5 WINDOW 64")
        .unwrap();
    let queries = [
        "EXPLAIN FIND SIMILAR TO walks.s1 IN walks WITHIN 0.5",
        "EXPLAIN FIND SIMILAR TO walks.s1 IN walks WITHIN 40",
        "EXPLAIN FIND SIMILAR TO small.s2 IN small WITHIN 3 APPLY mavg(4)",
        "EXPLAIN FIND 5 NEAREST TO walks.s3 IN walks",
        "EXPLAIN JOIN small WITHIN 1.5 APPLY mavg(4)",
        "EXPLAIN JOIN small WITHIN 1.5 USING TREE",
        "EXPLAIN FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 5 WINDOW 64",
    ];
    let before: Vec<String> = queries
        .iter()
        .map(|q| cat.run(q).unwrap().explain.expect("explain text"))
        .collect();

    let bytes = cat.snapshot_bytes().unwrap();
    let mut restored = Catalog::new();
    restored.restore_bytes(&bytes).unwrap();
    // The primed cache entry travels with the snapshot, so the subseq
    // EXPLAIN still sees a cached index.
    assert_eq!(restored.subseq_cache_len(), 1);
    let after: Vec<String> = queries
        .iter()
        .map(|q| restored.run(q).unwrap().explain.expect("explain text"))
        .collect();
    assert_eq!(before, after, "plan choices changed across the round trip");

    // Executed plans agree too (plan label + stats + rows).
    for q in [
        "FIND SIMILAR TO walks.s1 IN walks WITHIN 0.5",
        "FIND SIMILAR TO walks.s1 IN walks WITHIN 40",
        "FIND 5 NEAREST TO walks.s3 IN walks",
        "JOIN small WITHIN 1.5 APPLY mavg(4)",
        "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 5 WINDOW 64",
    ] {
        let a = cat.run(q).unwrap();
        let b = restored.run(q).unwrap();
        assert_eq!(a, b, "{q}");
    }
}

/// The `EXPLAIN ANALYZE` counters printed in the text are exactly the
/// stats of the execution it performed — and match an ordinary run of
/// the same query.
#[test]
fn explain_analyze_counters_match_query_stats() {
    let mut cat = Catalog::new();
    let rel = SeriesRelation::from_series("walks", RandomWalkGenerator::new(99).relation(70, 32))
        .unwrap();
    cat.register(rel).unwrap();
    for q in [
        "FIND SIMILAR TO walks.s4 IN walks WITHIN 0.8",
        "FIND SIMILAR TO walks.s4 IN walks WITHIN 25",
        "FIND 3 NEAREST TO walks.s5 IN walks",
        "JOIN walks WITHIN 1.2 APPLY mavg(4)",
        "JOIN walks WITHIN 1.2 APPLY mavg(4) USING INDEX",
        "FIND SUBSEQUENCE OF walks.s6 IN walks WITHIN 4 WINDOW 32",
    ] {
        let plain = cat.run(q).unwrap();
        let analyzed = cat.run(&format!("EXPLAIN ANALYZE {q}")).unwrap();
        assert!(analyzed.rows.is_empty(), "{q}: ANALYZE returns no rows");
        assert_eq!(analyzed.stats, plain.stats, "{q}: counters diverge");
        assert_eq!(analyzed.plan, plain.plan, "{q}: plans diverge");
        let text = analyzed.explain.expect("analyze text");
        let expected = format!(
            "actual: rows={}, nodes={}, candidates={}, refined={}, false_hits={}, disk={}",
            plain.rows.len(),
            plain.stats.nodes_visited,
            plain.stats.candidates,
            plain.stats.refined,
            plain.stats.false_hits,
            plain.stats.disk_accesses,
        );
        assert!(
            text.contains(&expected),
            "{q}:\n{text}\nmissing: {expected}"
        );
    }
    // Plain EXPLAIN never executes: no rows, zeroed counters.
    let explained = cat
        .run("EXPLAIN FIND SIMILAR TO walks.s4 IN walks WITHIN 0.8")
        .unwrap();
    assert!(explained.rows.is_empty());
    assert_eq!(explained.stats, Default::default());
    assert!(!explained.explain.unwrap().contains("actual:"));
}
