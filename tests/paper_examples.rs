//! The paper's worked examples, reproduced exactly where the paper prints
//! the data, and shape-wise where it relies on unavailable stock data.

use tsq_core::geometry::AnnularSector;
use tsq_core::{
    FeatureSchema, IndexConfig, LinearTransform, QueryWindow, SimilarityIndex, SpaceKind,
};
use tsq_dft::Complex64;
use tsq_dft::FftPlanner;
use tsq_series::distance::euclidean;
use tsq_series::moving_average::circular_moving_average;
use tsq_series::warp::stretch;
use tsq_series::TimeSeries;

fn s1() -> TimeSeries {
    TimeSeries::from([
        36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0, 37.0,
    ])
}

fn s2() -> TimeSeries {
    TimeSeries::from([
        40.0, 37.0, 37.0, 42.0, 41.0, 35.0, 40.0, 35.0, 34.0, 42.0, 38.0, 35.0, 45.0, 36.0, 34.0,
    ])
}

#[test]
fn example_1_1_distances() {
    // "the high Euclidean distance D(s1, s2) = 11.92"
    assert!((euclidean(&s1(), &s2()) - 11.92).abs() < 0.005);
    // "The Euclidean distance between the three-day moving averages of two
    //  sequences is 0.47."
    let d = euclidean(
        &circular_moving_average(&s1(), 3),
        &circular_moving_average(&s2(), 3),
    );
    assert!((d - 0.47).abs() < 0.005, "got {d}");
}

#[test]
fn example_1_1_in_frequency_domain() {
    // The same result computed the paper's way: T_mavg3 applied to the
    // Fourier representation (Section 3.2).
    let mut planner = FftPlanner::new();
    let t = LinearTransform::moving_average(15, 3);
    let f1 = t.apply_spectrum(&planner.dft_real(s1().values()));
    let f2 = t.apply_spectrum(&planner.dft_real(s2().values()));
    let d = tsq_dft::energy::euclidean_complex(&f1, &f2);
    assert!((d - 0.4714).abs() < 0.001, "got {d}");
}

#[test]
fn example_1_2_time_warp() {
    let p = TimeSeries::from([20.0, 21.0, 20.0, 23.0]);
    let s = TimeSeries::from([20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0]);
    assert_eq!(stretch(&p, 2), s);
    // Equation 18 holds coefficient-wise.
    let mut planner = FftPlanner::new();
    let t = LinearTransform::time_warp(4, 2);
    let sp = planner.dft_real(p.values());
    let ss = planner.dft_real(s.values());
    for f in 0..4 {
        assert!((t.apply_coeff(f, sp[f]) - ss[f]).abs() < 1e-9, "f = {f}");
    }
}

#[test]
fn theorem_2_counterexample() {
    // "if we multiply the complex numbers representing the three points by
    //  s = 2-3j, the transformed rectangle built on points p*s = -25+5j and
    //  q*s = 25-5j does not have point r*s = 2+10j inside!"
    let p = Complex64::new(-5.0, -5.0);
    let q = Complex64::new(5.0, 5.0);
    let r = Complex64::new(-2.0, 2.0);
    let s = Complex64::new(2.0, -3.0);
    let (tp, tq, tr) = (p * s, q * s, r * s);
    assert_eq!(tp, Complex64::new(-25.0, 5.0));
    assert_eq!(tq, Complex64::new(25.0, -5.0));
    assert_eq!(tr, Complex64::new(2.0, 10.0));
    // r was inside the rectangle spanned by p and q ...
    assert!(r.re >= p.re && r.re <= q.re && r.im >= p.im && r.im <= q.im);
    // ... but r*s is outside the rectangle spanned by p*s and q*s.
    let (lo_im, hi_im) = (tq.im.min(tp.im), tq.im.max(tp.im));
    assert!(tr.im < lo_im || tr.im > hi_im, "counterexample must escape");
    // And the engine rejects exactly this situation: complex multipliers
    // are unsafe in S_rect (Theorem 2)...
    let t =
        LinearTransform::from_parts(vec![s; 8], vec![tsq_dft::complex::ZERO; 8], "complex-scale")
            .unwrap();
    let schema = FeatureSchema::NormalForm { k: 2 };
    assert!(SpaceKind::Rectangular.check_safety(&t, schema).is_err());
    // ... while the same transformation is safe in S_pol (Theorem 3).
    assert!(SpaceKind::Polar.check_safety(&t, schema).is_ok());
}

#[test]
fn figure_7_search_rectangle() {
    // Magnitude range [m - eps, m + eps]; angle range alpha +- asin(eps/m).
    let c = Complex64::from_polar(2.0, 0.5);
    let (lo, hi) = SpaceKind::Polar.ball_block(c, 0.6);
    assert!((lo[0] - 1.4).abs() < 1e-12);
    assert!((hi[0] - 2.6).abs() < 1e-12);
    let da = (0.3f64).asin();
    assert!((lo[1] - (0.5 - da)).abs() < 1e-12);
    assert!((hi[1] - (0.5 + da)).abs() < 1e-12);
    // The sector denoted by the block contains the entire eps-disk.
    let sector = AnnularSector::new(lo[0], hi[0], lo[1], hi[1]);
    for i in 0..256 {
        let th = i as f64 / 256.0 * std::f64::consts::TAU;
        assert!(sector.contains(c + Complex64::from_polar(0.599, th)));
    }
}

#[test]
fn lemma_1_superset_before_postprocessing() {
    // The candidate set (index level) is a superset of the true answer set.
    let rel = tsq_series::generate::RandomWalkGenerator::new(2020).relation(150, 64);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let t = LinearTransform::moving_average(64, 8);
    let q = idx.series(9).unwrap().clone();
    let eps = 1.5;
    let (matches, stats) = idx
        .range_query(&q, eps, &t, &QueryWindow::default())
        .unwrap();
    assert!(stats.candidates >= matches.len());
    assert_eq!(stats.candidates, matches.len() + stats.false_hits);
}

#[test]
fn identity_transform_costs_no_extra_disk_accesses() {
    // Figures 8/9: transformed and plain queries touch the same nodes.
    let rel = tsq_series::generate::RandomWalkGenerator::new(2021).relation(800, 128);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let q = idx.series(100).unwrap().clone();
    let t = LinearTransform::identity(128);
    let (_, stats) = idx
        .range_query(&q, 1.0, &t, &QueryWindow::default())
        .unwrap();
    let qf = idx.query_features(&q, &t).unwrap();
    let rect = SpaceKind::Polar.search_rect(&qf, idx.config().schema, 1.0, &QueryWindow::default());
    let plain = idx.tree().search(&rect, |_, _| {});
    assert_eq!(stats.index.nodes_visited, plain.nodes_visited);
}
