//! Table 1 consistency: the four join methods (plus the tree-join
//! extension) agree on the answer set, with the paper's double-counting
//! semantics for index-based methods.

use tsq_core::{IndexConfig, LinearTransform, ScanMode, SimilarityIndex};
use tsq_series::generate::StockGenerator;

fn stock_index(count: usize, seed: u64) -> SimilarityIndex {
    let rel = StockGenerator::new(seed).relation(count, 128);
    SimilarityIndex::build(IndexConfig::default(), rel).unwrap()
}

fn undirected(pairs: &[tsq_core::JoinPair]) -> Vec<(usize, usize)> {
    let mut v: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a.min(p.b), p.a.max(p.b))).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn all_methods_agree_under_mavg20() {
    let idx = stock_index(120, 3001);
    let t = LinearTransform::moving_average(128, 20);
    let eps = 1.5;
    let a = idx.join_scan(eps, &t, ScanMode::Naive).unwrap();
    let b = idx.join_scan(eps, &t, ScanMode::EarlyAbandon).unwrap();
    let d = idx.join_index(eps, &t).unwrap();
    let e = idx.join_tree(eps, &t).unwrap();

    // (a) == (b), reported once per pair.
    assert_eq!(a.pairs.len(), b.pairs.len());
    let once: Vec<(usize, usize)> = a.pairs.iter().map(|p| (p.a, p.b)).collect();
    // (d) and (e) report each pair twice.
    assert_eq!(d.pairs.len(), 2 * a.pairs.len());
    assert_eq!(e.pairs.len(), d.pairs.len());
    assert_eq!(undirected(&d.pairs), once);
    assert_eq!(undirected(&e.pairs), once);
}

#[test]
fn method_c_differs_from_method_d() {
    // Method (c) omits the transformation; on stock-like data the smoothed
    // join (d) admits at least as many pairs, usually more.
    let idx = stock_index(150, 3002);
    let eps = 1.5;
    let c = idx
        .join_index(eps, &LinearTransform::identity(128))
        .unwrap();
    let d = idx
        .join_index(eps, &LinearTransform::moving_average(128, 20))
        .unwrap();
    assert!(d.pairs.len() >= c.pairs.len());
}

#[test]
fn reverse_join_finds_planted_opposites() {
    // A join between r and T_rev(r): pairs of opposite movers (Example
    // 2.2). The generator plants inverse-loading stocks, so with a sane
    // threshold the answer is non-empty — and every reported pair is
    // negatively correlated.
    let mut gen = StockGenerator::new(3003);
    gen.inverse_fraction = 0.3;
    gen.twin_fraction = 0.0; // isolate the planted-opposites property
    let rel = gen.relation(100, 128);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
    // Applying reverse to the data side of a range query per series i is
    // the join r x T_rev(r).
    let rev = LinearTransform::reverse(128);
    let mut opposite_pairs = 0usize;
    for i in 0..idx.len() {
        let q = idx.series(i).unwrap().clone();
        let (matches, _) = idx
            .range_query(&q, 6.0, &rev, &tsq_core::QueryWindow::default())
            .unwrap();
        for m in matches {
            if m.id != i {
                opposite_pairs += 1;
                let corr = tsq_series::stats::pearson(
                    tsq_series::normal::normal_form(&rel[i]).values(),
                    tsq_series::normal::normal_form(&rel[m.id]).values(),
                );
                assert!(corr < 0.0, "pair ({i}, {}) corr {corr}", m.id);
            }
        }
    }
    assert!(opposite_pairs > 0, "planted opposite movers must be found");
}

#[test]
fn join_stats_reflect_strategy() {
    let idx = stock_index(80, 3004);
    let t = LinearTransform::moving_average(128, 20);
    let scan = idx.join_scan(1.0, &t, ScanMode::EarlyAbandon).unwrap();
    let index_join = idx.join_index(1.0, &t).unwrap();
    // Scan does exactly n*(n-1)/2 exact checks.
    assert_eq!(scan.stats.exact_checks, 80 * 79 / 2);
    // The index join does far fewer exact checks than the scan.
    assert!(
        index_join.stats.exact_checks < scan.stats.exact_checks,
        "{} !< {}",
        index_join.stats.exact_checks,
        scan.stats.exact_checks
    );
    // And it reports its node accesses.
    assert!(index_join.stats.index.nodes_visited > 0);
}

#[test]
fn table_1_shape_on_stand_in_relation() {
    // The paper's Table 1 relation: 1067 stocks, length 128, T_mavg20.
    // We reproduce the *shape* on the synthetic stand-in with a smaller
    // population for test speed: see the bench harness for the full-size
    // run. Answer sizes: method d = 2x method a; method c typically
    // smaller than d (3 vs 12 in the paper).
    let mut gen = StockGenerator::new(3005);
    gen.inverse_fraction = 0.05;
    let rel = gen.relation(200, 128);
    let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let t = LinearTransform::moving_average(128, 20);
    let eps = 1.0;
    let a = idx.join_scan(eps, &t, ScanMode::Naive).unwrap();
    let d = idx.join_index(eps, &t).unwrap();
    let c = idx
        .join_index(eps, &LinearTransform::identity(128))
        .unwrap();
    assert_eq!(d.pairs.len(), 2 * a.pairs.len());
    assert!(c.pairs.len() <= d.pairs.len());
}
