//! Paged storage: cold vs. warm buffer-pool behavior under memory
//! pressure, with *measured* counters.
//!
//! The dataset's R\*-tree is at least 2x the pool budget, so the pool
//! genuinely evicts: a cold run faults every page it touches, a warm run
//! answers partly from residency. The bench asserts what the counters
//! must show —
//!
//! - answers are identical cold, warm, and against the in-memory tree;
//! - a cold (flushed) sweep misses more than a warm sweep at the same
//!   capacity;
//! - with the pool grown to hold the whole file, a warm sweep misses
//!   exactly zero times and every node visit is a hit.
//!
//! It also emits `BENCH_paged.json` (wall time and hit/miss traffic for
//! both regimes) for the CI perf trajectory; CI uploads the artifact.
//!
//! Run with: `cargo bench --bench paged`

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsq_core::{IndexConfig, LinearTransform, QueryWindow, SimilarityIndex};
use tsq_series::generate::RandomWalkGenerator;
use tsq_series::TimeSeries;

const SERIES: usize = 1500;
const LEN: usize = 64;
// A tight radius keeps each probe's page footprint small, so warm
// sweeps genuinely reuse residency instead of LRU-flooding the pool.
const PROBES: usize = 48;
const EPS: f64 = 0.75;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsq-bench-paged-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}.pages"))
}

fn paged_copy(mem: &SimilarityIndex, tag: &str, capacity: usize) -> SimilarityIndex {
    let mut paged = mem.clone();
    paged
        .attach_paged(&temp_path(tag), capacity)
        .expect("attach paged storage");
    paged
}

/// One full sweep: a range query per probe. Returns the answers (for
/// identity asserts) and the wall time.
fn sweep(index: &SimilarityIndex, rel: &[TimeSeries]) -> (Vec<Vec<usize>>, f64) {
    let t = LinearTransform::identity(LEN);
    let window = QueryWindow::default();
    let start = Instant::now();
    let answers = (0..PROBES)
        .map(|i| {
            let (matches, _) = index
                .range_query(&rel[i * (SERIES / PROBES)], EPS, &t, &window)
                .expect("range query");
            matches.into_iter().map(|m| m.id).collect()
        })
        .collect();
    (answers, start.elapsed().as_secs_f64())
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    pages: u64,
    page_size: usize,
    capacity: usize,
    cold_secs: f64,
    warm_secs: f64,
    cold_misses: u64,
    warm_misses: u64,
    warm_hits: u64,
) {
    let json = format!(
        "{{\n  \"bench\": \"paged\",\n  \"series\": {SERIES},\n  \"series_len\": {LEN},\n  \
         \"probes\": {PROBES},\n  \"pages\": {pages},\n  \"page_size\": {page_size},\n  \
         \"capacity_pages\": {capacity},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \
         \"cold_misses\": {cold_misses},\n  \"warm_misses\": {warm_misses},\n  \
         \"warm_hits\": {warm_hits}\n}}\n",
        cold_secs * 1e3,
        warm_secs * 1e3,
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("  wrote {path}");
    }
}

fn bench_paged(c: &mut Criterion) {
    let rel = RandomWalkGenerator::new(19_970_501).relation(SERIES, LEN);
    let mem = SimilarityIndex::build(IndexConfig::default(), rel.clone()).expect("build index");
    let (mem_answers, _) = sweep(&mem, &rel);

    // Size the pool off the real page file: budget = half the tree, so
    // the dataset is exactly 2x the pool and eviction is guaranteed.
    let probe = paged_copy(&mem, "probe", 1);
    let pages = probe.paged().expect("paged").page_count();
    let page_size = probe.paged().expect("paged").page_size();
    let capacity = usize::try_from(pages / 2)
        .expect("capacity fits usize")
        .max(1);
    drop(probe);

    let starved = paged_copy(&mem, "starved", capacity);
    let pool = starved.paged().expect("paged").pool();

    // Cold: every sweep starts from an empty pool.
    pool.flush();
    let (m0, start_misses) = (pool.misses(), pool.hits());
    let _ = start_misses;
    let (cold_answers, cold_secs) = sweep(&starved, &rel);
    let cold_misses = pool.misses() - m0;
    assert_eq!(
        cold_answers, mem_answers,
        "cold paged answers must match memory"
    );
    assert!(cold_misses > 0, "a cold pool must fault pages in");

    // Warm at the same starved capacity: partial residency, fewer
    // misses — but still some, because the file is 2x the pool.
    let (m1, h1) = (pool.misses(), pool.hits());
    let (warm_answers, warm_secs) = sweep(&starved, &rel);
    let (warm_misses, warm_hits) = (pool.misses() - m1, pool.hits() - h1);
    assert_eq!(
        warm_answers, mem_answers,
        "warm paged answers must match memory"
    );
    assert!(
        warm_misses < cold_misses,
        "warm sweep must reuse residency: {warm_misses} vs cold {cold_misses}"
    );

    // Grow the pool to the whole file: a warmed sweep does zero I/O.
    let roomy = paged_copy(&mem, "roomy", usize::try_from(pages).expect("fits"));
    let roomy_pool = roomy.paged().expect("paged").pool();
    let _ = sweep(&roomy, &rel);
    let m2 = roomy_pool.misses();
    let (roomy_answers, _) = sweep(&roomy, &rel);
    assert_eq!(roomy_answers, mem_answers);
    assert_eq!(
        roomy_pool.misses() - m2,
        0,
        "a pool holding every page must never fault when warm"
    );

    println!(
        "paged: {pages} page(s) x {page_size} B, pool {capacity} page(s) (dataset {:.1}x pool)",
        pages as f64 / capacity as f64
    );
    println!(
        "  cold sweep: {:8.1} ms, {cold_misses} miss(es)",
        cold_secs * 1e3
    );
    println!(
        "  warm sweep: {:8.1} ms, {warm_misses} miss(es), {warm_hits} hit(s)",
        warm_secs * 1e3
    );
    write_json(
        "BENCH_paged.json",
        pages,
        page_size,
        capacity,
        cold_secs,
        warm_secs,
        cold_misses,
        warm_misses,
        warm_hits,
    );

    let mut group = c.benchmark_group("paged");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("cold", |b| {
        b.iter(|| {
            pool.flush();
            black_box(sweep(&starved, &rel))
        })
    });
    group.bench_function("warm", |b| b.iter(|| black_box(sweep(&starved, &rel))));
    group.bench_function("memory", |b| b.iter(|| black_box(sweep(&mem, &rel))));
    group.finish();
}

criterion_group!(benches, bench_paged);
criterion_main!(benches);
