//! Executor bench: spawn-per-call fan-out vs. the persistent
//! work-stealing pool, plus a sharded scatter-gather sweep riding on
//! the pool.
//!
//! Part A pits the pre-pool strategy — spawn and join fresh scoped OS
//! threads on **every** `parallel_map` call (reproduced locally below)
//! — against `executor::parallel_map` on the persistent pool, over many
//! small fan-out calls where the per-call spawn tax dominates. Both
//! sides must produce byte-identical results first; then the pool must
//! be at least as fast at every measured thread count.
//!
//! Part B sweeps 1/2/4/8-shard layouts under `WITH (force = scan,
//! threads = 2)` — a workload whose total work is shard-invariant (a
//! forced scan touches every series exactly once regardless of layout)
//! — and asserts throughput does not degrade monotonically as shards
//! are added, i.e. the per-shard scatter overhead stays in the noise.
//!
//! Emits `BENCH_pool.json` for the CI perf trajectory; CI uploads the
//! artifact. Run with: `cargo bench --bench pool`

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsq::core::executor;
use tsq::core::SeriesRelation;
use tsq::lang::Catalog;
use tsq::series::generate::RandomWalkGenerator;

/// Fan-out calls per measurement: many small calls, so the per-call
/// setup cost (thread spawn vs. pool submit) is what gets measured.
const CALLS: usize = 150;
/// Items per fan-out call.
const ITEMS: usize = 32;
/// Points per series in the distance workload.
const LEN: usize = 64;
/// Thread counts the fan-out comparison measures.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Alternating repetitions per side; the minimum is kept.
const REPS: usize = 3;

const SWEEP_SERIES: usize = 1200;
const SWEEP_LEN: usize = 512;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SWEEP_ROUNDS: usize = 4;
/// Repetitions per layout; the minimum is kept (noise floor).
const SWEEP_REPS: usize = 3;

/// The pre-pool `parallel_map`: order-preserving fan-out that spawns
/// and joins fresh scoped threads on every call — the baseline this
/// workspace retired. Kept here as the thing to beat.
fn spawn_map<T, R, F>(threads: usize, items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        let mut rest_items = items;
        let mut rest_out = &mut out[..];
        while !rest_items.is_empty() {
            let take = chunk.min(rest_items.len());
            let tail = rest_items.split_off(take);
            let part = std::mem::replace(&mut rest_items, tail);
            let (head_out, tail_out) = rest_out.split_at_mut(take);
            rest_out = tail_out;
            s.spawn(move || {
                for (slot, item) in head_out.iter_mut().zip(part) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Per-item work: an exact Euclidean distance between two short series
/// — about a microsecond of arithmetic, small enough that per-call
/// fan-out overhead is visible around it.
fn distances(data: &[Vec<f64>]) -> impl Fn(usize) -> f64 + Sync + '_ {
    move |i: usize| {
        let probe = &data[0];
        let other = &data[i % data.len()];
        probe
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

fn time_fanout<F: Fn(usize) -> f64 + Sync>(threads: usize, f: &F, pool: bool) -> f64 {
    let start = Instant::now();
    for _ in 0..CALLS {
        let items: Vec<usize> = (0..ITEMS).collect();
        let out = if pool {
            executor::parallel_map(threads, items, f)
        } else {
            spawn_map(threads, items, f)
        };
        black_box(out.len());
    }
    start.elapsed().as_secs_f64()
}

fn bench_pool(c: &mut Criterion) {
    let data: Vec<Vec<f64>> = RandomWalkGenerator::new(20_260_808)
        .relation(8, LEN)
        .into_iter()
        .map(|s| s.values().to_vec())
        .collect();
    let work = distances(&data);

    // Byte-identity gate before any clock starts: sequential, spawn,
    // and pool answers must be bit-for-bit the same at every width.
    let items: Vec<usize> = (0..ITEMS).collect();
    let want: Vec<u64> = items.iter().map(|&i| work(i).to_bits()).collect();
    for &t in &THREAD_COUNTS {
        let spawned: Vec<u64> = spawn_map(t, items.clone(), &work)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        let pooled: Vec<u64> = executor::parallel_map(t, items.clone(), &work)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(spawned, want, "spawn_map diverged at {t} threads");
        assert_eq!(pooled, want, "pool map diverged at {t} threads");
    }

    // Part A: spawn-per-call vs. pool, min over alternating reps.
    println!(
        "pool fan-out: {CALLS} calls x {ITEMS} items per measurement \
         (pool has {} worker(s))",
        executor::Pool::global().workers()
    );
    let mut fanout_rows = Vec::new();
    let mut pool_at_least_spawn = true;
    for &t in &THREAD_COUNTS {
        let mut spawn_best = f64::INFINITY;
        let mut pool_best = f64::INFINITY;
        for _ in 0..REPS {
            spawn_best = spawn_best.min(time_fanout(t, &work, false));
            pool_best = pool_best.min(time_fanout(t, &work, true));
        }
        // At every width the pool must at least match the spawn
        // baseline (5% tolerance so timer noise on the identical
        // threads=1 path cannot flake the gate).
        let ok = pool_best <= spawn_best * 1.05;
        pool_at_least_spawn &= ok;
        println!(
            "  threads = {t}: spawn {:8.2} ms, pool {:8.2} ms ({:.2}x){}",
            spawn_best * 1e3,
            pool_best * 1e3,
            spawn_best / pool_best,
            if ok { "" } else { "  << pool slower!" }
        );
        fanout_rows.push(format!(
            "    {{ \"threads\": {t}, \"spawn_ms\": {:.3}, \"pool_ms\": {:.3}, \
             \"speedup_vs_spawn\": {:.3} }}",
            spawn_best * 1e3,
            pool_best * 1e3,
            spawn_best / pool_best
        ));
    }
    assert!(
        pool_at_least_spawn,
        "the persistent pool must not lose to spawn-per-call at any measured thread count"
    );

    // Part B: sharded scatter-gather sweep on the pool. A forced scan
    // with an epsilon nothing abandons under does identical per-series
    // work in every layout — the total is shard-invariant by
    // construction — so added shards must not cost monotonically
    // degrading throughput.
    let initial = RandomWalkGenerator::new(19_970_603).relation(SWEEP_SERIES, SWEEP_LEN);
    let queries = [
        "FIND SIMILAR TO walks.s0 IN walks WITHIN 1000000 WITH (force = scan, threads = 2)",
        "FIND SIMILAR TO walks.s7 IN walks WITHIN 1000000 WITH (force = scan, threads = 2)",
    ];
    let oracle = {
        let mut cat = Catalog::new();
        cat.register(SeriesRelation::from_series("walks", initial.clone()).unwrap())
            .unwrap();
        cat
    };
    let answers: Vec<_> = queries.iter().map(|q| oracle.run(q).unwrap()).collect();

    let total_queries = SWEEP_ROUNDS * queries.len();
    let mut sweep_rows = Vec::new();
    let mut sweep_qs = Vec::new();
    println!(
        "pool shard sweep: {SWEEP_SERIES} series x {SWEEP_LEN} points, \
         {total_queries} queries per layout"
    );
    for shards in SHARD_COUNTS {
        let mut cat = Catalog::new();
        cat.register(SeriesRelation::from_series("walks", initial.clone()).unwrap())
            .unwrap();
        cat.run_mut(&format!("SHARD walks INTO {shards} BY HASH"))
            .unwrap();
        for (q, want) in queries.iter().zip(&answers) {
            let got = cat.run(q).unwrap();
            assert_eq!(got.rows, want.rows, "{shards} shard(s): {q}");
        }
        let mut secs = f64::INFINITY;
        for _ in 0..SWEEP_REPS {
            let start = Instant::now();
            for _ in 0..SWEEP_ROUNDS {
                for q in &queries {
                    black_box(cat.run(q).unwrap().rows.len());
                }
            }
            secs = secs.min(start.elapsed().as_secs_f64());
        }
        let qs = total_queries as f64 / secs;
        println!("  {shards} shard(s): {:8.1} ms ({qs:.0} q/s)", secs * 1e3);
        sweep_rows.push(format!(
            "    {{ \"shards\": {shards}, \"ms\": {:.3}, \"queries_per_sec\": {qs:.0} }}",
            secs * 1e3
        ));
        sweep_qs.push(qs);
    }
    // Not monotonically degrading: at least one step must hold flat or
    // improve; a step only counts as degradation beyond 1% (the timing
    // noise floor for millisecond-scale layouts).
    let monotone_degrading = sweep_qs.windows(2).all(|w| w[1] < w[0] * 0.99);
    assert!(
        !monotone_degrading,
        "sharded throughput degraded monotonically across the sweep: {sweep_qs:?}"
    );

    let stats = executor::pool_stats();
    let json = format!(
        "{{\n  \"bench\": \"pool\",\n  \"map_calls\": {CALLS},\n  \"items_per_call\": {ITEMS},\n  \
         \"pool_workers\": {},\n  \"identical_to_sequential\": true,\n  \
         \"pool_at_least_spawn\": {pool_at_least_spawn},\n  \"fanout\": [\n{}\n  ],\n  \
         \"sweep_queries_per_layout\": {total_queries},\n  \
         \"sweep_not_monotonically_degrading\": {},\n  \"sweep\": [\n{}\n  ],\n  \
         \"pool_tasks\": {},\n  \"pool_steals\": {}\n}}\n",
        executor::Pool::global().workers(),
        fanout_rows.join(",\n"),
        !monotone_degrading,
        sweep_rows.join(",\n"),
        stats.tasks,
        stats.steals
    );
    if let Err(e) = std::fs::write("BENCH_pool.json", &json) {
        eprintln!("cannot write BENCH_pool.json: {e}");
    } else {
        println!("  wrote BENCH_pool.json");
    }

    let mut group = c.benchmark_group("pool");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("fanout_spawn_t2", |b| {
        b.iter(|| black_box(spawn_map(2, (0..ITEMS).collect(), &work).len()))
    });
    group.bench_function("fanout_pool_t2", |b| {
        b.iter(|| {
            black_box(executor::parallel_map(2, (0..ITEMS).collect::<Vec<usize>>(), &work).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
