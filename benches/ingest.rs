//! Streaming-ingest throughput: incremental index maintenance vs.
//! rebuild-from-scratch.
//!
//! A 500-series catalog with a primed subsequence ST-index absorbs a
//! stream of `APPEND` statements — each round one new point for a
//! 20-series batch, rotating so every series grows and the relation
//! ends uniform — through the same [`Catalog::append`] path the shell,
//! wire protocol and HTTP facade use. Incremental maintenance touches
//! only the appended series (feature re-extraction, trail extension)
//! plus one canonical repack; the baseline does what a non-incremental
//! engine would have to do for the same round — re-register the whole
//! relation (rebuilding the whole-series R\*-tree from scratch) and
//! rebuild the cached ST-index over all 500 series.
//!
//! The bench asserts the incremental path is at least **5x** faster than
//! the rebuild baseline over the full run, prints sustained points/s,
//! and emits `BENCH_ingest.json` for the CI perf trajectory; CI uploads
//! the artifact.
//!
//! Run with: `cargo bench --bench ingest`

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsq::core::SeriesRelation;
use tsq::lang::{AppendRow, Catalog};
use tsq::series::generate::RandomWalkGenerator;
use tsq::TimeSeries;

const SERIES: usize = 500;
const LEN: usize = 64;
const WINDOW: usize = 32;
/// Series per append statement: a streaming batch touches a slice of
/// the catalog, not all of it.
const GROUP: usize = 20;
const ROUNDS: usize = SERIES / GROUP;

/// One appended value, deterministic per (round, series).
fn point(round: usize, series: usize) -> f64 {
    ((round * 31 + series * 7) % 17) as f64 * 0.25 - 2.0
}

/// The append statement for one round: one new point for each series
/// in the round's 20-series group (groups rotate disjointly, so after
/// `ROUNDS` rounds every series has grown by one and the relation is
/// uniform again).
fn round_rows(round: usize) -> Vec<AppendRow> {
    let first = (round * GROUP) % SERIES;
    (first..first + GROUP)
        .map(|i| AppendRow {
            label: format!("s{i}"),
            values: vec![point(round, i)],
        })
        .collect()
}

/// A subsequence probe (stored prefix of s0, so it always matches) that
/// forces the window-`WINDOW` ST-index to exist.
fn prime_query(initial: &[TimeSeries]) -> String {
    let vals: Vec<String> = initial[0].values()[..WINDOW]
        .iter()
        .map(|v| format!("{v}"))
        .collect();
    format!(
        "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 5 WINDOW {WINDOW}",
        vals.join(", ")
    )
}

fn fresh_catalog(initial: &[TimeSeries]) -> Catalog {
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_series("walks", initial.to_vec()).unwrap())
        .unwrap();
    cat
}

/// The non-incremental baseline for one round: rebuild every structure
/// the appended state needs — relation + whole-series R\*-tree via
/// `register`, cached ST-index via the priming query.
fn rebuild_round(data: &[(String, TimeSeries)], probe: &str) -> Catalog {
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_labeled("walks", data.to_vec()).unwrap())
        .unwrap();
    cat.run(probe).unwrap();
    cat
}

fn write_json(path: &str, incr_secs: f64, rebuild_secs: f64, points: usize, speedup: f64) {
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"series\": {SERIES},\n  \"series_len\": {LEN},\n  \
         \"window\": {WINDOW},\n  \"rounds\": {ROUNDS},\n  \"points\": {points},\n  \
         \"incremental_ms\": {:.3},\n  \"rebuild_ms\": {:.3},\n  \
         \"points_per_sec\": {:.0},\n  \"speedup\": {speedup:.2}\n}}\n",
        incr_secs * 1e3,
        rebuild_secs * 1e3,
        points as f64 / incr_secs,
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("  wrote {path}");
    }
}

fn bench_ingest(c: &mut Criterion) {
    let initial = RandomWalkGenerator::new(19_970_502).relation(SERIES, LEN);
    let probe = prime_query(&initial);

    // Incremental: one live catalog with a primed ST-index absorbs every
    // round through the maintained append path.
    let mut live = fresh_catalog(&initial);
    live.run(&probe).unwrap();
    let start = Instant::now();
    for r in 0..ROUNDS {
        let out = live.append("walks", &round_rows(r)).unwrap();
        assert_eq!(out.rows.len(), GROUP);
    }
    let incr_secs = start.elapsed().as_secs_f64();
    let points = GROUP * ROUNDS;

    // Baseline: the same rounds, each paid for by a full rebuild.
    let start = Instant::now();
    let mut last = None;
    for r in 0..ROUNDS {
        let data: Vec<(String, TimeSeries)> = (0..SERIES)
            .map(|i| {
                let mut vals = initial[i].values().to_vec();
                // Every group this series belonged to in rounds 0..=r.
                for past in 0..=r {
                    if (past * GROUP) % SERIES <= i && i < (past * GROUP) % SERIES + GROUP {
                        vals.push(point(past, i));
                    }
                }
                (format!("s{i}"), TimeSeries::new(vals))
            })
            .collect();
        last = Some(rebuild_round(&data, &probe));
    }
    let rebuild_secs = start.elapsed().as_secs_f64();

    // Same destination, either road: the final rebuilt catalog answers
    // the probe exactly like the incrementally maintained one (row set
    // and candidate counters; node layout is the incremental path's own).
    let a = live.run(&probe).unwrap();
    let b = last.expect("rounds ran").run(&probe).unwrap();
    assert_eq!(a.rows.len(), b.rows.len(), "probe answers diverged");
    assert_eq!(a.stats.candidates, b.stats.candidates);
    assert_eq!(a.stats.refined, b.stats.refined);

    let speedup = rebuild_secs / incr_secs;
    println!(
        "ingest: {points} point(s) across {SERIES} series in {ROUNDS} round(s)\n  \
         incremental: {:8.1} ms ({:.0} points/s)\n  \
         rebuild:     {:8.1} ms\n  speedup: {speedup:.1}x",
        incr_secs * 1e3,
        points as f64 / incr_secs,
        rebuild_secs * 1e3,
    );
    assert!(
        speedup >= 5.0,
        "incremental ingest must beat rebuild-per-round by >= 5x, got {speedup:.2}x \
         ({:.1} ms vs {:.1} ms)",
        incr_secs * 1e3,
        rebuild_secs * 1e3,
    );
    write_json(
        "BENCH_ingest.json",
        incr_secs,
        rebuild_secs,
        points,
        speedup,
    );

    let mut group = c.benchmark_group("ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("append_round", |b| {
        let mut r = ROUNDS;
        b.iter(|| {
            let out = live.append("walks", &round_rows(r)).unwrap();
            r += 1;
            black_box(out.rows.len())
        })
    });
    group.bench_function("rebuild_round", |b| {
        let data: Vec<(String, TimeSeries)> = (0..SERIES)
            .map(|i| {
                (
                    format!("s{i}"),
                    TimeSeries::new(initial[i].values().to_vec()),
                )
            })
            .collect();
        b.iter(|| black_box(rebuild_round(&data, &probe).relation("walks").is_some()))
    });
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
