//! Plan-choice ablation: the cost-based planner vs. forced SCAN vs.
//! forced INDEX across selectivities — the Figure-12 experiment turned
//! into a regression gate.
//!
//! For each workload (relation shape × threshold), the same range query
//! runs three times: planner default ([`PlanPreference::Auto`]), forced
//! early-abandoning scan, and forced index filter-and-refine. We record
//! the *actual* simulated disk accesses of each run (scan: one access per
//! record; index: nodes visited + candidate fetches — the accounting the
//! paper's tables use) and **assert the planner is never worse than the
//! better forced choice**: a cost model that mispredicts the crossover
//! fails this bench, not production.
//!
//! Emits `BENCH_planner.json` (per-workload disk accesses and the chosen
//! plan) for CI trend tracking.
//!
//! Run with: `cargo bench --bench planner`

use criterion::{criterion_group, criterion_main, Criterion};
use tsq_core::{
    execute_plan, LinearTransform, LogicalPlan, PlanPreference, Planner, QueryWindow,
    RelationStats, SimilarityIndex,
};
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};

struct Workload {
    name: &'static str,
    index: SimilarityIndex,
    stats: RelationStats,
    /// Thresholds sweeping selectivity from "self only" to "everything".
    eps_grid: &'static [f64],
}

struct Measurement {
    workload: &'static str,
    eps: f64,
    scan_disk: u64,
    index_disk: u64,
    auto_disk: u64,
    plan: &'static str,
    rows: usize,
}

fn workloads() -> Vec<Workload> {
    let walks = RandomWalkGenerator::new(20_270_741).relation(400, 64);
    let stocks = StockGenerator::new(20_270_742).relation(250, 128);
    let small = RandomWalkGenerator::new(20_270_743).relation(48, 32);
    vec![
        Workload {
            name: "walks_400x64",
            index: SimilarityIndex::build(Default::default(), walks).expect("build walks"),
            stats: RelationStats::default(),
            eps_grid: &[0.05, 0.2, 0.5, 1.0, 2.0, 8.0, 32.0],
        },
        Workload {
            name: "stocks_250x128",
            index: SimilarityIndex::build(Default::default(), stocks).expect("build stocks"),
            stats: RelationStats::default(),
            eps_grid: &[0.05, 0.2, 0.5, 1.0, 2.0, 8.0, 32.0],
        },
        Workload {
            name: "small_48x32",
            index: SimilarityIndex::build(Default::default(), small).expect("build small"),
            stats: RelationStats::default(),
            eps_grid: &[0.1, 1.0, 10.0],
        },
    ]
    .into_iter()
    .map(|mut w| {
        w.stats = RelationStats::from_index(&w.index);
        w
    })
    .collect()
}

fn run_pref(
    w: &Workload,
    logical: &LogicalPlan,
    pref: PlanPreference,
) -> (u64, &'static str, usize) {
    let choice = Planner::new(&w.index, &w.stats)
        .with_preference(pref)
        .plan(logical, None)
        .expect("plan");
    let (rows, stats) = execute_plan(logical, &choice.plan, &w.index, None).expect("execute");
    (stats.disk_accesses, choice.plan.op.name(), rows.len())
}

fn measure(w: &Workload) -> Vec<Measurement> {
    let len = w.index.series_len();
    let t = LinearTransform::identity(len);
    w.eps_grid
        .iter()
        .map(|&eps| {
            let logical = LogicalPlan::Range {
                relation: w.name.to_string(),
                query: w.index.series(7).expect("probe series").clone(),
                eps,
                transform: t.clone(),
                window: QueryWindow::default(),
            };
            let (scan_disk, _, scan_rows) = run_pref(w, &logical, PlanPreference::ForceScan);
            let (index_disk, _, index_rows) = run_pref(w, &logical, PlanPreference::ForceIndex);
            let (auto_disk, plan, rows) = run_pref(w, &logical, PlanPreference::Auto);
            assert_eq!(rows, scan_rows, "{} eps={eps}: answers diverge", w.name);
            assert_eq!(rows, index_rows, "{} eps={eps}: answers diverge", w.name);
            Measurement {
                workload: w.name,
                eps,
                scan_disk,
                index_disk,
                auto_disk,
                plan,
                rows,
            }
        })
        .collect()
}

fn write_json(path: &str, measurements: &[Measurement]) {
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\"workload\": \"{}\", \"eps\": {}, \"scan_disk\": {}, \
                 \"index_disk\": {}, \"auto_disk\": {}, \"plan\": \"{}\", \"rows\": {}}}",
                m.workload, m.eps, m.scan_disk, m.index_disk, m.auto_disk, m.plan, m.rows
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"planner\",\n  \"measurements\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("  wrote {path}");
    }
}

fn bench_planner(c: &mut Criterion) {
    let workloads = workloads();
    let mut all = Vec::new();
    println!("planner ablation (actual simulated disk accesses per plan):");
    println!("  workload        eps      scan     index      auto  chosen");
    for w in &workloads {
        for m in measure(w) {
            println!(
                "  {:<14} {:>5}  {:>8}  {:>8}  {:>8}  {}",
                m.workload, m.eps, m.scan_disk, m.index_disk, m.auto_disk, m.plan
            );
            all.push(m);
        }
    }
    write_json("BENCH_planner.json", &all);

    // The gate: for every measured workload the planner-chosen plan's
    // simulated disk accesses are at most the better forced choice's.
    // Disk accounting is deterministic (no wall-clock), so this assert is
    // noise-free.
    for m in &all {
        let best = m.scan_disk.min(m.index_disk);
        assert!(
            m.auto_disk <= best,
            "{} eps={}: planner chose {} with {} disk accesses, the better \
             forced choice needs {best} (scan {}, index {})",
            m.workload,
            m.eps,
            m.plan,
            m.auto_disk,
            m.scan_disk,
            m.index_disk
        );
    }
    println!("  planner never worse than the better forced choice: OK");

    // A light timing sample so `cargo bench` reports something useful.
    let w = &workloads[0];
    let logical = LogicalPlan::Range {
        relation: w.name.to_string(),
        query: w.index.series(7).expect("probe").clone(),
        eps: 0.5,
        transform: LinearTransform::identity(w.index.series_len()),
        window: QueryWindow::default(),
    };
    c.bench_function("planner_plan_and_execute", |b| {
        b.iter(|| {
            let choice = Planner::new(&w.index, &w.stats)
                .plan(&logical, None)
                .expect("plan");
            std::hint::black_box(
                execute_plan(&logical, &choice.plan, &w.index, None).expect("execute"),
            )
        })
    });
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
