//! Service throughput under concurrent network load: ≥8 clients drive a
//! real TCP server over the binary wire protocol while a writer
//! registers a new relation mid-flight.
//!
//! Every reply is checked bit-exactly against direct in-process
//! execution of the same query — the bench *asserts zero failed or
//! corrupt responses*, so the headline numbers are only printed for runs
//! where the service answered everything correctly. It reports:
//!
//! - sustained throughput (queries per second across all clients);
//! - p50 / p99 tail latency per request (connect + query + close, the
//!   whole round trip a short-lived client pays);
//! - the writer-interleave check: a relation registered while the load
//!   is in flight must be immediately queryable through the server.
//!
//! It also emits `BENCH_service.json` for the CI artifact.
//!
//! Run with: `cargo bench --bench service`

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use tsq_core::SeriesRelation;
use tsq_lang::{Catalog, QueryOutput, SharedCatalog};
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};
use tsq_service::{Client, ServiceConfig};

const WALKS: usize = 240;
const STOCKS: usize = 160;
const LEN: usize = 96;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 40;

fn shared_catalog() -> SharedCatalog {
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series(
            "walks",
            RandomWalkGenerator::new(20_270_131).relation(WALKS, LEN),
        )
        .expect("walks"),
    )
    .expect("register walks");
    cat.register(
        SeriesRelation::from_series(
            "stocks",
            StockGenerator::new(20_270_132).relation(STOCKS, LEN),
        )
        .expect("stocks"),
    )
    .expect("register stocks");
    SharedCatalog::new(cat)
}

/// The full query surface — range, kNN, join, subsequence — mixed so
/// cheap probes queue behind expensive ones, as real traffic would.
fn workload(client: usize) -> Vec<String> {
    (0..QUERIES_PER_CLIENT)
        .map(|i| {
            let s = (client * QUERIES_PER_CLIENT + i) % 32;
            match i % 8 {
                0 | 4 => format!("FIND SIMILAR TO walks.s{s} IN walks WITHIN 1.5 APPLY mavg(8)"),
                1 | 5 => format!("FIND 10 NEAREST TO stocks.s{s} IN stocks"),
                2 | 6 => format!("FIND SUBSEQUENCE OF walks.s{s} IN walks WITHIN 30 WINDOW {LEN}"),
                3 => format!("FIND 5 NEAREST TO walks.s{s} IN walks APPLY reverse"),
                _ => "JOIN stocks WITHIN 1.0 APPLY mavg(8) USING INDEX".to_string(),
            }
        })
        .collect()
}

/// Bit-exact comparison between a wire reply and the in-process oracle.
fn reply_matches(reply: &tsq_service::QueryReply, oracle: &QueryOutput) -> bool {
    reply.plan == oracle.plan
        && reply.stats == oracle.stats
        && reply.rows.len() == oracle.rows.len()
        && reply.rows.iter().zip(&oracle.rows).all(|(w, d)| {
            w.a == d.a
                && w.b == d.b
                && w.offset == d.offset.map(|o| o as u64)
                && w.distance.to_bits() == d.distance.to_bits()
        })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn write_json(qps: f64, p50_ms: f64, p99_ms: f64, failures: usize) {
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"clients\": {CLIENTS},\n  \
         \"queries\": {},\n  \"series\": {},\n  \"series_len\": {LEN},\n  \
         \"qps\": {qps:.0},\n  \"p50_ms\": {p50_ms:.3},\n  \"p99_ms\": {p99_ms:.3},\n  \
         \"failures\": {failures}\n}}\n",
        CLIENTS * QUERIES_PER_CLIENT,
        WALKS + STOCKS,
    );
    let path = "BENCH_service.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("  wrote {path}");
    }
}

fn bench_service(c: &mut Criterion) {
    let shared = shared_catalog();

    // One in-process oracle per distinct query, computed before the
    // server starts so the load phase measures only served traffic.
    let mut oracles: HashMap<String, QueryOutput> = HashMap::new();
    for client in 0..CLIENTS {
        for q in workload(client) {
            if let std::collections::hash_map::Entry::Vacant(slot) = oracles.entry(q) {
                let out = shared.run(slot.key()).expect("workload must be valid");
                slot.insert(out);
            }
        }
    }
    let oracles = Arc::new(oracles);

    let config = ServiceConfig {
        workers: CLIENTS,
        poll_interval: Duration::from_millis(5),
        ..ServiceConfig::default()
    };
    let handle = tsq_lang::serve("127.0.0.1:0", shared.clone(), config).expect("serve");
    let addr = handle.addr();

    // Load phase: CLIENTS threads, each a stream of short-lived
    // connections (connect → query → close), the pattern that keeps a
    // fixed acceptor pool fair to more clients than it has workers.
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let oracles = Arc::clone(&oracles);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
                let mut failures = 0usize;
                for q in workload(id) {
                    let t = Instant::now();
                    let ok = Client::connect(addr)
                        .and_then(|mut client| {
                            client.set_timeout(Some(Duration::from_secs(120)))?;
                            client.query(&q)
                        })
                        .map(|reply| reply_matches(&reply, &oracles[&q]));
                    latencies.push(t.elapsed().as_secs_f64());
                    match ok {
                        Ok(true) => {}
                        Ok(false) => {
                            eprintln!("client {id}: corrupt reply for {q}");
                            failures += 1;
                        }
                        Err(e) => {
                            eprintln!("client {id}: {q} failed: {e}");
                            failures += 1;
                        }
                    }
                }
                (latencies, failures)
            })
        })
        .collect();

    // Writer interleave: while the fleet hammers the server, register a
    // fresh relation and prove it is queryable through the server at
    // once — served reads must not serialize catalog writes.
    std::thread::sleep(Duration::from_millis(20));
    shared
        .register(
            SeriesRelation::from_series(
                "fresh",
                RandomWalkGenerator::new(20_270_133).relation(16, 32),
            )
            .expect("fresh"),
        )
        .expect("register fresh");
    let mut probe = Client::connect(addr).expect("probe connect");
    probe
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("probe timeout");
    let fresh = probe
        .query("FIND 2 NEAREST TO fresh.s0 IN fresh")
        .expect("mid-load registration must be queryable");
    assert_eq!(fresh.rows.len(), 2);
    let writer_done = started.elapsed();
    drop(probe);

    let mut latencies = Vec::with_capacity(CLIENTS * QUERIES_PER_CLIENT);
    let mut failures = 0usize;
    for client in clients {
        let (lat, fail) = client.join().expect("client thread");
        latencies.extend(lat);
        failures += fail;
    }
    let elapsed = started.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let total = latencies.len();
    let qps = total as f64 / elapsed;
    let p50_ms = percentile(&latencies, 0.50) * 1e3;
    let p99_ms = percentile(&latencies, 0.99) * 1e3;

    println!(
        "service: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries over \
         {WALKS}+{STOCKS} series of length {LEN}"
    );
    println!(
        "  sustained       : {:8.1} ms wall  ({qps:7.0} q/s)",
        elapsed * 1e3
    );
    println!("  latency p50     : {p50_ms:8.2} ms");
    println!("  latency p99     : {p99_ms:8.2} ms");
    println!(
        "  writer interleave: fresh relation registered + served at {:.0} ms into the load",
        writer_done.as_secs_f64() * 1e3
    );
    println!("  failures        : {failures} of {total}");
    write_json(qps, p50_ms, p99_ms, failures);
    assert_eq!(
        failures, 0,
        "the service returned failed or corrupt responses under load"
    );

    let snap = handle.shutdown();
    assert_eq!(snap.in_flight, 0, "shutdown must drain");
    assert_eq!(snap.queries_err, 0, "{snap:?}");
    assert!(
        snap.queries_ok as usize > total,
        "metrics must account for every served query: {snap:?}"
    );

    // A criterion group over one persistent connection, for trend
    // tracking of the pure round-trip cost.
    let handle = tsq_lang::serve(
        "127.0.0.1:0",
        shared.clone(),
        ServiceConfig {
            poll_interval: Duration::from_millis(5),
            ..ServiceConfig::default()
        },
    )
    .expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut group = c.benchmark_group("service");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("query_roundtrip", |b| {
        b.iter(|| {
            black_box(
                client
                    .query("FIND 10 NEAREST TO stocks.s3 IN stocks")
                    .unwrap(),
            )
        })
    });
    group.bench_function("ping_roundtrip", |b| {
        b.iter(|| {
            client.ping().unwrap();
            black_box(())
        })
    });
    group.finish();
    drop(client);
    handle.shutdown();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
