//! Scatter-gather sweep: the same query workload over 1/2/4/8-shard
//! layouts of one relation, against the unsharded engine as both the
//! correctness oracle and the timing baseline.
//!
//! Every shard count must answer **byte-identically** to the unsharded
//! catalog — rows, order, distances bit-for-bit, and merged counters
//! that are the exact sum of the per-shard counters — so the sweep is a
//! correctness gate first and a perf probe second. Prints per-layout
//! wall time and queries/s, and emits `BENCH_shard.json` for the CI perf
//! trajectory; CI uploads the artifact.
//!
//! Run with: `cargo bench --bench shard`

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsq::core::plan::ExecStats;
use tsq::core::SeriesRelation;
use tsq::lang::{Catalog, QueryOutput};
use tsq::series::generate::RandomWalkGenerator;
use tsq::TimeSeries;

const SERIES: usize = 400;
const LEN: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Workload repetitions per layout — enough rounds to dominate noise
/// without starving the sweep.
const ROUNDS: usize = 12;

/// The measured workload: every scatter-gather merge path (range, kNN,
/// forced-index join, subsequence range) over relation `walks`.
fn workload() -> Vec<String> {
    vec![
        "FIND SIMILAR TO walks.s0 IN walks WITHIN 3".to_string(),
        "FIND 10 NEAREST TO walks.s7 IN walks".to_string(),
        "JOIN walks WITHIN 1.25 WITH (force = index)".to_string(),
        "FIND SUBSEQUENCE OF [0, 0.5, 1, 0.5, 0, -0.5, -1, -0.5] IN walks \
         WITHIN 4 WINDOW 8"
            .to_string(),
    ]
}

fn catalog(initial: &[TimeSeries]) -> Catalog {
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_series("walks", initial.to_vec()).unwrap())
        .unwrap();
    cat
}

/// Byte-identity gate between a sharded answer and the unsharded oracle.
fn assert_identical(got: &QueryOutput, want: &QueryOutput, shards: usize, q: &str) {
    assert_eq!(got.rows, want.rows, "{shards} shard(s): {q}");
    if shards > 1 {
        assert_eq!(
            got.stats,
            ExecStats::sum(&got.shard_stats),
            "{shards} shard(s): {q}: merged counters must sum the shard counters"
        );
    }
}

fn bench_shard(c: &mut Criterion) {
    let initial = RandomWalkGenerator::new(19_970_603).relation(SERIES, LEN);
    let queries = workload();

    // Unsharded baseline: oracle answers + baseline wall time.
    let oracle = catalog(&initial);
    let answers: Vec<QueryOutput> = queries.iter().map(|q| oracle.run(q).unwrap()).collect();
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for q in &queries {
            black_box(oracle.run(q).unwrap().rows.len());
        }
    }
    let base_secs = start.elapsed().as_secs_f64();
    let total_queries = ROUNDS * queries.len();

    let mut layouts = Vec::new();
    let mut json_rows = Vec::new();
    json_rows.push(format!(
        "    {{ \"shards\": 0, \"ms\": {:.3}, \"queries_per_sec\": {:.0} }}",
        base_secs * 1e3,
        total_queries as f64 / base_secs
    ));
    for shards in SHARD_COUNTS {
        let mut cat = catalog(&initial);
        cat.run_mut(&format!("SHARD walks INTO {shards} BY HASH"))
            .unwrap();
        // Correctness gate before the clock starts.
        for (q, want) in queries.iter().zip(&answers) {
            assert_identical(&cat.run(q).unwrap(), want, shards, q);
        }
        let start = Instant::now();
        for _ in 0..ROUNDS {
            for q in &queries {
                black_box(cat.run(q).unwrap().rows.len());
            }
        }
        let secs = start.elapsed().as_secs_f64();
        json_rows.push(format!(
            "    {{ \"shards\": {shards}, \"ms\": {:.3}, \"queries_per_sec\": {:.0} }}",
            secs * 1e3,
            total_queries as f64 / secs
        ));
        layouts.push((shards, cat, secs));
    }

    println!(
        "shard sweep: {SERIES} series x {LEN} points, {total_queries} queries per layout\n  \
         unsharded: {:8.1} ms ({:.0} q/s)",
        base_secs * 1e3,
        total_queries as f64 / base_secs
    );
    for (shards, _, secs) in &layouts {
        println!(
            "  {shards} shard(s): {:8.1} ms ({:.0} q/s, {:.2}x vs unsharded)",
            secs * 1e3,
            total_queries as f64 / secs,
            base_secs / secs
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"series\": {SERIES},\n  \"series_len\": {LEN},\n  \
         \"queries_per_layout\": {total_queries},\n  \"identical_to_unsharded\": true,\n  \
         \"layouts\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_shard.json", &json) {
        eprintln!("cannot write BENCH_shard.json: {e}");
    } else {
        println!("  wrote BENCH_shard.json");
    }

    let mut group = c.benchmark_group("shard");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    let knn = "FIND 10 NEAREST TO walks.s7 IN walks";
    group.bench_function("knn_unsharded", |b| {
        b.iter(|| black_box(oracle.run(knn).unwrap().rows.len()))
    });
    for (shards, cat, _) in &layouts {
        group.bench_function(format!("knn_{shards}_shards"), |b| {
            b.iter(|| black_box(cat.run(knn).unwrap().rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
