//! Snapshot amortization: restoring a catalog from a binary snapshot vs.
//! rebuilding its indexes from raw series.
//!
//! The Lernaean-Hydra evaluation (Echihabi et al., PVLDB 2019) shows that
//! for disk-resident series systems *index construction* dominates total
//! cost; the snapshot subsystem converts that construction from a
//! per-process to a per-dataset expense. This bench quantifies the win and
//! **asserts the round-trip invariant**:
//!
//! - restoring the catalog (`Catalog::restore_bytes`) must be ≥ 5x faster
//!   than rebuilding its indexes (registration + ST-index builds);
//! - every query form answers identically (rows *and* simulated disk
//!   accesses) on the restored catalog.
//!
//! It also emits `BENCH_snapshot.json` (build vs. open wall-time, snapshot
//! size) for the CI perf trajectory; CI uploads the file as an artifact.
//!
//! Run with: `cargo bench --bench snapshot`

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsq_core::SeriesRelation;
use tsq_lang::Catalog;
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};
use tsq_series::TimeSeries;

const WALKS: usize = 400;
const STOCKS: usize = 250;
const LEN: usize = 256;
/// Subsequence windows primed into the cache (the expensive builds the
/// snapshot amortizes: sliding-DFT trail extraction over every window of
/// every series). Several active window sizes is the realistic serving
/// shape — and each one is a build the restarted process skips entirely,
/// while its snapshot form is just trail MBRs (the raw series are stored
/// once with the relation, not per window).
const WINDOWS: [usize; 8] = [16, 24, 32, 48, 64, 80, 96, 128];

fn relations() -> (Vec<TimeSeries>, Vec<TimeSeries>) {
    (
        RandomWalkGenerator::new(20_270_727).relation(WALKS, LEN),
        StockGenerator::new(20_270_728).relation(STOCKS, LEN),
    )
}

/// Full rebuild: registration (whole-match R\*-trees) plus the ST-index
/// builds a restarted process would have to repeat before serving the
/// same subsequence queries.
fn build_catalog(walks: &[TimeSeries], stocks: &[TimeSeries]) -> Catalog {
    let mut cat = Catalog::new();
    cat.register(SeriesRelation::from_series("walks", walks.to_vec()).expect("walks"))
        .expect("register walks");
    cat.register(SeriesRelation::from_series("stocks", stocks.to_vec()).expect("stocks"))
        .expect("register stocks");
    for w in WINDOWS {
        let probe: Vec<String> = walks[0].values()[..w]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        cat.run(&format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 1 WINDOW {w}",
            probe.join(", ")
        ))
        .expect("prime walks window");
    }
    cat
}

/// Every query form, including subsequence probes against each primed
/// window (cache hits on both sides — the snapshot carried the indexes).
fn workload(walks: &[TimeSeries]) -> Vec<String> {
    let mut queries = vec![
        "FIND SIMILAR TO walks.s3 IN walks WITHIN 1.5 APPLY mavg(8)".to_string(),
        "FIND 10 NEAREST TO stocks.s5 IN stocks".to_string(),
        "JOIN stocks WITHIN 0.9 APPLY mavg(4) USING INDEX".to_string(),
    ];
    for w in WINDOWS {
        let probe: Vec<String> = walks[7].values()[..w]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        queries.push(format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 5 WINDOW {w}",
            probe.join(", ")
        ));
    }
    queries
}

fn write_json(path: &str, build_secs: f64, open_secs: f64, bytes: usize) {
    let speedup = build_secs / open_secs;
    let json = format!(
        "{{\n  \"bench\": \"snapshot\",\n  \"series\": {},\n  \"series_len\": {LEN},\n  \
         \"build_ms\": {:.3},\n  \"open_ms\": {:.3},\n  \"speedup\": {:.2},\n  \
         \"snapshot_bytes\": {bytes}\n}}\n",
        WALKS + STOCKS,
        build_secs * 1e3,
        open_secs * 1e3,
        speedup
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("  wrote {path}");
    }
}

fn bench_snapshot(c: &mut Criterion) {
    let (walks, stocks) = relations();

    // Best-of-3 wall-clock on both sides of the trade.
    let mut build_secs = f64::INFINITY;
    let mut cat = None;
    for _ in 0..3 {
        let t = Instant::now();
        let built = build_catalog(&walks, &stocks);
        build_secs = build_secs.min(t.elapsed().as_secs_f64());
        cat = Some(built);
    }
    let cat = cat.expect("built at least once");
    let bytes = cat.snapshot_bytes().expect("serialize snapshot");

    let mut open_secs = f64::INFINITY;
    let mut restored = None;
    for _ in 0..3 {
        let t = Instant::now();
        let mut fresh = Catalog::new();
        fresh.restore_bytes(&bytes).expect("snapshot must restore");
        open_secs = open_secs.min(t.elapsed().as_secs_f64());
        restored = Some(fresh);
    }
    let restored = restored.expect("restored at least once");

    // Round-trip invariant: identical answers and disk-access counts for
    // every query form, every time.
    for q in workload(&walks) {
        let a = cat.run(&q).expect("query on original");
        let b = restored.run(&q).expect("query on restored");
        assert_eq!(a, b, "{q}: restored catalog must answer identically");
    }

    let speedup = build_secs / open_secs;
    println!(
        "snapshot: {} series of length {LEN}, {} cached ST-index(es), {} byte snapshot",
        WALKS + STOCKS,
        cat.subseq_cache_len(),
        bytes.len()
    );
    println!("  rebuild indexes : {:8.1} ms", build_secs * 1e3);
    println!("  restore snapshot: {:8.1} ms", open_secs * 1e3);
    println!("  speedup         : {speedup:6.1}x (answers byte-identical)");
    write_json("BENCH_snapshot.json", build_secs, open_secs, bytes.len());

    // The acceptance bar: restoring is at least 5x cheaper than
    // rebuilding. Wall-clock asserts are inherently noisy on busy hosts,
    // so the same escape hatch as the throughput bench applies.
    if std::env::var_os("TSQ_BENCH_SKIP_SPEEDUP_ASSERT").is_some() {
        println!("  (≥5x assertion skipped: TSQ_BENCH_SKIP_SPEEDUP_ASSERT set)");
    } else {
        assert!(
            speedup >= 5.0,
            "restoring a snapshot must be at least 5x faster than rebuilding \
             the catalog's indexes; measured {speedup:.1}x \
             (set TSQ_BENCH_SKIP_SPEEDUP_ASSERT=1 on busy hosts)"
        );
    }

    let mut group = c.benchmark_group("snapshot");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("rebuild", |b| {
        b.iter(|| black_box(build_catalog(&walks, &stocks)))
    });
    group.bench_function("restore", |b| {
        b.iter(|| {
            let mut fresh = Catalog::new();
            fresh.restore_bytes(black_box(&bytes)).expect("restore");
            black_box(fresh)
        })
    });
    group.bench_function("serialize", |b| {
        b.iter(|| black_box(cat.snapshot_bytes().expect("serialize")))
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
