//! Query throughput under concurrency: the batched executor vs. a
//! single-threaded loop over the same workload.
//!
//! The Lernaean-Hydra lesson for similarity-search systems is that at
//! scale *throughput under concurrent load*, not single-query latency,
//! decides usability. This bench drives one shared catalog with a mixed
//! workload (range, KNN, subsequence, join — the language's whole
//! surface) and reports:
//!
//! - sequential baseline: the batch run on 1 worker;
//! - batched executor: the same batch fanned over the machine's cores;
//! - the speedup, asserted ≥ 2x when at least 8 *logical* cores are
//!   available (≥ 4 physical on any SMT-2 host — the workload is
//!   embarrassingly parallel, so a healthy executor clears that bar
//!   easily; below that the speedup is printed but not asserted, since
//!   std cannot count physical cores);
//! - byte-identical results between the two runs, every time.
//!
//! Run with: `cargo bench --bench throughput`

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsq_core::{executor, SeriesRelation};
use tsq_lang::Catalog;
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};

const WALKS: usize = 600;
const STOCKS: usize = 400;
const LEN: usize = 128;
const QUERIES: usize = 160;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series(
            "walks",
            RandomWalkGenerator::new(20_270_127).relation(WALKS, LEN),
        )
        .expect("walks"),
    )
    .expect("register walks");
    cat.register(
        SeriesRelation::from_series(
            "stocks",
            StockGenerator::new(20_270_128).relation(STOCKS, LEN),
        )
        .expect("stocks"),
    )
    .expect("register stocks");
    cat
}

/// A mixed workload: selective range probes, KNN, subsequence search.
fn workload() -> Vec<String> {
    let mut queries = Vec::with_capacity(QUERIES);
    for i in 0..QUERIES {
        let s = i % 40;
        queries.push(match i % 4 {
            0 => format!("FIND SIMILAR TO walks.s{s} IN walks WITHIN 1.5 APPLY mavg(8)"),
            1 => format!("FIND 10 NEAREST TO stocks.s{s} IN stocks"),
            2 => format!("FIND SUBSEQUENCE OF walks.s{s} IN walks WITHIN 30 WINDOW {LEN}"),
            _ => format!("FIND 5 NEAREST TO walks.s{s} IN walks APPLY reverse"),
        });
    }
    queries
}

fn bench_throughput(c: &mut Criterion) {
    let cat = catalog();
    let queries = workload();
    let cores = executor::default_threads();

    // Warm the ST-index cache so both timed runs measure query execution,
    // not one-off index construction.
    let (oracle, _) = cat.run_batch(queries.clone(), 1);
    assert!(oracle.iter().all(|r| r.is_ok()), "workload must be valid");

    // Best-of-3 wall-clock for each mode, outside the criterion loops, so
    // the headline speedup is printed even under `--no-run`-style quick
    // passes of the full suite.
    let best = |threads: usize| -> (f64, usize) {
        let mut best_secs = f64::INFINITY;
        let mut rows = 0usize;
        for _ in 0..3 {
            let (results, summary) = cat.run_batch(queries.clone(), threads);
            assert_eq!(
                results, oracle,
                "threads = {threads}: answers must be byte-identical"
            );
            best_secs = best_secs.min(summary.elapsed.as_secs_f64());
            rows = summary.rows;
        }
        (best_secs, rows)
    };
    let (seq_secs, rows) = best(1);
    let (par_secs, _) = best(cores);
    let speedup = seq_secs / par_secs;
    println!(
        "throughput: {} queries ({rows} rows) over {WALKS}+{STOCKS} series of length {LEN}",
        queries.len()
    );
    println!(
        "  sequential      : {:8.1} ms  ({:7.0} q/s)",
        seq_secs * 1e3,
        queries.len() as f64 / seq_secs
    );
    println!(
        "  batched x{cores:<2}     : {:8.1} ms  ({:7.0} q/s)",
        par_secs * 1e3,
        queries.len() as f64 / par_secs
    );
    println!("  speedup         : {speedup:6.2}x (results byte-identical)");
    // The workload scales with *physical* cores, which std cannot count;
    // `default_threads` reports logical cores, so on an SMT machine with
    // 4 logical / 2 physical cores a healthy executor tops out near 2x.
    // Gate the hard ≥2x assertion at 8 logical cores (≥ 4 physical on
    // any SMT-2 host) so it can only fail when parallelism truly exists;
    // TSQ_BENCH_SKIP_SPEEDUP_ASSERT=1 turns it into a report for busy or
    // throttled hosts where wall-clock assertions are inherently noisy.
    if std::env::var_os("TSQ_BENCH_SKIP_SPEEDUP_ASSERT").is_some() {
        println!("  (≥2x assertion skipped: TSQ_BENCH_SKIP_SPEEDUP_ASSERT set)");
    } else if cores >= 8 {
        assert!(
            speedup >= 2.0,
            "batched executor must at least double single-threaded throughput \
             on a multi-core host; measured {speedup:.2}x on {cores} logical cores \
             (set TSQ_BENCH_SKIP_SPEEDUP_ASSERT=1 on busy hosts)"
        );
    } else if cores > 1 {
        println!("  (≥2x assertion skipped: only {cores} logical cores)");
    }

    let mut group = c.benchmark_group("throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    group.bench_function("batch_seq", |b| {
        b.iter(|| black_box(cat.run_batch(queries.clone(), 1)))
    });
    group.bench_function("batch_parallel", |b| {
        b.iter(|| black_box(cat.run_batch(queries.clone(), cores)))
    });
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
