//! # tsq — similarity-based queries for time series data
//!
//! Umbrella crate over the workspace reproducing **Rafiei & Mendelzon,
//! "Similarity-Based Queries for Time Series Data" (SIGMOD 1997)**. It
//! re-exports every layer so downstream users need a single dependency,
//! and it owns the top-level integration suites (`tests/`) and example
//! programs (`examples/`).
//!
//! The crate DAG underneath:
//!
//! ```text
//! tsq-pool ──────────────────┐
//! tsq-series ─→ tsq-dft ─→ tsq-rtree ─→ tsq-core ─→ tsq-service ─→ tsq-lang
//!                                            └─────→ tsq-bench
//! ```
//!
//! `tsq-pool` is the persistent work-stealing executor every parallel
//! path fans out over; it sits below `tsq-rtree` (the lowest crate that
//! fans out) and is re-exported through `tsq_core::executor`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tsq_bench as bench;
pub use tsq_core as core;
pub use tsq_dft as dft;
pub use tsq_lang as lang;
pub use tsq_pool as pool;
pub use tsq_rtree as rtree;
pub use tsq_series as series;
pub use tsq_service as service;

pub use tsq_core::{QueryExecutor, SimilarityIndex};
pub use tsq_lang::{Catalog, SharedCatalog};
pub use tsq_series::TimeSeries;
