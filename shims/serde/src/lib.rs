//! Offline stand-in for the subset of the `serde` crate this workspace uses.
//!
//! The build container cannot reach crates.io, so this shim provides marker
//! `Serialize`/`Deserialize` traits plus no-op derives. Types stay
//! annotated exactly as they would be against real serde; swapping the
//! workspace dependency back to the published crate requires no source
//! changes. Actual persistence uses the CSV codec in `tsq-series::io`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of `serde::Serialize`.
pub trait Serialize {}

/// Marker form of `serde::Deserialize` (lifetime elided — the shim never
/// borrows from an input buffer).
pub trait Deserialize {}
