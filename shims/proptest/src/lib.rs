//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build container cannot reach crates.io, so property tests run on a
//! vendored mini-engine: deterministic random generation (seeded per test
//! name), the [`strategy::Strategy`] combinators the suites call
//! (`prop_map`, `prop_flat_map`), range/tuple/`collection::vec` strategies,
//! and the `proptest!`/`prop_assert!` macro family. There is **no input
//! shrinking** — a failing case panics with the standard assertion message
//! and is reproducible because the per-test RNG seed is a pure function of
//! the test name.

#![forbid(unsafe_code)]

pub mod strategy;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of permissible collection lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is uniform over `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and per-test RNG construction.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG for one property: the seed is an FNV-1a hash of
    /// the test name, so every run of a given test sees the same inputs.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let __strategy = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
}
