//! The [`Strategy`] trait and the combinators the workspace's property
//! suites use: ranges, tuples, `prop_map`, `prop_flat_map`, and [`Just`].

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: `sample`
/// draws one concrete value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy, then
    /// samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(rand::RngCore::next_u64(rng)) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = u128::from(rand::RngCore::next_u64(rng)) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
