//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a tiny, deterministic implementation of exactly the surface the
//! code consumes: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over half-open and inclusive `f64`/integer
//! ranges. The generator is SplitMix64 feeding xoshiro256++, so streams are
//! high-quality and fully reproducible per seed (which the workload
//! generators in `tsq-series` rely on).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random-number source exposing a 64-bit output function.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(&mut || self.next_u64())
    }
}

/// A range that knows how to sample itself given a bit source.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample using `bits` as the entropy source.
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> Self::Output;
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::RngExt for StdRng {}
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(bits()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        // The closed endpoint is hit with probability ~2^-53; close enough.
        lo + unit_f64(bits()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u128;
                self.start + ((bits() as u128 % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u128 + 1;
                lo + ((bits() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.random_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&f));
            let i = r.random_range(10usize..=20);
            assert!((10..=20).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
