//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace only needs `#[derive(Serialize, Deserialize)]` to compile;
//! nothing serializes through the traits yet (persistence goes through the
//! CSV codec in `tsq-series::io`). These derives emit marker impls so the
//! traits are honest, without pulling in `syn`/`quote` (unavailable
//! offline): the type name is extracted with a hand-rolled token scan that
//! handles `struct`/`enum` items with optional generics.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the (non-generic) item a derive is attached to.
///
/// Returns the identifier following the `struct`/`enum` keyword; generic
/// items yield `None` so no (ill-formed) impl is emitted for them.
fn item_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => return None,
                        _ => return Some(name.to_string()),
                    }
                }
            }
        }
    }
    None
}

/// Emits `impl serde::Serialize for <T>` (non-generic items only; generic
/// items get no impl, which is all the workspace needs).
fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match item_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

/// Derives the shim's marker `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Derives the shim's marker `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
