//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build container cannot reach crates.io, so the seven `harness =
//! false` bench targets link against this mini-harness instead. It keeps
//! criterion's API shape (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`) and implements an honest warm-up + timed-measurement
//! loop, reporting mean/min/max nanoseconds per iteration on stdout. No
//! statistics beyond that — swap the workspace dependency back to the
//! published crate for rigorous analysis.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Per-iteration nanoseconds gathered by the last `iter` call.
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly: first until the warm-up budget is spent, then
    /// in measured batches until the measurement budget is spent (always at
    /// least `sample_size` measured iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        self.samples.clear();
        let deadline = Instant::now() + self.measurement;
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            if self.samples.len() >= self.sample_size && Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// A named collection of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepts a throughput annotation (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{full}: no samples (closure never called iter)");
            return;
        }
        let n = bencher.samples.len() as f64;
        let mean = bencher.samples.iter().sum::<f64>() / n;
        let min = bencher
            .samples
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = bencher
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{full}: mean {} (min {}, max {}) over {} iterations",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            bencher.samples.len()
        );
    }

    /// Ends the group (kept for API parity; reporting happens inline).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Reads the command line: the first non-flag argument is a substring
    /// filter on `group/function/param` ids (as under real criterion).
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        match self.filter.as_deref() {
            Some(f) => id.contains(f),
            None => true,
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes bench binaries with `--test`; benches
            // have nothing to verify in test mode, matching criterion.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
