//! The query language: a concrete (P, T, L) instance of the similarity
//! framework the paper builds on.
//!
//! Run with: `cargo run --release --example query_language`

use tsq_core::SeriesRelation;
use tsq_lang::Catalog;
use tsq_series::generate::StockGenerator;

fn main() {
    // Register a synthetic stock relation under ticker-style labels.
    let mut gen = StockGenerator::new(77);
    gen.inverse_fraction = 0.15;
    let prices = gen.relation(300, 128);
    let labeled = prices
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("TK{i:03}"), s))
        .collect();
    let relation = SeriesRelation::from_labeled("stocks", labeled).expect("relation");
    let mut catalog = Catalog::new();
    catalog.register(relation).expect("register");

    let queries = [
        // Range query under a 20-day moving average (Example 2.1's tool).
        "FIND SIMILAR TO stocks.TK000 IN stocks WITHIN 4 APPLY mavg(20)",
        // Nearest opposite movers (Example 2.2) — reverse + smooth.
        "FIND 5 NEAREST TO stocks.TK000 IN stocks APPLY mavg(20), reverse",
        // Mean-constrained search (GK95-style shift window).
        "FIND 3 NEAREST TO stocks.TK001 IN stocks",
        // All-pairs join under smoothing, via the transformed index.
        "JOIN stocks WITHIN 1.2 APPLY mavg(20) USING INDEX",
    ];

    for q in queries {
        println!("\ntsq> {q}");
        match catalog.run(q) {
            Ok(out) => {
                println!(
                    "  {} row(s), {} node accesses",
                    out.rows.len(),
                    out.nodes_visited
                );
                for row in out.rows.iter().take(6) {
                    match &row.b {
                        Some(b) => println!("  {}  ~  {}   D = {:.4}", row.a, b, row.distance),
                        None => println!("  {}   D = {:.4}", row.a, row.distance),
                    }
                }
                if out.rows.len() > 6 {
                    println!("  ... {} more", out.rows.len() - 6);
                }
            }
            Err(e) => println!("  error: {e}"),
        }
    }

    // Errors are first-class: unknown names and unsafe transformations are
    // reported, not panicked.
    println!("\ntsq> FIND SIMILAR TO stocks.NOPE IN stocks WITHIN 1");
    match catalog.run("FIND SIMILAR TO stocks.NOPE IN stocks WITHIN 1") {
        Err(e) => println!("  error: {e}"),
        Ok(_) => unreachable!(),
    }
}
