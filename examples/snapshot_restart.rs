//! Surviving a restart: snapshot a catalog, "restart" the process, and
//! restore it — with every query answering identically and no index
//! rebuilt.
//!
//! Before this subsystem, every `tsq` process rebuilt all R\*-trees and
//! trail ST-indexes from raw series at startup; a service restart threw
//! all of that work away. A snapshot makes index construction a
//! per-dataset cost: build once, `.save`, and every later process
//! `.open`s (or starts with `tsq --snapshot <path>`) in a fraction of the
//! build time.
//!
//! Run with: `cargo run --release --example snapshot_restart`

use std::time::Instant;

use tsq_core::SeriesRelation;
use tsq_lang::Catalog;
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};

fn main() {
    let dir = std::env::temp_dir().join(format!("tsq-snapshot-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("catalog.tsq");

    // ---- Session 1: build everything from raw series -------------------
    let build_started = Instant::now();
    let walks = RandomWalkGenerator::new(2027).relation(300, 128);
    let stocks = StockGenerator::new(2028).relation(200, 128);
    let mut catalog = Catalog::new();
    catalog
        .register(SeriesRelation::from_series("walks", walks.clone()).expect("walks relation"))
        .expect("register walks");
    catalog
        .register(SeriesRelation::from_series("stocks", stocks).expect("stocks relation"))
        .expect("register stocks");

    // Typical mixed workload; the subsequence queries build (and cache)
    // ST-indexes for two window sizes.
    let subseq_probe: Vec<String> = walks[3].values()[10..42]
        .iter()
        .map(|v| format!("{v}"))
        .collect();
    let queries = [
        "FIND SIMILAR TO walks.s1 IN walks WITHIN 2 APPLY mavg(6)".to_string(),
        "FIND 5 NEAREST TO stocks.s9 IN stocks".to_string(),
        "JOIN stocks WITHIN 1.2 APPLY mavg(4) USING INDEX".to_string(),
        format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 4 WINDOW 32",
            subseq_probe.join(", ")
        ),
        "FIND 3 NEAREST SUBSEQUENCE OF walks.s0 IN walks WINDOW 128".to_string(),
    ];
    let before: Vec<_> = queries
        .iter()
        .map(|q| catalog.run(q).expect("query on built catalog"))
        .collect();
    let build_elapsed = build_started.elapsed();
    println!(
        "built catalog: {} relations, {} cached ST-index(es) in {:.1} ms",
        catalog.relation_names().len(),
        catalog.subseq_cache_len(),
        build_elapsed.as_secs_f64() * 1e3
    );

    // ---- Snapshot ------------------------------------------------------
    let save_started = Instant::now();
    let bytes = catalog.save(&path).expect("save snapshot");
    println!(
        "saved {} bytes to {} in {:.1} ms",
        bytes,
        path.display(),
        save_started.elapsed().as_secs_f64() * 1e3
    );

    // ---- "Restart": drop everything, restore from disk -----------------
    drop(catalog);
    let open_started = Instant::now();
    let restored = Catalog::load(&path).expect("restore snapshot");
    let open_elapsed = open_started.elapsed();
    println!(
        "restored {} relations, {} cached ST-index(es) in {:.1} ms ({:.1}x faster than building)",
        restored.relation_names().len(),
        restored.subseq_cache_len(),
        open_elapsed.as_secs_f64() * 1e3,
        build_elapsed.as_secs_f64() / open_elapsed.as_secs_f64()
    );

    // ---- The round-trip invariant --------------------------------------
    for (q, want) in queries.iter().zip(&before) {
        let got = restored.run(q).expect("query on restored catalog");
        assert_eq!(
            &got, want,
            "{q}: restored catalog must answer identically (rows AND disk accesses)"
        );
        println!(
            "  identical: {} row(s), {} disk accesses  <-  {}",
            got.rows.len(),
            got.nodes_visited,
            &q[..q.len().min(60)]
        );
    }

    // A restored catalog is fully live: new data registers and queries.
    let mut restored = restored;
    restored
        .register(
            SeriesRelation::from_series("fresh", RandomWalkGenerator::new(7).relation(20, 128))
                .expect("fresh relation"),
        )
        .expect("register after restore");
    assert!(restored.run("FIND 2 NEAREST TO fresh.s0 IN fresh").is_ok());
    println!("restored catalog accepts new relations and keeps serving");

    std::fs::remove_dir_all(&dir).ok();
}
