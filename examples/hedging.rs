//! Hedging: find stocks that move *opposite* to a given one (Example 2.2).
//!
//! The reversing transformation `T_rev = (-1, 0)` multiplies every daily
//! value by -1; a range query against `T_rev(r)` therefore returns stocks
//! whose mirrored movement tracks the query stock, and a spatial self-join
//! between `r` and `T_rev(r)` lists all opposite-moving pairs.
//!
//! Run with: `cargo run --release --example hedging`

use tsq_core::{IndexConfig, LinearTransform, QueryWindow, SimilarityIndex};
use tsq_series::generate::StockGenerator;
use tsq_series::normal::normal_form;
use tsq_series::stats::pearson;

fn main() {
    // A synthetic market with a healthy share of inverse-loading stocks
    // (the substitution for the paper's 1067 real series).
    let mut gen = StockGenerator::new(123);
    gen.inverse_fraction = 0.25;
    let stocks = gen.relation(400, 128);
    let index = SimilarityIndex::build(IndexConfig::default(), stocks.clone()).expect("index");

    let rev = LinearTransform::reverse(128);
    let q = &stocks[0];

    // Which stocks, when mirrored, look like stock 0?
    let (matches, stats) = index
        .range_query(q, 6.0, &rev, &QueryWindow::default())
        .expect("reverse range query");
    println!(
        "stocks opposite to #0 (eps = 6.0): {} matches, {} node accesses",
        matches.len(),
        stats.index.nodes_visited
    );
    let nq = normal_form(q);
    for m in matches.iter().take(8) {
        let corr = pearson(nq.values(), normal_form(&stocks[m.id]).values());
        println!(
            "  stock {:3}  D = {:6.3}  corr = {corr:+.2}",
            m.id, m.distance
        );
        assert!(
            corr < 0.0,
            "an opposite mover must be negatively correlated"
        );
    }

    // All opposite-moving pairs, via the reverse self-join. Applying T_rev
    // to ONE side of the predicate is expressed by joining the transformed
    // features of each stock against the untransformed index.
    let knn = index.knn_query(q, 3, &rev).expect("knn");
    println!("\n3 best hedges for stock #0:");
    for m in &knn.0 {
        let corr = pearson(nq.values(), normal_form(&stocks[m.id]).values());
        println!(
            "  stock {:3}  D = {:6.3}  corr = {corr:+.2}",
            m.id, m.distance
        );
    }
}
