//! Many clients, one catalog: the service-layer topology of the ROADMAP's
//! north star, in miniature.
//!
//! A [`SharedCatalog`] is handed to N client threads that hammer it with a
//! mixed workload (range, KNN, subsequence queries) while another thread
//! registers a brand-new relation mid-flight. Every client checks its
//! answers against a sequential oracle computed up front — concurrency
//! must never change an answer — and the run finishes with a batched
//! fan-out through the worker-pool executor, printing per-batch stats.
//!
//! Run with: `cargo run --release --example concurrent_queries`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use tsq::core::{executor, SeriesRelation};
use tsq::series::generate::{RandomWalkGenerator, StockGenerator};
use tsq::{Catalog, SharedCatalog};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 40;

fn main() {
    // 1. One catalog, shared. Reads take a shared lock; the ST-index
    //    cache underneath has its own reader lock, so clients touching
    //    different relations (or the same one) proceed concurrently.
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series(
            "walks",
            RandomWalkGenerator::new(20_260_727).relation(400, 128),
        )
        .expect("generate walks"),
    )
    .expect("register walks");
    cat.register(
        SeriesRelation::from_series("stocks", StockGenerator::new(20_260_728).relation(300, 128))
            .expect("generate stocks"),
    )
    .expect("register stocks");
    let shared = SharedCatalog::new(cat);

    // 2. The workload and its sequential oracle.
    let queries: Vec<String> = (0..20)
        .map(|i| match i % 4 {
            0 => format!("FIND SIMILAR TO walks.s{i} IN walks WITHIN 1.5 APPLY mavg(8)"),
            1 => format!("FIND 7 NEAREST TO stocks.s{i} IN stocks"),
            2 => format!("FIND SUBSEQUENCE OF walks.s{i} IN walks WITHIN 30 WINDOW 128"),
            _ => format!("FIND 3 NEAREST TO walks.s{i} IN walks APPLY reverse"),
        })
        .collect();
    let oracle: Vec<_> = queries
        .iter()
        .map(|q| shared.run(q).expect("oracle query"))
        .collect();

    // 3. N clients hammer the catalog; a writer registers a new relation
    //    mid-flight (it waits for in-flight readers, readers never wait
    //    for each other).
    let started = Instant::now();
    let served = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let shared = shared.clone();
            let queries = &queries;
            let oracle = &oracle;
            let served = &served;
            scope.spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let q = (client + r * CLIENTS) % queries.len();
                    let out = shared.run(&queries[q]).expect("client query");
                    assert_eq!(out, oracle[q], "client {client}: answer drifted under load");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let writer = shared.clone();
        scope.spawn(move || {
            let fresh =
                SeriesRelation::from_series("fresh", RandomWalkGenerator::new(7).relation(50, 64))
                    .expect("generate fresh");
            writer.register(fresh).expect("register mid-flight");
        });
    });
    let elapsed = started.elapsed();
    println!(
        "{CLIENTS} clients served {} requests in {:.1} ms ({:.0} q/s), all answers oracle-exact",
        served.load(Ordering::Relaxed),
        elapsed.as_secs_f64() * 1e3,
        served.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
    );
    let out = shared
        .run("FIND 2 NEAREST TO fresh.s0 IN fresh")
        .expect("query the mid-flight relation");
    println!(
        "mid-flight registration visible: fresh.s0 has {} nearest rows",
        out.rows.len()
    );

    // 4. The same workload as one batch through the worker-pool executor.
    let threads = executor::default_threads();
    let (results, summary) = shared.run_batch(queries.clone(), threads);
    for (r, want) in results.iter().zip(&oracle) {
        assert_eq!(r.as_ref().expect("batch query"), want);
    }
    println!(
        "batch: {} queries on {} thread(s) in {:.1} ms ({:.0} q/s, {} rows, {} disk accesses)",
        summary.queries,
        summary.threads,
        summary.elapsed.as_secs_f64() * 1e3,
        summary.queries_per_second(),
        summary.rows,
        summary.nodes_visited
    );
}
