//! Subsequence search: find every place a short pattern occurs inside a
//! relation of longer series, without scanning every window.
//!
//! The ST-index slides a window over each stored series, turns each window
//! into its first `k` DFT coefficients via the incremental sliding DFT
//! (`O(k)` per step), and packs runs of consecutive feature points into
//! trail MBRs inside an R\*-tree. Range and k-NN queries traverse trails,
//! then verify candidates exactly — no false dismissals (Lemma 1 restated
//! for subsequences), which this example double-checks against the naive
//! sliding scan.
//!
//! Run with: `cargo run --release --example subsequence_search`

use tsq_core::{ScanMode, SubseqConfig, SubseqIndex};
use tsq_lang::Catalog;
use tsq_series::generate::RandomWalkGenerator;
use tsq_series::TimeSeries;

fn main() {
    // 1. A relation of 300 random walks, deliberately varied in length —
    //    subsequence search does not need equal-length series.
    let mut gen = RandomWalkGenerator::new(20_260_727);
    let relation: Vec<TimeSeries> = (0..300).map(|i| gen.series(256 + (i % 7) * 32)).collect();

    let window = 48;
    let index = SubseqIndex::build(SubseqConfig::new(window), relation.clone()).expect("build");
    println!(
        "ST-index over {} series: {} windows of length {} in {} trail MBRs (k = {})",
        index.len(),
        index.windows_total(),
        window,
        index.trails_total(),
        index.config().k,
    );

    // 2. The pattern: a stored window with a little noise on top, so it is
    //    genuinely absent from the data but close to one resident window.
    let q = TimeSeries::new(
        relation[126].values()[60..60 + window]
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.1 * (i as f64 * 0.8).sin())
            .collect(),
    );

    // 3. Range query vs. the sliding-scan oracle.
    let eps = 2.0;
    let (matches, stats) = index.subseq_range(&q, eps).expect("range");
    let (oracle, scan_stats) = index
        .scan_subseq_range(&q, eps, ScanMode::Naive)
        .expect("scan");
    assert_eq!(matches, oracle, "Lemma 1: match sets are identical");
    println!(
        "\nrange eps={eps}: {} match(es); index examined {} of {} windows \
         ({} node accesses) — the scan examined all {}",
        matches.len(),
        stats.candidates,
        index.windows_total(),
        stats.index.nodes_visited,
        scan_stats.windows,
    );
    for m in matches.iter().take(5) {
        println!(
            "  series {:3} @ offset {:3}   D = {:.4}",
            m.series, m.offset, m.distance
        );
    }

    // 4. The 5 nearest windows anywhere in the relation.
    let (knn, _) = index.subseq_knn(&q, 5).expect("knn");
    println!("\n5 nearest windows:");
    for m in &knn {
        println!(
            "  series {:3} @ offset {:3}   D = {:.4}",
            m.series, m.offset, m.distance
        );
    }

    // 5. The same power through the query language. Named relations hold
    //    equal-length series (the whole-sequence engine needs that), so
    //    register the 256-sample walks — series 126, the probe's source,
    //    among them.
    let equal_len: Vec<TimeSeries> = relation
        .iter()
        .filter(|s| s.len() == 256)
        .cloned()
        .collect();
    let mut catalog = Catalog::new();
    catalog
        .register(tsq_core::SeriesRelation::from_series("walks", equal_len).expect("rel"))
        .expect("register");
    let literal: Vec<String> = q.values().iter().map(|v| format!("{v:.6}")).collect();
    let query = format!(
        "FIND 3 NEAREST SUBSEQUENCE OF [{}] IN walks WINDOW {window}",
        literal.join(", ")
    );
    let out = catalog.run(&query).expect("language query");
    println!(
        "\nvia the query language ({} node accesses):",
        out.nodes_visited
    );
    for row in &out.rows {
        println!(
            "  {} @ {}   D = {:.4}",
            row.a,
            row.offset.map_or("?".to_string(), |o| o.to_string()),
            row.distance
        );
    }
}
