//! Quickstart: build a similarity index over random walks and run the three
//! query kinds — range, nearest-neighbor, and all-pairs — with and without
//! transformations.
//!
//! Run with: `cargo run --release --example quickstart`

use tsq_core::{IndexConfig, LinearTransform, QueryWindow, ScanMode, SimilarityIndex};
use tsq_series::generate::RandomWalkGenerator;

fn main() {
    // 1. A relation of 1,000 random-walk sequences of length 128 — the
    //    paper's synthetic workload (Section 5).
    let relation = RandomWalkGenerator::new(42).relation(1_000, 128);
    let index = SimilarityIndex::build(IndexConfig::default(), relation).expect("build index");
    println!(
        "indexed {} series of length {} ({}-d {} space, k = {})",
        index.len(),
        index.series_len(),
        index.config().schema.dims(),
        match index.config().space {
            tsq_core::SpaceKind::Polar => "polar",
            tsq_core::SpaceKind::Rectangular => "rectangular",
        },
        index.config().schema.k(),
    );

    let q = index.series(17).expect("series 17").clone();

    // 2. Range query, no transformation: sequences whose normal forms lie
    //    within eps of q's.
    let identity = LinearTransform::identity(128);
    let (matches, stats) = index
        .range_query(&q, 2.0, &identity, &QueryWindow::default())
        .expect("range query");
    println!(
        "\nrange eps=2.0 (identity): {} matches, {} node accesses, {} candidates, {} false hits",
        matches.len(),
        stats.index.nodes_visited,
        stats.candidates,
        stats.false_hits
    );
    for m in matches.iter().take(5) {
        println!("  series {:4}  D = {:.4}", m.id, m.distance);
    }

    // 3. The same query under a 10-day moving average: short-term noise is
    //    smoothed away before distances are measured, so more walks qualify.
    let mavg = LinearTransform::moving_average(128, 10);
    let (smoothed, s_stats) = index
        .range_query(&q, 2.0, &mavg, &QueryWindow::default())
        .expect("transformed range query");
    println!(
        "range eps=2.0 (mavg10):   {} matches, {} node accesses",
        smoothed.len(),
        s_stats.index.nodes_visited
    );

    // 4. Nearest neighbors under the transformation.
    let (knn, _) = index.knn_query(&q, 5, &mavg).expect("knn");
    println!("\n5 nearest under mavg10:");
    for m in &knn {
        println!("  series {:4}  D = {:.4}", m.id, m.distance);
    }

    // 5. Sanity: the index answers exactly what a sequential scan answers
    //    (Lemma 1 — no false dismissals, post-processing removes false
    //    hits).
    let (scan, _) = index
        .scan_range(&q, 2.0, &mavg, ScanMode::EarlyAbandon)
        .expect("scan");
    assert_eq!(scan, smoothed);
    println!("\nindex answer set == sequential scan answer set  [ok]");

    // 6. All-pairs: which walks are similar after smoothing?
    let join = index.join_index(1.0, &mavg).expect("join");
    println!(
        "self-join eps=1.0 under mavg10: {} directed pairs ({} unordered)",
        join.pairs.len(),
        join.pairs.len() / 2
    );
}
