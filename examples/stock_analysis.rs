//! Stock data analysis — the paper's Section 1 and Section 2 walkthrough.
//!
//! Example 1.1 uses the exact sequences printed in the paper, so the
//! distances here reproduce the published numbers (11.92 and 0.47)
//! digit-for-digit. The Section-2 examples used a long-gone FTP archive of
//! real prices; synthetic stocks stand in, and the *shape* of the paper's
//! observations — each transformation step shrinks the distance between
//! related stocks, while unrelated stocks stay distant — is reproduced.
//!
//! Run with: `cargo run --release --example stock_analysis`

use tsq_series::distance::euclidean;
use tsq_series::generate::StockGenerator;
use tsq_series::moving_average::circular_moving_average;
use tsq_series::normal::normal_form;
use tsq_series::TimeSeries;

fn main() {
    example_1_1();
    example_2_1_shape();
    example_2_3_shape();
}

/// Example 1.1: two stocks that look different day-to-day but identical
/// after a 3-day moving average.
fn example_1_1() {
    let s1 = TimeSeries::from([
        36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0, 37.0,
    ]);
    let s2 = TimeSeries::from([
        40.0, 37.0, 37.0, 42.0, 41.0, 35.0, 40.0, 35.0, 34.0, 42.0, 38.0, 35.0, 45.0, 36.0, 34.0,
    ]);
    println!("== Example 1.1 (exact paper sequences) ==");
    println!("s1 = {s1}");
    println!("s2 = {s2}");
    let d = euclidean(&s1, &s2);
    println!("D(s1, s2)                 = {d:.2}   (paper: 11.92)");
    let m1 = circular_moving_average(&s1, 3);
    let m2 = circular_moving_average(&s2, 3);
    let dm = euclidean(&m1, &m2);
    println!("D(mavg3(s1), mavg3(s2))   = {dm:.2}    (paper: 0.47)");
    assert!((d - 11.92).abs() < 0.005);
    assert!((dm - 0.47).abs() < 0.005);
}

/// Example 2.1's pattern on synthetic stocks: shift, scale, then smooth —
/// every step brings two same-sector stocks closer.
fn example_2_1_shape() {
    println!("\n== Example 2.1 shape (synthetic stocks) ==");
    let mut gen = StockGenerator::new(7);
    gen.inverse_fraction = 0.0;
    let sectors = gen.sectors;
    let stocks = gen.relation(2 * sectors, 128);
    // Stocks 0 and `sectors` share a sector factor.
    let a = &stocks[0];
    let b = &stocks[sectors];
    let d_orig = euclidean(a, b);
    let shifted_a = a.shift(-a.mean());
    let shifted_b = b.shift(-b.mean());
    let d_shift = euclidean(&shifted_a, &shifted_b);
    let na = normal_form(a);
    let nb = normal_form(b);
    let d_norm = euclidean(&na, &nb);
    let d_mv = euclidean(
        &circular_moving_average(&na, 20),
        &circular_moving_average(&nb, 20),
    );
    println!("original : D = {d_orig:.2}");
    println!("shifted  : D = {d_shift:.2}");
    println!("scaled   : D = {d_norm:.2}");
    println!("20-day MV: D = {d_mv:.2}");
    assert!(
        d_mv < d_norm,
        "smoothing must reduce the normal-form distance"
    );
}

/// Example 2.3's caution: transformations cannot make *dissimilar trends*
/// similar — repeated smoothing of unrelated stocks leaves a large
/// residual distance.
fn example_2_3_shape() {
    println!("\n== Example 2.3 shape: unrelated stocks stay apart ==");
    let mut gen = StockGenerator::new(19);
    gen.inverse_fraction = 0.0;
    gen.idio_vol = 0.02; // strongly idiosyncratic: dissimilar trends
    let stocks = gen.relation(2, 128);
    let mut a = normal_form(&stocks[0]);
    let mut b = normal_form(&stocks[1]);
    let mut last = euclidean(&a, &b);
    println!("normal form:      D = {last:.2}");
    for round in 1..=10 {
        a = circular_moving_average(&a, 20);
        b = circular_moving_average(&b, 20);
        let d = euclidean(&a, &b);
        if round <= 3 || round == 10 {
            println!("{round:2}x 20-day MV:    D = {d:.2}");
        }
        last = d;
    }
    // The paper's point: even after ten rounds the distance stays
    // substantial for genuinely different trends (theirs: 6.57 from 11.06).
    assert!(
        last > 0.5,
        "unrelated stocks should stay distant, got {last}"
    );
}
