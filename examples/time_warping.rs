//! Time warping (Example 1.2 / Appendix A): comparing series sampled at
//! different frequencies.
//!
//! The relation holds series sampled every other day; the query is a
//! daily-sampled series twice as long. The warp transformation stretches
//! the stored spectra by m = 2 *inside the index traversal* (Equation 19),
//! so no stored series is ever re-sampled.
//!
//! Run with: `cargo run --release --example time_warping`

use tsq_core::{IndexConfig, LinearTransform, QueryWindow, SimilarityIndex};
use tsq_series::generate::RandomWalkGenerator;
use tsq_series::warp::stretch;
use tsq_series::TimeSeries;

fn main() {
    // Example 1.2's sequences.
    let p = TimeSeries::from([20.0, 21.0, 20.0, 23.0]);
    let s = TimeSeries::from([20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0]);
    println!("p           = {p}");
    println!("s           = {s}");
    println!("stretch(p,2)= {}", stretch(&p, 2));
    assert_eq!(stretch(&p, 2), s, "Example 1.2: warping p by 2 gives s");

    // A relation of every-other-day walks, plus one that matches the query
    // exactly when warped.
    let mut gen = RandomWalkGenerator::new(9);
    let mut relation = gen.relation(500, 64);
    let special = gen.series(64);
    relation.push(special.clone());
    let index = SimilarityIndex::build(IndexConfig::default(), relation).expect("index");

    // The daily-sampled query: the special walk observed at 2x frequency.
    let q = stretch(&special, 2);
    assert_eq!(q.len(), 128);

    let warp2 = LinearTransform::time_warp(64, 2);
    let (matches, stats) = index
        .range_query(&q, 1e-6, &warp2, &QueryWindow::default())
        .expect("warp query");
    println!(
        "\nwarp(2) range query over {} series: {} match(es), {} node accesses",
        index.len(),
        matches.len(),
        stats.index.nodes_visited
    );
    for m in &matches {
        println!("  series {:3}  D = {:.2e}", m.id, m.distance);
    }
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].id, 500);

    // Nearest-neighbor form: the special series wins by a wide margin.
    let (knn, _) = index.knn_query(&q, 3, &warp2).expect("warp knn");
    println!("\n3 nearest under warp(2):");
    for m in &knn {
        println!("  series {:3}  D = {:.4}", m.id, m.distance);
    }
    assert_eq!(knn[0].id, 500);
}
