//! Sequential-scan baselines (Section 5 / Table 1 methods (a) and (b)).
//!
//! The paper is careful to compare against a *good* sequential scan: it
//! scans "the relation that stores the series in the frequency domain, not
//! the time domain", so that "each series ... has its larger coefficients
//! at the beginning" and the distance computation "can skip many sequences
//! within the first few coefficients" (early abandoning). Both the naive
//! full-distance scan and the early-abandoning scan are provided, plus a
//! multi-threaded variant (an extension; the index must beat even a
//! parallel scan to justify itself).

use std::sync::Mutex;

use crate::error::Result;
use crate::features::Features;
use crate::index::{Match, SimilarityIndex};
use crate::transform::LinearTransform;

/// Whether the scan may abandon a distance computation once it exceeds the
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Compute every distance in full (Table 1, method (a)).
    Naive,
    /// Stop a distance computation as soon as it exceeds `eps`
    /// (Table 1, method (b); ~10x faster in the paper).
    EarlyAbandon,
}

/// Counters from a sequential scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Sequences examined (always the whole relation).
    pub scanned: usize,
    /// Distance computations abandoned early.
    pub abandoned: usize,
}

impl SimilarityIndex {
    /// Range query by sequential scan over the stored frequency-domain
    /// relation: every stored series is transformed and compared against
    /// `q`; no index is used. Ground truth for Lemma-1 tests and the
    /// baseline of Figures 10–12.
    pub fn scan_range(
        &self,
        q: &tsq_series::TimeSeries,
        eps: f64,
        t: &LinearTransform,
        mode: ScanMode,
    ) -> Result<(Vec<Match>, ScanStats)> {
        crate::error::Error::check_threshold(eps)?;
        let qf = self.query_features(q, t)?;
        Ok(self.scan_range_features(&qf, eps, t, mode))
    }

    /// Scan variant taking precomputed query features (used by join
    /// baselines).
    pub fn scan_range_features(
        &self,
        qf: &Features,
        eps: f64,
        t: &LinearTransform,
        mode: ScanMode,
    ) -> (Vec<Match>, ScanStats) {
        let mut stats = ScanStats::default();
        let mut matches = Vec::new();
        for id in 0..self.len() {
            stats.scanned += 1;
            match mode {
                ScanMode::Naive => {
                    let d = self.exact_distance(id, t, qf);
                    if d <= eps {
                        matches.push(Match { id, distance: d });
                    }
                }
                ScanMode::EarlyAbandon => match self.exact_distance_bounded(id, t, qf, eps) {
                    Some(d) => matches.push(Match { id, distance: d }),
                    None => stats.abandoned += 1,
                },
            }
        }
        (matches, stats)
    }

    /// K-nearest-neighbor query by sequential scan (ground truth for KNN
    /// tests).
    pub fn scan_knn(
        &self,
        q: &tsq_series::TimeSeries,
        k: usize,
        t: &LinearTransform,
    ) -> Result<Vec<Match>> {
        let qf = self.query_features(q, t)?;
        let mut all: Vec<Match> = (0..self.len())
            .map(|id| Match {
                id,
                distance: self.exact_distance(id, t, &qf),
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        all.truncate(k);
        Ok(all)
    }

    /// Parallel early-abandoning scan over `threads` worker threads
    /// (std scoped threads; results merged and sorted by id).
    pub fn scan_range_parallel(
        &self,
        q: &tsq_series::TimeSeries,
        eps: f64,
        t: &LinearTransform,
        threads: usize,
    ) -> Result<(Vec<Match>, ScanStats)> {
        crate::error::Error::check_threshold(eps)?;
        let qf = self.query_features(q, t)?;
        let threads = threads.max(1);
        let n = self.len();
        let chunk = n.div_ceil(threads).max(1);
        let results: Mutex<(Vec<Match>, ScanStats)> =
            Mutex::new((Vec::new(), ScanStats::default()));
        std::thread::scope(|scope| {
            for start in (0..n).step_by(chunk) {
                let end = (start + chunk).min(n);
                let qf = &qf;
                let results = &results;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut stats = ScanStats::default();
                    for id in start..end {
                        stats.scanned += 1;
                        match self.exact_distance_bounded(id, t, qf, eps) {
                            Some(d) => local.push(Match { id, distance: d }),
                            None => stats.abandoned += 1,
                        }
                    }
                    // Poison recovery: a panicking sibling worker aborts
                    // the whole scope anyway, so a poisoned flag carries no
                    // information here — never turn it into a second panic.
                    let mut guard = results.lock().unwrap_or_else(|e| e.into_inner());
                    guard.0.extend(local);
                    guard.1.scanned += stats.scanned;
                    guard.1.abandoned += stats.abandoned;
                });
            }
        });
        let (mut matches, stats) = results.into_inner().unwrap_or_else(|e| e.into_inner());
        matches.sort_by_key(|m| m.id);
        Ok((matches, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::space::QueryWindow;
    use tsq_series::generate::RandomWalkGenerator;

    fn index(count: usize, len: usize, seed: u64) -> SimilarityIndex {
        let rel = RandomWalkGenerator::new(seed).relation(count, len);
        SimilarityIndex::build(IndexConfig::default(), rel).unwrap()
    }

    #[test]
    fn scan_modes_agree() {
        let idx = index(80, 64, 21);
        let q = idx.series(0).unwrap().clone();
        let t = LinearTransform::moving_average(64, 5);
        let (a, _) = idx.scan_range(&q, 2.0, &t, ScanMode::Naive).unwrap();
        let (b, sb) = idx.scan_range(&q, 2.0, &t, ScanMode::EarlyAbandon).unwrap();
        assert_eq!(a, b);
        assert!(sb.abandoned > 0, "early abandoning should trigger");
        assert_eq!(sb.scanned, 80);
    }

    #[test]
    fn scan_agrees_with_index_query() {
        // Lemma 1 end-to-end: the indexed query returns exactly the scan's
        // answer set.
        let idx = index(150, 32, 22);
        let t = LinearTransform::moving_average(32, 4);
        for qid in [0usize, 17, 49] {
            let q = idx.series(qid).unwrap().clone();
            let (scan, _) = idx.scan_range(&q, 1.2, &t, ScanMode::Naive).unwrap();
            let (indexed, _) = idx
                .range_query(&q, 1.2, &t, &QueryWindow::default())
                .unwrap();
            assert_eq!(scan, indexed, "query {qid}");
        }
    }

    #[test]
    fn parallel_scan_matches_serial() {
        let idx = index(101, 32, 23);
        let q = idx.series(3).unwrap().clone();
        let t = LinearTransform::identity(32);
        let (serial, _) = idx.scan_range(&q, 3.0, &t, ScanMode::EarlyAbandon).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let (par, stats) = idx.scan_range_parallel(&q, 3.0, &t, threads).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
            assert_eq!(stats.scanned, 101);
        }
    }

    #[test]
    fn scan_knn_ordering() {
        let idx = index(60, 32, 24);
        let q = idx.series(10).unwrap().clone();
        let t = LinearTransform::identity(32);
        let knn = idx.scan_knn(&q, 5, &t).unwrap();
        assert_eq!(knn.len(), 5);
        assert_eq!(knn[0].id, 10, "self is nearest under identity");
        for w in knn.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
