//! The similarity index: Algorithms 1 and 2 of the paper.
//!
//! [`SimilarityIndex`] stores a relation of equal-length time series. Each
//! series is mapped to a feature point (mean, std, first `k` DFT
//! coefficients of its normal form — or raw coefficients, per the schema)
//! and inserted into an R\*-tree. Queries that involve a safe
//! transformation `T` never materialize the transformed index `I' = T(I)`:
//! the traversal applies `T` to every node MBR on the fly (Algorithm 1) and
//! tests the result against the search rectangle (Algorithm 2), then
//! post-processes candidates against full records. Lemma 1 guarantees no
//! false dismissals; tests assert exact agreement with linear scans.

use std::path::Path;
use std::sync::Arc;

use tsq_dft::energy::{euclidean_complex, euclidean_complex_early_abandon};
use tsq_dft::FftPlanner;
use tsq_rtree::{PagedTree, RStarTree, RTreeConfig, Rect, SearchStats};
use tsq_series::{NormalForm, TimeSeries};
use tsq_store::{Decoder, Encoder, StoreError};

use crate::error::{Error, Result};
use crate::features::{FeatureSchema, Features};
use crate::space::{QueryWindow, SpaceKind};
use crate::transform::LinearTransform;

/// Configuration of a [`SimilarityIndex`].
#[derive(Debug, Clone, Copy)]
pub struct IndexConfig {
    /// Feature schema (default: the paper's NormalForm layout with `k = 2`,
    /// i.e. a 6-dimensional index).
    pub schema: FeatureSchema,
    /// Coordinate space (default: polar, as in the paper's experiments).
    pub space: SpaceKind,
    /// R\*-tree tuning.
    pub rtree: RTreeConfig,
    /// Build the tree with STR bulk loading (faster) instead of repeated
    /// insertion.
    pub bulk_load: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            schema: FeatureSchema::NormalForm { k: 2 },
            space: SpaceKind::Polar,
            rtree: RTreeConfig::default(),
            bulk_load: true,
        }
    }
}

/// A stored series with its extracted features.
#[derive(Debug, Clone)]
pub struct StoredSeries {
    /// The original series.
    pub series: TimeSeries,
    /// Extracted features (full spectrum of the indexed representation).
    pub features: Features,
}

/// One query answer: a series id and its exact distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Position of the series in the relation (insertion order).
    pub id: usize,
    /// Exact Euclidean distance (between transformed representations).
    pub distance: f64,
}

/// Statistics of one query, extending the R-tree counters with
/// post-processing effort.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Index traversal counters (nodes visited = simulated disk accesses).
    pub index: SearchStats,
    /// Candidates produced by the index level.
    pub candidates: usize,
    /// Candidates rejected by the exact check (false hits of the k-index).
    pub false_hits: usize,
    /// Exact distance computations performed.
    pub exact_checks: usize,
}

/// The similarity index over a relation of time series.
///
/// Series lengths are *usually* equal, but streaming ingest makes them
/// transiently unequal: a single-series append leaves the relation ragged
/// until the other series catch up. The feature dimensionality is fixed by
/// the schema (`2 + 2k` under the default NormalForm layout), independent
/// of series length, so a ragged relation still yields one consistent
/// feature space — but whole-series Euclidean distance is undefined across
/// lengths, so queries are gated on uniformity ([`Error::Ragged`]).
///
/// Node storage comes in two modes. By default the R\*-tree lives in
/// memory. [`SimilarityIndex::attach_paged`] moves the nodes into a page
/// file behind a pin-counted LRU buffer pool; every traversal then
/// fetches nodes through the pool, and query statistics carry *measured*
/// `pool_hits`/`pool_misses` next to the simulated node-visit counters.
#[derive(Debug, Clone)]
pub struct SimilarityIndex {
    config: IndexConfig,
    series_len: usize,
    tree: RStarTree<usize>,
    store: Vec<StoredSeries>,
    /// Paged node storage; when set, `tree` is empty and every traversal
    /// goes through the page file's buffer pool. Shared so clones reuse
    /// one pool (and its cumulative counters).
    paged: Option<Arc<PagedTree>>,
}

impl SimilarityIndex {
    /// Builds an index over a relation. Lengths may differ (a relation
    /// mid-ingest is ragged); whole-series queries are then gated until
    /// appends even the lengths out.
    ///
    /// # Errors
    /// [`Error::InvalidCutoff`] if the schema's `k` does not fit some
    /// series.
    pub fn build(config: IndexConfig, relation: Vec<TimeSeries>) -> Result<Self> {
        let mut planner = FftPlanner::new();
        let mut series_len = 0usize;
        let mut store = Vec::with_capacity(relation.len());
        let mut points = Vec::with_capacity(relation.len());
        for (id, series) in relation.into_iter().enumerate() {
            let features = Features::extract(&series, config.schema, &mut planner)?;
            let coords = config.space.point(&features, config.schema);
            points.push((Rect::from_point(&coords), id));
            series_len = series_len.max(series.len());
            store.push(StoredSeries { series, features });
        }
        let tree = Self::pack_tree(&config, points);
        Ok(SimilarityIndex {
            config,
            series_len,
            tree,
            store,
            paged: None,
        })
    }

    /// The canonical tree construction shared by [`SimilarityIndex::build`]
    /// and the incremental-maintenance repack: identical inputs produce a
    /// byte-identical tree either way, which is what lets an appended index
    /// snapshot- and stats-match one rebuilt from scratch.
    fn pack_tree(config: &IndexConfig, points: Vec<(Rect, usize)>) -> RStarTree<usize> {
        if config.bulk_load {
            RStarTree::bulk_load(config.rtree, points)
        } else {
            let mut t = RStarTree::new(config.rtree);
            for (rect, id) in points {
                t.insert(rect, id);
            }
            t
        }
    }

    /// Rebuilds the (small, `len()`-point) feature tree exactly as
    /// [`SimilarityIndex::build`] would, from the already-extracted
    /// features. The expensive per-series work — the FFT behind
    /// [`Features::extract`] — is *not* redone; only the affected series'
    /// features change before a repack, so maintenance cost is `O(k)` per
    /// appended point plus a repack linear in the number of series.
    fn repack_tree(&mut self) {
        let points = self
            .store
            .iter()
            .enumerate()
            .map(|(id, s)| {
                let coords = self.config.space.point(&s.features, self.config.schema);
                (Rect::from_point(&coords), id)
            })
            .collect();
        self.tree = Self::pack_tree(&self.config, points);
    }

    /// Appends values to the end of one stored series, re-extracting that
    /// series' features (the others are untouched) and repacking the
    /// feature tree canonically, so the result is indistinguishable —
    /// snapshot bytes, query answers, traversal statistics — from an index
    /// freshly built over the final data.
    ///
    /// Validation is atomic: on any error the index is exactly as it was.
    ///
    /// # Errors
    /// [`Error::Unsupported`] when paged storage is attached,
    /// [`Error::UnknownSeries`] for a bad id, [`Error::InvalidCutoff`] if
    /// the extended length no longer fits the schema, [`Error::NonFinite`]
    /// when the appended values contain NaN/±∞.
    pub fn extend_series(&mut self, id: usize, appended: &[f64]) -> Result<()> {
        self.extend_series_batch(&[(id, appended)])
    }

    /// Applies a whole statement's worth of extensions with **one**
    /// canonical repack at the end — the per-row work is the feature
    /// re-extraction of the touched series only, so a 500-row `APPEND`
    /// pays 500 feature updates and a single `O(len())` repack instead
    /// of 500 repacks. Several edits may target the same id; they
    /// accumulate in order, exactly as separate [`extend_series`] calls
    /// would.
    ///
    /// Validation is atomic across the batch: every edit is staged
    /// against a copy before anything is committed, so on any error the
    /// index is exactly as it was.
    ///
    /// # Errors
    /// Same failure modes as [`extend_series`], checked for every edit.
    ///
    /// [`extend_series`]: SimilarityIndex::extend_series
    pub fn extend_series_batch(&mut self, edits: &[(usize, &[f64])]) -> Result<()> {
        if self.paged.is_some() {
            return Err(Error::Unsupported(
                "append to a relation with paged storage attached".to_string(),
            ));
        }
        // Stage phase: build every touched series' final state off to
        // the side (first-touch order), so a failing edit anywhere in
        // the batch leaves the store untouched.
        let mut staged: Vec<(usize, TimeSeries)> = Vec::new();
        for (id, appended) in edits {
            match staged.iter_mut().find(|(sid, _)| sid == id) {
                Some((_, series)) => series.try_extend(appended)?,
                None => {
                    let Some(stored) = self.store.get(*id) else {
                        return Err(Error::UnknownSeries(*id));
                    };
                    let mut extended = stored.series.clone();
                    extended.try_extend(appended)?;
                    staged.push((*id, extended));
                }
            }
        }
        let mut planner = FftPlanner::new();
        let mut ready = Vec::with_capacity(staged.len());
        for (id, series) in staged {
            let features = Features::extract(&series, self.config.schema, &mut planner)?;
            ready.push((id, StoredSeries { series, features }));
        }
        // Commit phase: infallible.
        for (id, stored) in ready {
            self.series_len = self.series_len.max(stored.series.len());
            self.store[id] = stored;
        }
        self.repack_tree();
        Ok(())
    }

    /// Appends one new series through the canonical repack path (the
    /// `APPEND`-verb analogue of [`SimilarityIndex::insert`]): the result
    /// is byte-identical to a fresh build over the final data, where
    /// `insert` grows the existing tree in place.
    ///
    /// # Errors
    /// [`Error::Unsupported`] when paged storage is attached,
    /// [`Error::InvalidCutoff`] if the schema does not fit the new series.
    pub fn push_series(&mut self, series: TimeSeries) -> Result<usize> {
        self.push_series_batch(vec![series]).map(|ids| ids[0])
    }

    /// Appends several new series with one canonical repack at the end
    /// (the batched form of [`SimilarityIndex::push_series`]), returning
    /// their ids in order. Feature extraction for every series happens
    /// before anything is committed, so a failure leaves the index
    /// exactly as it was.
    ///
    /// # Errors
    /// Same failure modes as [`SimilarityIndex::push_series`], checked
    /// for every series.
    pub fn push_series_batch(&mut self, series: Vec<TimeSeries>) -> Result<Vec<usize>> {
        if self.paged.is_some() {
            return Err(Error::Unsupported(
                "append to a relation with paged storage attached".to_string(),
            ));
        }
        let mut planner = FftPlanner::new();
        let mut staged = Vec::with_capacity(series.len());
        for s in series {
            let features = Features::extract(&s, self.config.schema, &mut planner)?;
            staged.push(StoredSeries {
                series: s,
                features,
            });
        }
        let first = self.store.len();
        let ids = (first..first + staged.len()).collect();
        for stored in staged {
            self.series_len = self.series_len.max(stored.series.len());
            self.store.push(stored);
        }
        self.repack_tree();
        Ok(ids)
    }

    /// Appends one series, returning its id. The new series may differ in
    /// length from the others (the relation is then ragged and whole-series
    /// queries are gated until appends even the lengths out).
    ///
    /// # Errors
    /// [`Error::InvalidCutoff`] if the schema does not fit the new series,
    /// [`Error::Unsupported`] when paged storage is attached (the page
    /// file is immutable).
    pub fn insert(&mut self, series: TimeSeries) -> Result<usize> {
        if self.paged.is_some() {
            return Err(Error::Unsupported(
                "insert into a relation with paged storage attached".to_string(),
            ));
        }
        let mut planner = FftPlanner::new();
        let features = Features::extract(&series, self.config.schema, &mut planner)?;
        let coords = self.config.space.point(&features, self.config.schema);
        let id = self.store.len();
        self.series_len = self.series_len.max(series.len());
        self.tree.insert(Rect::from_point(&coords), id);
        self.store.push(StoredSeries { series, features });
        Ok(id)
    }

    /// Number of stored series.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Length of the longest stored series — the length of *every* series
    /// whenever the relation is uniform (the steady state; see
    /// [`SimilarityIndex::check_uniform`]).
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// `Ok(())` when every stored series has the same length (vacuously for
    /// the empty index), [`Error::Ragged`] otherwise. Whole-series query
    /// forms call this first: Euclidean distance across unequal lengths is
    /// undefined, so a mid-ingest ragged relation is rejected with a typed
    /// error instead of answered wrongly.
    pub fn check_uniform(&self) -> Result<()> {
        let mut lens = self.store.iter().map(|s| s.series.len());
        let Some(first) = lens.next() else {
            return Ok(());
        };
        let (min, max) = lens.fold((first, first), |(lo, hi), l| (lo.min(l), hi.max(l)));
        if min != max {
            return Err(Error::Ragged { min, max });
        }
        Ok(())
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Stored series by id.
    pub fn series(&self, id: usize) -> Option<&TimeSeries> {
        self.store.get(id).map(|s| &s.series)
    }

    /// Stored features by id.
    pub fn features(&self, id: usize) -> Option<&Features> {
        self.store.get(id).map(|s| &s.features)
    }

    /// All stored entries.
    pub fn entries(&self) -> &[StoredSeries] {
        &self.store
    }

    /// Access to the underlying R\*-tree (read-only). Empty when paged
    /// storage is attached — the nodes then live in the page file (see
    /// [`SimilarityIndex::paged`]).
    pub fn tree(&self) -> &RStarTree<usize> {
        &self.tree
    }

    /// The paged node storage, when attached.
    pub fn paged(&self) -> Option<&PagedTree> {
        self.paged.as_deref()
    }

    /// True when the relation's nodes live in a page file.
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Switches the relation to paged node storage: writes a page file at
    /// `path` holding the R\*-tree's nodes one per fixed-size page, opens
    /// it behind a pin-counted LRU buffer pool caching up to
    /// `capacity_pages` decoded pages, and drops the in-memory nodes.
    /// Every subsequent traversal fetches nodes through the pool, so
    /// query statistics carry measured `pool_hits`/`pool_misses`.
    ///
    /// The relation becomes append-proof ([`SimilarityIndex::insert`] is
    /// rejected); snapshots still work — [`SimilarityIndex::write_to`]
    /// reconstructs the node structure from the page file byte-identically
    /// to the in-memory form.
    ///
    /// # Errors
    /// [`Error::Unsupported`] if paged storage is already attached;
    /// [`Error::Store`] on I/O failure or when the configured fan-out
    /// exceeds the maximum page size.
    pub fn attach_paged(&mut self, path: &Path, capacity_pages: usize) -> Result<()> {
        if self.paged.is_some() {
            return Err(Error::Unsupported(
                "paged storage is already attached".to_string(),
            ));
        }
        self.tree.write_paged(path, |&id| id as u64)?;
        let paged = PagedTree::open(path, capacity_pages)?;
        self.tree = RStarTree::new(self.config.rtree);
        self.paged = Some(Arc::new(paged));
        Ok(())
    }

    /// [`SimilarityIndex::attach_paged`] with the pool sized by a byte
    /// budget instead of a page count: the pool caches as many whole
    /// pages as fit into `budget_bytes` (always at least one — the pool
    /// must be able to hold the page it is decoding).
    ///
    /// # Errors
    /// Same failure modes as [`SimilarityIndex::attach_paged`].
    pub fn attach_paged_budget(&mut self, path: &Path, budget_bytes: u64) -> Result<()> {
        let dims = self.tree.dims().unwrap_or(0);
        let page_size = tsq_rtree::paged::page_size_for(&self.config.rtree, dims)? as u64;
        let capacity = usize::try_from(budget_bytes / page_size).unwrap_or(usize::MAX);
        self.attach_paged(path, capacity.max(1))
    }

    /// Serializes the index — configuration, stored series with their
    /// features, and the R\*-tree's node structure byte-identically — into
    /// `enc` (see [`crate::store`] for the encodings). In paged mode the
    /// node structure is read back from the page file, so the snapshot is
    /// identical to the one the in-memory form would write.
    ///
    /// # Errors
    /// [`Error::Store`] if reading the page file fails (in-memory mode
    /// cannot fail).
    pub fn write_to(&self, enc: &mut Encoder) -> Result<()> {
        crate::store::write_index_config(enc, &self.config);
        enc.usize(self.series_len);
        enc.usize(self.store.len());
        for stored in &self.store {
            crate::store::write_series(enc, &stored.series);
            crate::store::write_features(enc, &stored.features);
        }
        match &self.paged {
            Some(paged) => {
                let tree = paged.materialize(|id| id as usize)?;
                tree.write_to(enc, &mut |e, &id| e.usize(id));
            }
            None => self.tree.write_to(enc, &mut |e, &id| e.usize(id)),
        }
        Ok(())
    }

    /// Restores an index written by [`SimilarityIndex::write_to`]. The
    /// R\*-tree is *not* rebuilt: its nodes are reconstructed exactly as
    /// stored, so every query on the restored index returns the same
    /// answers with the same traversal statistics as the original.
    ///
    /// # Errors
    /// [`Error::Store`] for truncated, corrupt or inconsistent bytes
    /// (length mismatches, dangling or duplicate series ids, tree/store
    /// disagreements) — never a panic.
    pub fn read_from(dec: &mut Decoder<'_>) -> Result<Self> {
        let config = crate::store::read_index_config(dec)?;
        let series_len = dec.usize("index series_len")?;
        let count = dec.seq(48, "stored series count")?;
        let mut store = Vec::with_capacity(count);
        let mut max_len = 0usize;
        for _ in 0..count {
            let series = crate::store::read_series(dec)?;
            // Lengths may differ per series (a relation snapshotted
            // mid-ingest is ragged), but each series' spectrum and the
            // schema must fit *that* series.
            let features = crate::store::read_features(dec)?;
            if features.spectrum.len() != series.len() {
                return Err(StoreError::corrupt(format!(
                    "feature spectrum of length {} for series of length {}",
                    features.spectrum.len(),
                    series.len()
                ))
                .into());
            }
            config.schema.validate(series.len()).map_err(|e| {
                StoreError::corrupt(format!("index schema does not fit a stored series: {e}"))
            })?;
            max_len = max_len.max(series.len());
            store.push(StoredSeries { series, features });
        }
        if series_len != max_len {
            return Err(StoreError::corrupt(format!(
                "index series_len {series_len} but longest stored series has length {max_len}"
            ))
            .into());
        }
        let tree = RStarTree::read_from(dec, &mut |d| {
            let id = d.usize("feature point series id")?;
            if id >= count {
                return Err(StoreError::corrupt(format!(
                    "feature point references series {id} of {count}"
                )));
            }
            Ok(id)
        })?;
        if tree.len() != count {
            return Err(StoreError::corrupt(format!(
                "index tree holds {} point(s) for {count} series",
                tree.len()
            ))
            .into());
        }
        // The snapshot stores the R*-tree config twice — once in the
        // index configuration, once in the (self-contained) tree header —
        // and the copies must agree or later inserts would follow
        // different tuning than the tree was built with.
        if *tree.config() != config.rtree {
            return Err(StoreError::corrupt(format!(
                "index config {:?} disagrees with its tree's config {:?}",
                config.rtree,
                tree.config()
            ))
            .into());
        }
        if count > 0 {
            let expected_dims = config.schema.dims();
            if tree.dims() != Some(expected_dims) {
                return Err(StoreError::corrupt(format!(
                    "index tree dimensionality {:?} does not match the schema's {expected_dims}",
                    tree.dims()
                ))
                .into());
            }
            let mut seen = vec![false; count];
            for (_, &id) in tree.iter() {
                if seen[id] {
                    return Err(StoreError::corrupt(format!("series {id} indexed twice")).into());
                }
                seen[id] = true;
            }
        }
        Ok(SimilarityIndex {
            config,
            series_len,
            tree,
            store,
            paged: None,
        })
    }

    /// Extracts query features for a query series, validating its length
    /// against the transformation's warp factor: a warp-by-`m` query must
    /// be `m` times as long as the indexed series (Example 1.2: daily
    /// query series vs. every-other-day data).
    pub fn query_features(&self, q: &TimeSeries, t: &LinearTransform) -> Result<Features> {
        self.check_uniform()?;
        let expected = self.series_len * t.warp();
        if q.len() != expected {
            return Err(Error::LengthMismatch {
                expected,
                got: q.len(),
            });
        }
        let mut planner = FftPlanner::new();
        Features::extract(q, self.config.schema, &mut planner)
    }

    /// **Algorithm 2** — range query with a transformation: find all stored
    /// series `o` such that `D(T(o), q) <= eps`, where `T` acts on the
    /// indexed representation (the normal-form spectrum under the default
    /// schema) and `q` is compared via its own representation.
    ///
    /// Results are sorted by id. Stats report the on-the-fly transformed
    /// traversal (same node accesses as an ordinary query, per Figure 8).
    ///
    /// # Errors
    /// Unsafe transformations ([`Error::UnsafeTransform`]) and length
    /// mismatches are rejected.
    pub fn range_query(
        &self,
        q: &TimeSeries,
        eps: f64,
        t: &LinearTransform,
        window: &QueryWindow,
    ) -> Result<(Vec<Match>, QueryStats)> {
        let qf = self.query_features(q, t)?;
        self.range_query_features(&qf, eps, t, window)
    }

    /// Range query against precomputed query features (used by joins,
    /// where the query point is a transformed stored series).
    pub fn range_query_features(
        &self,
        qf: &Features,
        eps: f64,
        t: &LinearTransform,
        window: &QueryWindow,
    ) -> Result<(Vec<Match>, QueryStats)> {
        self.range_query_features_opts(qf, eps, t, window, false, 1)
    }

    /// Range query that *always* exercises the transformed traversal, even
    /// for the identity transformation. This exists for the Figure-8/9
    /// experiment, which measures the pure CPU overhead of applying `T_i =
    /// (I, 0)` to every rectangle against an otherwise identical plain
    /// query.
    pub fn range_query_forced(
        &self,
        q: &TimeSeries,
        eps: f64,
        t: &LinearTransform,
        window: &QueryWindow,
    ) -> Result<(Vec<Match>, QueryStats)> {
        let qf = self.query_features(q, t)?;
        self.range_query_features_opts(&qf, eps, t, window, true, 1)
    }

    /// [`SimilarityIndex::range_query`] with both phases parallelized
    /// *within* the query: the R\*-tree filter step fans out per root
    /// subtree ([`tsq_rtree::RStarTree::search_with_parallel`]) and the
    /// exact refine step per candidate. Answers and stats totals are
    /// byte-identical to the sequential path for every thread count —
    /// both run the same pipeline below, only the worker count differs.
    ///
    /// # Errors
    /// Same failure modes as [`SimilarityIndex::range_query`].
    pub fn range_query_parallel(
        &self,
        q: &TimeSeries,
        eps: f64,
        t: &LinearTransform,
        window: &QueryWindow,
        threads: usize,
    ) -> Result<(Vec<Match>, QueryStats)> {
        let qf = self.query_features(q, t)?;
        self.range_query_features_opts(&qf, eps, t, window, false, threads)
    }

    /// The single range-query pipeline behind every public range form:
    /// filter (tree traversal, fanned per root subtree when `threads > 1`)
    /// then refine (exact distances, fanned per candidate). `threads = 1`
    /// runs strictly sequentially — the parallel primitives spawn nothing
    /// in that case.
    fn range_query_features_opts(
        &self,
        qf: &Features,
        eps: f64,
        t: &LinearTransform,
        window: &QueryWindow,
        force_transform: bool,
        threads: usize,
    ) -> Result<(Vec<Match>, QueryStats)> {
        Error::check_threshold(eps)?;
        self.check_transform(t)?;
        let schema = self.config.schema;
        let space = self.config.space;
        let qrect = space.search_rect(qf, schema, eps, window);
        // 2. Search: transform every MBR on the fly; collect candidates.
        // The identity fast path skips the per-rectangle transformation.
        let (ids, index_stats) = if threads <= 1 || self.paged.is_some() {
            // Sequential: the one filter implementation, shared with the
            // per-series probes of an index join. Paged storage always
            // takes this path — node fetches serialize through the buffer
            // pool, and the answer is identical either way.
            self.filter_rect(&qrect, t, force_transform)?
        } else {
            let identity = !force_transform && t.is_identity(1e-12);
            let intersects = |r: &Rect| r.intersects(&qrect);
            let transformed = |r: &Rect| space.transformed_intersects(r, t, schema, &qrect);
            let (candidates, stats) = if identity {
                self.tree.search_with_parallel(intersects, threads)
            } else {
                self.tree.search_with_parallel(transformed, threads)
            };
            (candidates.into_iter().map(|(_, &id)| id).collect(), stats)
        };
        // 3. Post-processing: exact distance on full records.
        let mut stats = QueryStats {
            index: index_stats,
            candidates: ids.len(),
            exact_checks: ids.len(),
            ..QueryStats::default()
        };
        let refined = crate::executor::parallel_map(threads, ids, |id| {
            self.exact_distance_bounded(id, t, qf, eps)
                .map(|distance| Match { id, distance })
        });
        let mut matches: Vec<Match> = refined.into_iter().flatten().collect();
        stats.false_hits = stats.exact_checks - matches.len();
        matches.sort_by_key(|m| m.id);
        Ok((matches, stats))
    }

    /// The index-level *filter* step of Algorithm 2 on its own: candidate
    /// ids (in traversal order) for a range query around precomputed query
    /// features, without the refine phase. Shared by the join strategies,
    /// whose refine path ([`crate::queries`]) batches exact checks per
    /// probe. The caller is responsible for validation.
    pub(crate) fn filter_candidates(
        &self,
        qf: &Features,
        eps: f64,
        t: &LinearTransform,
        window: &QueryWindow,
    ) -> Result<(Vec<usize>, SearchStats)> {
        let qrect = self
            .config
            .space
            .search_rect(qf, self.config.schema, eps, window);
        self.filter_rect(&qrect, t, false)
    }

    /// Sequential candidate traversal against a prebuilt search
    /// rectangle — the single filter implementation behind
    /// [`SimilarityIndex::range_query`]'s sequential path and the join
    /// probes. `force_transform` exercises the transformed traversal even
    /// for the identity (the Figure-8/9 overhead experiment). In paged
    /// mode the traversal pins pages in the buffer pool and can fail on
    /// I/O; in-memory traversal is infallible.
    fn filter_rect(
        &self,
        qrect: &Rect,
        t: &LinearTransform,
        force_transform: bool,
    ) -> Result<(Vec<usize>, SearchStats)> {
        let schema = self.config.schema;
        let space = self.config.space;
        let identity = !force_transform && t.is_identity(1e-12);
        let mut ids = Vec::new();
        let stats = match &self.paged {
            Some(paged) => {
                if identity {
                    paged.search_with(|r| r.intersects(qrect), |_, item| ids.push(item as usize))?
                } else {
                    paged.search_with(
                        |r| space.transformed_intersects(r, t, schema, qrect),
                        |_, item| ids.push(item as usize),
                    )?
                }
            }
            None => {
                if identity {
                    self.tree
                        .search_with(|r| r.intersects(qrect), |_, &id| ids.push(id))
                } else {
                    self.tree.search_with(
                        |r| space.transformed_intersects(r, t, schema, qrect),
                        |_, &id| ids.push(id),
                    )
                }
            }
        };
        Ok((ids, stats))
    }

    /// Nearest-neighbor query under a transformation: the `k` stored series
    /// minimizing `D(T(o), q)`, via best-first search with transformed
    /// MBR lower bounds (the RKV95 scheme generalized per Section 4).
    ///
    /// # Errors
    /// Same failure modes as [`SimilarityIndex::range_query`].
    pub fn knn_query(
        &self,
        q: &TimeSeries,
        k: usize,
        t: &LinearTransform,
    ) -> Result<(Vec<Match>, QueryStats)> {
        let qf = self.query_features(q, t)?;
        self.check_transform(t)?;
        let schema = self.config.schema;
        let space = self.config.space;
        let mut exact_checks = 0usize;
        let (matches, index_stats) = match &self.paged {
            Some(paged) => {
                let (neighbors, index_stats) = paged.nearest_with_tie(
                    k,
                    |rect| space.transformed_lower_bound(rect, t, schema, &qf),
                    |_, item| {
                        exact_checks += 1;
                        self.exact_distance(item as usize, t, &qf)
                    },
                    // Break exact-distance ties by series id: the answer set
                    // is then a pure function of the data, independent of
                    // tree shape — what sharded k-way merges rely on.
                    |item| item,
                )?;
                let matches = neighbors
                    .into_iter()
                    .map(|n| Match {
                        id: n.item as usize,
                        distance: n.distance,
                    })
                    .collect::<Vec<Match>>();
                (matches, index_stats)
            }
            None => {
                let (neighbors, index_stats) = self.tree.nearest_with_tie(
                    k,
                    |rect| space.transformed_lower_bound(rect, t, schema, &qf),
                    |_, &id| {
                        exact_checks += 1;
                        self.exact_distance(id, t, &qf)
                    },
                    // Same tie-break as the paged arm: (distance, id).
                    |&id| id as u64,
                );
                let matches = neighbors
                    .into_iter()
                    .map(|n| Match {
                        id: *n.item,
                        distance: n.distance,
                    })
                    .collect::<Vec<Match>>();
                (matches, index_stats)
            }
        };
        let stats = QueryStats {
            index: index_stats,
            candidates: matches.len(),
            false_hits: 0,
            exact_checks,
        };
        Ok((matches, stats))
    }

    /// Validates a transformation against the index (uniformity + safety +
    /// arity).
    pub fn check_transform(&self, t: &LinearTransform) -> Result<()> {
        self.check_uniform()?;
        if !self.store.is_empty() && t.n() != self.series_len {
            return Err(Error::TransformArity {
                expected: self.series_len,
                got: t.n(),
            });
        }
        self.config.space.check_safety(t, self.config.schema)
    }

    /// Exact distance `D(T(o_id), q)`, or `None` if it exceeds `eps`
    /// (early abandoning, as in the paper's optimized sequential scan).
    pub fn exact_distance_bounded(
        &self,
        id: usize,
        t: &LinearTransform,
        qf: &Features,
        eps: f64,
    ) -> Option<f64> {
        if t.warp() > 1 {
            let d = self.warp_distance(id, t, qf);
            if d <= eps {
                return Some(d);
            }
            return None;
        }
        let x = &self.store[id].features.spectrum;
        let transformed = t.apply_spectrum(x);
        euclidean_complex_early_abandon(&transformed, &qf.spectrum, eps)
    }

    /// Exact distance `D(T(o_id), q)` without a bound.
    pub fn exact_distance(&self, id: usize, t: &LinearTransform, qf: &Features) -> f64 {
        if t.warp() > 1 {
            return self.warp_distance(id, t, qf);
        }
        let x = &self.store[id].features.spectrum;
        let transformed = t.apply_spectrum(x);
        euclidean_complex(&transformed, &qf.spectrum)
    }

    /// Warp distances are computed in the time domain: the stored
    /// representation is stretched by the warp factor and compared against
    /// the query's representation (both normal forms under the default
    /// schema — stretching commutes with normalization).
    fn warp_distance(&self, id: usize, t: &LinearTransform, qf: &Features) -> f64 {
        let m = t.warp();
        let repr = self.representation(id);
        let q_repr = self.query_representation(qf);
        debug_assert_eq!(repr.len() * m, q_repr.len());
        let mut acc = 0.0;
        for (i, &qv) in q_repr.iter().enumerate() {
            let d = repr[i / m] - qv;
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Time-domain values of the indexed representation of a stored series.
    fn representation(&self, id: usize) -> Vec<f64> {
        let s = &self.store[id].series;
        match self.config.schema {
            FeatureSchema::NormalForm { .. } => NormalForm::of(s).series.into_values(),
            FeatureSchema::Raw { .. } => s.values().to_vec(),
        }
    }

    /// Time-domain values of the query's representation, reconstructed from
    /// its spectrum (exact up to FFT rounding).
    fn query_representation(&self, qf: &Features) -> Vec<f64> {
        let mut planner = FftPlanner::new();
        planner.idft_real(&qf.spectrum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_series::generate::RandomWalkGenerator;

    fn small_relation(count: usize, len: usize, seed: u64) -> Vec<TimeSeries> {
        RandomWalkGenerator::new(seed).relation(count, len)
    }

    fn build_default(rel: Vec<TimeSeries>) -> SimilarityIndex {
        SimilarityIndex::build(IndexConfig::default(), rel).unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let rel = small_relation(50, 64, 1);
        let idx = build_default(rel.clone());
        assert_eq!(idx.len(), 50);
        assert_eq!(idx.series_len(), 64);
        assert_eq!(idx.series(7), Some(&rel[7]));
        assert!(idx.series(50).is_none());
        idx.tree().validate();
    }

    #[test]
    fn empty_relation() {
        let idx = build_default(Vec::new());
        assert!(idx.is_empty());
        let t = LinearTransform::identity(0);
        // Querying an empty index with a zero-length query succeeds trivially.
        let q = TimeSeries::new(vec![]);
        let err = idx.range_query(&q, 1.0, &t, &QueryWindow::default());
        // Zero-length features are invalid; the engine reports a cutoff error.
        assert!(err.is_err());
    }

    #[test]
    fn mixed_lengths_build_but_gate_whole_series_queries() {
        // A ragged relation (streaming ingest mid-catch-up) builds fine;
        // whole-series query forms are rejected with the typed error.
        let mut rel = small_relation(3, 32, 2);
        rel.push(RandomWalkGenerator::new(77).series(16));
        let idx = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.series_len(), 32);
        let t = LinearTransform::identity(32);
        let err = idx
            .range_query(&rel[0], 1.0, &t, &QueryWindow::default())
            .unwrap_err();
        assert!(matches!(err, Error::Ragged { min: 16, max: 32 }));
        let err = idx.knn_query(&rel[0], 2, &t).unwrap_err();
        assert!(matches!(err, Error::Ragged { min: 16, max: 32 }));
        // Appending the short series up to length 32 heals the relation.
        let mut idx = idx;
        let tail: Vec<f64> = RandomWalkGenerator::new(78).series(16).into_values();
        idx.extend_series(3, &tail).unwrap();
        idx.check_uniform().unwrap();
        assert!(idx
            .range_query(&rel[0], 1.0, &t, &QueryWindow::default())
            .is_ok());
    }

    #[test]
    fn identity_range_query_matches_scan() {
        let rel = small_relation(120, 64, 3);
        let idx = build_default(rel.clone());
        let t = LinearTransform::identity(64);
        let q = &rel[5];
        let eps = 2.0;
        let (matches, stats) = idx
            .range_query(q, eps, &t, &QueryWindow::default())
            .unwrap();
        // Brute force over normal forms.
        let mut planner = FftPlanner::new();
        let qf = Features::extract(q, FeatureSchema::NormalForm { k: 2 }, &mut planner).unwrap();
        let mut want = Vec::new();
        for (id, s) in rel.iter().enumerate() {
            let f = Features::extract(s, FeatureSchema::NormalForm { k: 2 }, &mut planner).unwrap();
            let d = euclidean_complex(&f.spectrum, &qf.spectrum);
            if d <= eps {
                want.push(id);
            }
        }
        let got: Vec<usize> = matches.iter().map(|m| m.id).collect();
        assert_eq!(got, want, "no false dismissals, no spurious answers");
        assert!(matches.iter().any(|m| m.id == 5 && m.distance < 1e-9));
        assert!(stats.index.nodes_visited > 0);
    }

    #[test]
    fn moving_average_query_matches_scan() {
        let rel = small_relation(100, 32, 4);
        let idx = build_default(rel.clone());
        let t = LinearTransform::moving_average(32, 5);
        let q = &rel[0];
        let eps = 1.5;
        let (matches, _) = idx
            .range_query(q, eps, &t, &QueryWindow::default())
            .unwrap();
        let mut planner = FftPlanner::new();
        let schema = FeatureSchema::NormalForm { k: 2 };
        let qf = Features::extract(q, schema, &mut planner).unwrap();
        let mut want = Vec::new();
        for (id, s) in rel.iter().enumerate() {
            let f = Features::extract(s, schema, &mut planner).unwrap();
            let d = euclidean_complex(&t.apply_spectrum(&f.spectrum), &qf.spectrum);
            if d <= eps {
                want.push(id);
            }
        }
        let got: Vec<usize> = matches.iter().map(|m| m.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn unsafe_transform_rejected() {
        let rel = small_relation(10, 16, 5);
        let config = IndexConfig {
            space: SpaceKind::Rectangular,
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(config, rel.clone()).unwrap();
        let t = LinearTransform::moving_average(16, 3); // complex multipliers
        let err = idx
            .range_query(&rel[0], 1.0, &t, &QueryWindow::default())
            .unwrap_err();
        assert!(matches!(err, Error::UnsafeTransform { .. }));
    }

    #[test]
    fn knn_matches_scan_under_transform() {
        let rel = small_relation(80, 32, 6);
        let idx = build_default(rel.clone());
        let t = LinearTransform::moving_average(32, 4);
        let q = &rel[3];
        let (got, _) = idx.knn_query(q, 5, &t).unwrap();
        assert_eq!(got.len(), 5);
        // Brute force.
        let mut planner = FftPlanner::new();
        let schema = FeatureSchema::NormalForm { k: 2 };
        let qf = Features::extract(q, schema, &mut planner).unwrap();
        let mut dists: Vec<(f64, usize)> = rel
            .iter()
            .enumerate()
            .map(|(id, s)| {
                let f = Features::extract(s, schema, &mut planner).unwrap();
                (
                    euclidean_complex(&t.apply_spectrum(&f.spectrum), &qf.spectrum),
                    id,
                )
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (m, (d, _)) in got.iter().zip(&dists) {
            assert!((m.distance - d).abs() < 1e-9, "{} vs {d}", m.distance);
        }
    }

    #[test]
    fn identity_and_plain_query_same_disk_accesses() {
        // Figure 8/9's observation: "The number of disk accesses is the
        // same in both cases."
        let rel = small_relation(500, 64, 7);
        let idx = build_default(rel.clone());
        let q = &rel[11];
        let eps = 1.0;
        let t = LinearTransform::identity(64);
        let (_, with_t) = idx
            .range_query(q, eps, &t, &QueryWindow::default())
            .unwrap();
        // Plain query: same search rectangle, no transformation hook.
        let schema = idx.config().schema;
        let space = idx.config().space;
        let qf = idx.query_features(q, &t).unwrap();
        let qrect = space.search_rect(&qf, schema, eps, &QueryWindow::default());
        let plain = idx.tree().search(&qrect, |_, _| {});
        assert_eq!(with_t.index.nodes_visited, plain.nodes_visited);
    }

    #[test]
    fn warp_query_finds_stretched_series() {
        // Example 1.2: data sampled every other day, query sampled daily.
        let mut rel = small_relation(40, 16, 8);
        let special = TimeSeries::from([
            20.0, 21.0, 20.0, 23.0, 25.0, 24.0, 22.0, 21.0, 20.0, 19.0, 21.0, 22.0, 23.0, 25.0,
            24.0, 23.0,
        ]);
        rel.push(special.clone());
        let idx = build_default(rel);
        let t = LinearTransform::time_warp(16, 2);
        // The query is the stretched special series (length 32).
        let q = tsq_series::warp::stretch(&special, 2);
        let (matches, _) = idx
            .range_query(&q, 1e-6, &t, &QueryWindow::default())
            .unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].id, 40);
        assert!(matches[0].distance < 1e-6);
    }

    #[test]
    fn insert_after_build() {
        let rel = small_relation(20, 32, 9);
        let mut idx = build_default(rel.clone());
        let extra = RandomWalkGenerator::new(99).series(32);
        let id = idx.insert(extra.clone()).unwrap();
        assert_eq!(id, 20);
        let t = LinearTransform::identity(32);
        let (matches, _) = idx
            .range_query(&extra, 1e-9, &t, &QueryWindow::default())
            .unwrap();
        assert!(matches.iter().any(|m| m.id == id));
        // A series too short for the schema (k = 2 needs length >= 3) is
        // still rejected; a merely different length is now allowed (the
        // relation becomes ragged until appends even it out).
        assert!(matches!(
            idx.insert(TimeSeries::new(vec![0.0, 1.0])),
            Err(Error::InvalidCutoff { .. })
        ));
        let short = RandomWalkGenerator::new(100).series(16);
        idx.insert(short).unwrap();
        assert!(matches!(idx.check_uniform(), Err(Error::Ragged { .. })));
    }

    #[test]
    fn query_window_filters_by_mean() {
        let rel = small_relation(60, 32, 10);
        let idx = build_default(rel.clone());
        let t = LinearTransform::identity(32);
        let q = &rel[0];
        let all = idx
            .range_query(q, 50.0, &t, &QueryWindow::default())
            .unwrap()
            .0;
        let m = rel[0].mean();
        let window = QueryWindow {
            mean: Some((m - 1.0, m + 1.0)),
            std: None,
        };
        let filtered = idx.range_query(q, 50.0, &t, &window).unwrap().0;
        assert!(filtered.len() <= all.len());
        for mt in &filtered {
            let mm = rel[mt.id].mean();
            assert!(mm >= m - 1.0 && mm <= m + 1.0);
        }
        // The reference series itself always qualifies.
        assert!(filtered.iter().any(|mt| mt.id == 0));
    }

    #[test]
    fn rectangular_space_with_real_transform_matches_scan() {
        let rel = small_relation(70, 32, 11);
        let config = IndexConfig {
            space: SpaceKind::Rectangular,
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(config, rel.clone()).unwrap();
        let t = LinearTransform::reverse(32); // a = -1: real, safe in S_rect
        let q = &rel[2];
        let eps = 3.0;
        let (matches, _) = idx
            .range_query(q, eps, &t, &QueryWindow::default())
            .unwrap();
        let mut planner = FftPlanner::new();
        let schema = FeatureSchema::NormalForm { k: 2 };
        let qf = Features::extract(q, schema, &mut planner).unwrap();
        let mut want = Vec::new();
        for (id, s) in rel.iter().enumerate() {
            let f = Features::extract(s, schema, &mut planner).unwrap();
            let d = euclidean_complex(&t.apply_spectrum(&f.spectrum), &qf.spectrum);
            if d <= eps {
                want.push(id);
            }
        }
        let got: Vec<usize> = matches.iter().map(|m| m.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_range_query_identical_to_sequential() {
        let rel = small_relation(300, 32, 13);
        let idx = build_default(rel.clone());
        for t in [
            LinearTransform::identity(32),
            LinearTransform::moving_average(32, 4),
        ] {
            for eps in [0.0, 0.8, 5.0] {
                let (seq, seq_stats) = idx
                    .range_query(&rel[9], eps, &t, &QueryWindow::default())
                    .unwrap();
                for threads in [1usize, 2, 4] {
                    let (par, par_stats) = idx
                        .range_query_parallel(&rel[9], eps, &t, &QueryWindow::default(), threads)
                        .unwrap();
                    assert_eq!(par, seq, "{} eps={eps} threads={threads}", t.name());
                    assert_eq!(par_stats.index, seq_stats.index);
                    assert_eq!(par_stats.candidates, seq_stats.candidates);
                    assert_eq!(par_stats.false_hits, seq_stats.false_hits);
                }
            }
        }
        // Validation still applies on the parallel path.
        assert!(matches!(
            idx.range_query_parallel(
                &rel[0],
                f64::NAN,
                &LinearTransform::identity(32),
                &QueryWindow::default(),
                2
            ),
            Err(Error::NonFinite { .. })
        ));
    }

    #[test]
    fn snapshot_round_trip_preserves_answers_and_stats() {
        let rel = small_relation(150, 64, 14);
        let idx = build_default(rel.clone());
        let mut enc = Encoder::new();
        idx.write_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = SimilarityIndex::read_from(&mut dec).unwrap();
        dec.finish().unwrap();
        restored.tree().validate();
        // Re-serialization is byte-identical (canonical encoding).
        let mut enc2 = Encoder::new();
        restored.write_to(&mut enc2).unwrap();
        assert_eq!(bytes, enc2.into_bytes());
        // Identical answers *and* identical traversal statistics.
        for t in [
            LinearTransform::identity(64),
            LinearTransform::moving_average(64, 5),
        ] {
            let (a, sa) = idx
                .range_query(&rel[3], 2.5, &t, &QueryWindow::default())
                .unwrap();
            let (b, sb) = restored
                .range_query(&rel[3], 2.5, &t, &QueryWindow::default())
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(sa.index, sb.index);
            assert_eq!(sa.candidates, sb.candidates);
            let (ka, _) = idx.knn_query(&rel[7], 5, &t).unwrap();
            let (kb, _) = restored.knn_query(&rel[7], 5, &t).unwrap();
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = build_default(Vec::new());
        let mut enc = Encoder::new();
        idx.write_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let restored = SimilarityIndex::read_from(&mut Decoder::new(&bytes)).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn restored_index_accepts_inserts() {
        let rel = small_relation(30, 32, 15);
        let idx = build_default(rel);
        let mut enc = Encoder::new();
        idx.write_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut restored = SimilarityIndex::read_from(&mut Decoder::new(&bytes)).unwrap();
        let extra = RandomWalkGenerator::new(123).series(32);
        let id = restored.insert(extra.clone()).unwrap();
        assert_eq!(id, 30);
        let t = LinearTransform::identity(32);
        let (m, _) = restored
            .range_query(&extra, 1e-9, &t, &QueryWindow::default())
            .unwrap();
        assert!(m.iter().any(|x| x.id == id));
    }

    #[test]
    fn corrupt_index_bytes_are_typed_errors() {
        let rel = small_relation(40, 32, 16);
        let idx = build_default(rel);
        let mut enc = Encoder::new();
        idx.write_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        // Truncation at every prefix is a typed error, never a panic.
        for cut in (0..bytes.len()).step_by(7) {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(
                SimilarityIndex::read_from(&mut dec).is_err(),
                "cut at {cut} still decoded"
            );
        }
        // A dangling series id inside the tree payload.
        let mut dec = Decoder::new(&bytes);
        let err = SimilarityIndex::read_from(&mut dec);
        assert!(err.is_ok(), "pristine bytes must decode");
    }

    #[test]
    fn extend_series_is_byte_identical_to_fresh_build() {
        // The oracle invariant at the index level: appending through
        // extend_series / push_series is indistinguishable — snapshot
        // bytes, answers, traversal statistics — from rebuilding over the
        // final data.
        for bulk_load in [true, false] {
            let cfg = IndexConfig {
                bulk_load,
                ..IndexConfig::default()
            };
            let rel = small_relation(40, 32, 21);
            let mut idx = SimilarityIndex::build(cfg, rel.clone()).unwrap();
            let tails: Vec<Vec<f64>> = (0..40)
                .map(|i| RandomWalkGenerator::new(500 + i).series(8).into_values())
                .collect();
            // Append in two uneven waves so the relation goes ragged and
            // heals, plus one brand-new series via the canonical push.
            for (id, tail) in tails.iter().enumerate() {
                idx.extend_series(id, &tail[..3]).unwrap();
            }
            for (id, tail) in tails.iter().enumerate() {
                idx.extend_series(id, &tail[3..]).unwrap();
            }
            let newcomer = RandomWalkGenerator::new(999).series(40);
            idx.push_series(newcomer.clone()).unwrap();
            // Fresh build over the final data.
            let mut final_rel: Vec<TimeSeries> = rel
                .iter()
                .zip(&tails)
                .map(|(s, tail)| {
                    let mut v = s.values().to_vec();
                    v.extend_from_slice(tail);
                    TimeSeries::new(v)
                })
                .collect();
            final_rel.push(newcomer);
            let fresh = SimilarityIndex::build(cfg, final_rel.clone()).unwrap();
            let mut enc_a = Encoder::new();
            idx.write_to(&mut enc_a).unwrap();
            let mut enc_b = Encoder::new();
            fresh.write_to(&mut enc_b).unwrap();
            assert_eq!(
                enc_a.into_bytes(),
                enc_b.into_bytes(),
                "bulk_load={bulk_load}"
            );
            let t = LinearTransform::moving_average(40, 4);
            let (ma, sa) = idx
                .range_query(&final_rel[7], 2.0, &t, &QueryWindow::default())
                .unwrap();
            let (mb, sb) = fresh
                .range_query(&final_rel[7], 2.0, &t, &QueryWindow::default())
                .unwrap();
            assert_eq!(ma, mb);
            assert_eq!(sa.index, sb.index);
            assert_eq!(sa.candidates, sb.candidates);
            assert_eq!(sa.false_hits, sb.false_hits);
        }
    }

    #[test]
    fn extend_series_is_atomic_on_errors() {
        let rel = small_relation(10, 32, 22);
        let mut idx = build_default(rel);
        let mut before = Encoder::new();
        idx.write_to(&mut before).unwrap();
        let before = before.into_bytes();
        // Non-finite values reject without touching series or tree.
        let err = idx.extend_series(3, &[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, Error::NonFinite { .. }));
        // Unknown id.
        assert!(matches!(
            idx.extend_series(10, &[1.0]),
            Err(Error::UnknownSeries(10))
        ));
        let mut after = Encoder::new();
        idx.write_to(&mut after).unwrap();
        assert_eq!(before, after.into_bytes(), "failed appends must be no-ops");
    }

    #[test]
    fn extend_series_rejected_when_paged() {
        let rel = small_relation(10, 32, 23);
        let mut idx = build_default(rel);
        let dir = std::env::temp_dir().join(format!("tsq-extend-paged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.pages");
        idx.attach_paged(&path, 8).unwrap();
        assert!(matches!(
            idx.extend_series(0, &[1.0]),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            idx.push_series(TimeSeries::new(vec![0.0; 32])),
            Err(Error::Unsupported(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ragged_snapshot_round_trips() {
        let mut rel = small_relation(6, 32, 24);
        rel.push(RandomWalkGenerator::new(55).series(20));
        let idx = build_default(rel);
        let mut enc = Encoder::new();
        idx.write_to(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let restored = SimilarityIndex::read_from(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(restored.len(), 7);
        assert_eq!(restored.series_len(), 32);
        assert!(matches!(
            restored.check_uniform(),
            Err(Error::Ragged { min: 20, max: 32 })
        ));
        let mut enc2 = Encoder::new();
        restored.write_to(&mut enc2).unwrap();
        assert_eq!(bytes, enc2.into_bytes());
    }

    #[test]
    fn bulk_and_incremental_agree() {
        let rel = small_relation(90, 32, 12);
        let bulk = build_default(rel.clone());
        let cfg = IndexConfig {
            bulk_load: false,
            ..IndexConfig::default()
        };
        let incr = SimilarityIndex::build(cfg, rel.clone()).unwrap();
        let t = LinearTransform::moving_average(32, 3);
        let q = &rel[7];
        let a = bulk
            .range_query(q, 2.0, &t, &QueryWindow::default())
            .unwrap()
            .0;
        let b = incr
            .range_query(q, 2.0, &t, &QueryWindow::default())
            .unwrap()
            .0;
        assert_eq!(a, b);
    }
}
