//! Cost-based query planning: logical plans, physical operator choice,
//! and the single plan executor every query runs through.
//!
//! The paper frames every similarity query as a choice among access
//! paths — sequential scan, early-abandoning scan, index
//! filter-and-refine, transformed-MBR traversal — and Table 1 / Figures
//! 10–12 show the winner flips with cardinality, length and selectivity.
//! This module makes that choice explicit and automatic:
//!
//! 1. A [`LogicalPlan`] states *what* the query asks (resolved query
//!    series, threshold or `k`, composed transformation, filter window),
//!    independent of how it will run.
//! 2. A [`Planner`] costs every admissible [`PhysicalOp`] for that logical
//!    plan from catalog statistics ([`RelationStats`]) and picks the
//!    cheapest, unless a `USING` hint or a [`PlanPreference`] override
//!    forces one.
//! 3. [`execute_plan`] runs the chosen [`PhysicalPlan`] — the one dispatch
//!    point between the language and the engine — and reports full
//!    [`ExecStats`] (candidates, refines, node visits, simulated disk
//!    accesses).
//!
//! ## The cost model
//!
//! Statistics come from the R\*-tree itself ([`tsq_rtree::LevelStats`]):
//! per level, the node count and the average MBR side length in every
//! dimension, plus the root bounds and the relation's cardinality and
//! series length. Node accesses are predicted with the classic R-tree
//! expectation (Kamel & Faloutsos): a node at a level with average extents
//! `s_j` intersects a query rectangle with sides `q_j` inside data bounds
//! of extents `W_j` with probability `Π_j min(1, (s_j + q_j) / W_j)`.
//! Candidates (and so refine work) follow from the same volume ratio over
//! the stored points. Selectivity for a threshold query uses the *actual*
//! search rectangle of the query's feature point (the paper's Figure-7
//! construction), clipped against the root MBR.
//!
//! The unit of cost is one simulated page read. CPU work (exact distance
//! refines, per-node MBR transformation — the Figure 8/9 overhead) is
//! converted at [`POINT_OPS_PER_PAGE`] floating-point operations per page
//! read. A transformation's user-assigned Equation-10 cost
//! ([`LinearTransform::with_cost`], the `cost.rs` machinery) is folded in
//! as a planning surcharge per transformed traversal, so a user can
//! declare a transformation expensive and steer the planner away from
//! transform-heavy paths.
//!
//! Disk-access accounting matches the reproduction benches: a sequential
//! scan charges one access per stored record; an index plan charges one
//! per visited node plus one per candidate record fetched for refinement.

use tsq_rtree::{LevelStats, RStarTree, Rect};
use tsq_series::TimeSeries;

use crate::error::{Error, Result};
use crate::index::{Match, SimilarityIndex};
use crate::queries::JoinPair;
use crate::scan::ScanMode;
use crate::space::{QueryWindow, SpaceKind};
use crate::subseq::{SubseqConfig, SubseqIndex, SubseqMatch};
use crate::transform::LinearTransform;

/// Floating-point operations assumed equivalent to one simulated page
/// read when converting CPU work into cost units.
pub const POINT_OPS_PER_PAGE: f64 = 4096.0;

/// Fraction of a full distance computation an early-abandoning check is
/// assumed to cost on average (the paper reports roughly an order of
/// magnitude; we stay conservative).
const EARLY_ABANDON_FACTOR: f64 = 0.25;

/// What the query asks, with every name resolved: the immutable input to
/// planning and execution. Construction is the language layer's lowering
/// step (AST → `LogicalPlan`).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Range query: all stored series within `eps` of the query under `t`.
    Range {
        /// Relation searched (for display; the catalog resolves it).
        relation: String,
        /// Resolved query series.
        query: TimeSeries,
        /// Distance threshold.
        eps: f64,
        /// Composed data-side transformation.
        transform: LinearTransform,
        /// Optional mean/std filter window.
        window: QueryWindow,
    },
    /// Nearest-neighbor query: the `k` stored series closest to the query.
    Knn {
        /// Relation searched.
        relation: String,
        /// Resolved query series.
        query: TimeSeries,
        /// Number of neighbors.
        k: usize,
        /// Composed data-side transformation.
        transform: LinearTransform,
    },
    /// All-pairs self-join within `eps` under `t`.
    Join {
        /// Relation self-joined.
        relation: String,
        /// Distance threshold.
        eps: f64,
        /// Composed transformation (applied to both sides).
        transform: LinearTransform,
        /// `USING` override from the language, if any. A hint also pins
        /// the historical answer multiplicity of the method (index/tree
        /// joins report each pair twice, scans once); without a hint the
        /// executor canonicalizes every strategy to one row per unordered
        /// pair, so the planner's choice can never change the answer.
        hint: Option<JoinHint>,
    },
    /// Subsequence range query over a sliding window of length `window`.
    SubseqRange {
        /// Relation searched.
        relation: String,
        /// Resolved query series (exactly `window` samples).
        query: TimeSeries,
        /// Distance threshold.
        eps: f64,
        /// Sliding-window length.
        window: usize,
    },
    /// K-nearest-subsequence query.
    SubseqKnn {
        /// Relation searched.
        relation: String,
        /// Resolved query series (exactly `window` samples).
        query: TimeSeries,
        /// Number of neighbors.
        k: usize,
        /// Sliding-window length.
        window: usize,
    },
}

impl LogicalPlan {
    /// The relation this plan runs against.
    pub fn relation(&self) -> &str {
        match self {
            LogicalPlan::Range { relation, .. }
            | LogicalPlan::Knn { relation, .. }
            | LogicalPlan::Join { relation, .. }
            | LogicalPlan::SubseqRange { relation, .. }
            | LogicalPlan::SubseqKnn { relation, .. } => relation,
        }
    }

    /// The sliding-window length for subsequence forms.
    pub fn subseq_window(&self) -> Option<usize> {
        match self {
            LogicalPlan::SubseqRange { window, .. } | LogicalPlan::SubseqKnn { window, .. } => {
                Some(*window)
            }
            _ => None,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            LogicalPlan::Range { .. } => "Range",
            LogicalPlan::Knn { .. } => "Knn",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::SubseqRange { .. } => "SubseqRange",
            LogicalPlan::SubseqKnn { .. } => "SubseqKnn",
        }
    }
}

/// `USING` methods a join query may force (Table 1's methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHint {
    /// Sequential scan, full distances (method a).
    ScanFull,
    /// Sequential scan with early abandoning (method b).
    Scan,
    /// Index-nested-loop join (methods c/d).
    Index,
    /// Synchronized tree↔tree join (extension).
    Tree,
}

/// A physical operator: one concrete access path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicalOp {
    /// Sequential scan with full distance computations.
    SeqScan,
    /// Sequential scan with early-abandoning distance computations.
    EarlyAbandonScan,
    /// R\*-tree filter-and-refine range traversal (Algorithm 2).
    IndexRange,
    /// Best-first nearest-neighbor traversal with transformed MBR bounds.
    IndexKnn,
    /// All-pairs sequential scan join.
    JoinScan {
        /// Whether distance computations may abandon early.
        mode: ScanMode,
    },
    /// Index-nested-loop join: one transformed range probe per series.
    JoinIndex {
        /// Canonicalize to one row per unordered pair (planner default;
        /// `false` preserves the paper's twice-per-pair accounting for
        /// `USING INDEX`).
        dedup: bool,
    },
    /// Synchronized tree↔tree join.
    JoinTree {
        /// Canonicalize to one row per unordered pair (see `JoinIndex`).
        dedup: bool,
    },
    /// ST-index trail probe (range or k-NN over sliding windows).
    SubseqIndexProbe {
        /// K-nearest form (`false` = range form).
        knn: bool,
        /// Whether a cached ST-index existed at planning time (a cold
        /// probe pays the trail-extraction build first).
        cached: bool,
    },
}

impl PhysicalOp {
    /// Stable display name (used by EXPLAIN and the shell).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::SeqScan => "SeqScan",
            PhysicalOp::EarlyAbandonScan => "EarlyAbandonScan",
            PhysicalOp::IndexRange => "IndexRange",
            PhysicalOp::IndexKnn => "IndexKnn",
            PhysicalOp::JoinScan {
                mode: ScanMode::Naive,
            } => "JoinScan(full)",
            PhysicalOp::JoinScan {
                mode: ScanMode::EarlyAbandon,
            } => "JoinScan",
            PhysicalOp::JoinIndex { .. } => "JoinIndex",
            PhysicalOp::JoinTree { .. } => "JoinTree",
            PhysicalOp::SubseqIndexProbe { .. } => "SubseqIndexProbe",
        }
    }
}

/// Predicted effort of one physical operator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Predicted R\*-tree node visits (0 for scans).
    pub nodes: f64,
    /// Predicted index-level candidates (records the filter step emits).
    pub candidates: f64,
    /// Predicted exact distance computations.
    pub refines: f64,
    /// Predicted simulated disk accesses (nodes + record fetches; a scan
    /// charges one access per stored record).
    pub disk: f64,
    /// Predicted CPU cost in page-read units (see [`POINT_OPS_PER_PAGE`]).
    pub cpu: f64,
}

impl CostEstimate {
    /// Total cost in page-read units — what the planner minimizes.
    pub fn total(&self) -> f64 {
        self.disk + self.cpu
    }
}

/// The planner's decision: a chosen operator with its estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The access path to run.
    pub op: PhysicalOp,
    /// Its predicted cost.
    pub estimate: CostEstimate,
    /// True when a `USING` hint or [`PlanPreference`] override picked the
    /// operator instead of the cost comparison.
    pub forced: bool,
}

/// A planning outcome: the chosen plan plus every alternative considered
/// (operator name and estimate, in enumeration order) for EXPLAIN.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// The plan the executor will run.
    pub plan: PhysicalPlan,
    /// All candidates costed, chosen one included.
    pub considered: Vec<(&'static str, CostEstimate)>,
}

/// Planner-level override, used by ablation benches and tests to force an
/// access-path family regardless of the cost comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanPreference {
    /// Pick the cheapest estimate (the default).
    #[default]
    Auto,
    /// Force the sequential-scan family (early-abandoning where possible).
    ForceScan,
    /// Force the index family.
    ForceIndex,
}

/// An access path a query's `WITH (force = ...)` clause may pin. `Scan`
/// and `Index` are the surface forms; `ScanFull` and `Tree` exist so the
/// deprecated `USING` join hints lower onto the same struct without
/// losing Table-1 accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceOp {
    /// Sequential-scan family (early-abandoning where possible).
    Scan,
    /// Sequential scan with full distances (joins only; `USING SCANFULL`).
    ScanFull,
    /// Index family.
    Index,
    /// Synchronized tree↔tree join (joins only; `USING TREE`).
    Tree,
}

/// The unified query-override surface: one struct carries everything a
/// query may tune about its own execution — the access-path force (the
/// old `USING` hint and [`PlanPreference`] rolled together), the worker
/// thread count, and the scatter width over a sharded relation. Parsed
/// from the language's `WITH (force = scan|index, threads = n,
/// shards = n)` clause and threaded AST → planner → wire → HTTP JSON.
///
/// `None` everywhere means "engine defaults"; [`QueryOptions::default`]
/// is exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryOptions {
    /// Pin the access path instead of costing alternatives.
    pub force: Option<ForceOp>,
    /// Worker threads for batch fan-out and intra-query parallel phases
    /// (`0`/`None` = the executor's hardware default).
    pub threads: Option<usize>,
    /// Cap on concurrently probed shards of a sharded relation (ignored
    /// on unsharded relations; `None` = probe all shards concurrently).
    pub shards: Option<usize>,
}

impl QueryOptions {
    /// True when every field is the engine default.
    pub fn is_default(&self) -> bool {
        *self == QueryOptions::default()
    }

    /// The planner preference this force implies for non-join forms.
    ///
    /// # Errors
    /// `ScanFull`/`Tree` apply only to joins ([`Error::Unsupported`]).
    pub fn preference(&self) -> Result<PlanPreference> {
        match self.force {
            None => Ok(PlanPreference::Auto),
            Some(ForceOp::Scan) => Ok(PlanPreference::ForceScan),
            Some(ForceOp::Index) => Ok(PlanPreference::ForceIndex),
            Some(ForceOp::ScanFull) => Err(Error::Unsupported(
                "force = scanfull applies only to JOIN queries".to_string(),
            )),
            Some(ForceOp::Tree) => Err(Error::Unsupported(
                "force = tree applies only to JOIN queries".to_string(),
            )),
        }
    }

    /// The join hint this force implies (joins keep the historical
    /// per-method answer multiplicity, so a forced join is a hint, not a
    /// mere preference).
    pub fn join_hint(&self) -> Option<JoinHint> {
        match self.force {
            None => None,
            Some(ForceOp::Scan) => Some(JoinHint::Scan),
            Some(ForceOp::ScanFull) => Some(JoinHint::ScanFull),
            Some(ForceOp::Index) => Some(JoinHint::Index),
            Some(ForceOp::Tree) => Some(JoinHint::Tree),
        }
    }

    /// Field-wise overlay: any field set in `over` wins over `self`.
    pub fn merged(&self, over: &QueryOptions) -> QueryOptions {
        QueryOptions {
            force: over.force.or(self.force),
            threads: over.threads.or(self.threads),
            shards: over.shards.or(self.shards),
        }
    }
}

/// Shape statistics of one indexed point population: the root bounds and
/// per-level node profile the cost model consumes. Deterministic given
/// the tree structure, so a snapshot-restored index profiles identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpaceProfile {
    /// Points (whole series, or sliding windows) indexed.
    pub population: u64,
    /// Root MBR lower corner (empty when the tree is empty).
    pub bounds_lo: Vec<f64>,
    /// Root MBR upper corner.
    pub bounds_hi: Vec<f64>,
    /// Per-level node statistics, leaf level first, root last.
    pub levels: Vec<LevelStats>,
}

impl SpaceProfile {
    /// Profiles a built tree; `population` is the logical point count the
    /// caller indexes (tree items for whole-series indexes, total windows
    /// for trail-compressed ST-indexes).
    pub fn of_tree<T>(tree: &RStarTree<T>, population: u64) -> Self {
        let (bounds_lo, bounds_hi) = match tree.bounds() {
            Some(b) => (b.lo().to_vec(), b.hi().to_vec()),
            None => (Vec::new(), Vec::new()),
        };
        SpaceProfile {
            population,
            bounds_lo,
            bounds_hi,
            levels: tree.level_profile(),
        }
    }

    /// Total tree nodes.
    pub fn nodes_total(&self) -> u64 {
        self.levels.iter().map(|l| l.nodes).sum()
    }

    /// Data extent in dimension `d` (0 for an empty profile).
    fn extent(&self, d: usize) -> f64 {
        if d < self.bounds_lo.len() {
            self.bounds_hi[d] - self.bounds_lo[d]
        } else {
            0.0
        }
    }

    /// Expected `(node visits, point-selectivity fraction)` for a query
    /// rectangle given by per-dimension sides (`f64::INFINITY` =
    /// unconstrained). Sides are clipped to the data extent; the root is
    /// always visited.
    pub fn visit_estimate(&self, sides: &[f64]) -> (f64, f64) {
        if self.levels.is_empty() {
            return (0.0, 0.0);
        }
        let dims = self.bounds_lo.len();
        let mut point_frac = 1.0f64;
        for d in 0..dims {
            let w = self.extent(d);
            if w <= 0.0 {
                continue;
            }
            let q = sides.get(d).copied().unwrap_or(f64::INFINITY).min(w);
            point_frac *= (q / w).clamp(0.0, 1.0);
        }
        let mut nodes = 0.0;
        let top = self.levels.len() - 1;
        for (i, level) in self.levels.iter().enumerate() {
            if i == top {
                nodes += 1.0; // the root is always read
                continue;
            }
            let mut p = 1.0f64;
            for d in 0..dims {
                let w = self.extent(d);
                if w <= 0.0 {
                    continue;
                }
                let q = sides.get(d).copied().unwrap_or(f64::INFINITY).min(w);
                let s = level.avg_extent.get(d).copied().unwrap_or(0.0);
                p *= ((s + q) / w).clamp(0.0, 1.0);
            }
            nodes += (level.nodes as f64 * p).min(level.nodes as f64);
        }
        (nodes, point_frac)
    }
}

/// Per-relation statistics the planner consumes — computed at
/// registration, persisted in catalog snapshots so a restored catalog
/// plans byte-for-byte identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelationStats {
    /// Stored series.
    pub cardinality: usize,
    /// Length of every stored series.
    pub series_len: usize,
    /// Feature-space dimensionality of the whole-match index.
    pub dims: usize,
    /// Shape of the whole-match R\*-tree.
    pub profile: SpaceProfile,
}

impl RelationStats {
    /// Derives statistics from a built whole-match index.
    pub fn from_index(index: &SimilarityIndex) -> Self {
        RelationStats {
            cardinality: index.len(),
            series_len: index.series_len(),
            dims: index.config().schema.dims(),
            profile: SpaceProfile::of_tree(index.tree(), index.len() as u64),
        }
    }

    /// Height of the profiled tree.
    pub fn height(&self) -> u32 {
        self.profile.levels.len() as u32
    }
}

/// The cost-based planner: statistics plus the index whose configuration
/// (feature schema, coordinate space) shapes search rectangles.
#[derive(Debug, Clone, Copy)]
pub struct Planner<'a> {
    index: &'a SimilarityIndex,
    stats: &'a RelationStats,
    pref: PlanPreference,
}

impl<'a> Planner<'a> {
    /// A planner over one relation's index and statistics.
    pub fn new(index: &'a SimilarityIndex, stats: &'a RelationStats) -> Self {
        Planner {
            index,
            stats,
            pref: PlanPreference::Auto,
        }
    }

    /// Overrides the access-path family (ablation benches and tests).
    pub fn with_preference(mut self, pref: PlanPreference) -> Self {
        self.pref = pref;
        self
    }

    /// Picks the cheapest admissible physical plan for `logical`.
    /// `subseq` is the cached ST-index for subsequence forms, if any —
    /// planning never builds one (EXPLAIN must not execute anything).
    ///
    /// # Errors
    /// The same validation failures execution would report: length
    /// mismatches, unsafe transformations, non-finite thresholds.
    pub fn plan(&self, logical: &LogicalPlan, subseq: Option<&SubseqIndex>) -> Result<PlanChoice> {
        match logical {
            LogicalPlan::Range {
                query,
                eps,
                transform,
                window,
                ..
            } => self.plan_range(query, *eps, transform, window),
            LogicalPlan::Knn {
                query,
                k,
                transform,
                ..
            } => self.plan_knn(query, *k, transform),
            LogicalPlan::Join {
                eps,
                transform,
                hint,
                ..
            } => self.plan_join(*eps, transform, *hint),
            LogicalPlan::SubseqRange {
                query, eps, window, ..
            } => self.plan_subseq(query, Some(*eps), None, *window, subseq),
            LogicalPlan::SubseqKnn {
                query, k, window, ..
            } => self.plan_subseq(query, None, Some(*k), *window, subseq),
        }
    }

    /// CPU cost (in page units) of `checks` exact distance computations.
    fn refine_cpu(&self, checks: f64, transformed: bool) -> f64 {
        let ops_per_check = self.stats.series_len as f64 * if transformed { 2.0 } else { 1.0 };
        checks * ops_per_check / POINT_OPS_PER_PAGE
    }

    /// CPU surcharge of transforming `nodes` MBRs on the fly (Figure 8/9's
    /// overhead) plus the transformation's user-assigned Equation-10 cost.
    fn traversal_cpu(&self, nodes: f64, t: &LinearTransform) -> f64 {
        if t.is_identity(1e-12) {
            return 0.0;
        }
        nodes * (self.stats.dims as f64 * 8.0) / POINT_OPS_PER_PAGE + t.cost()
    }

    fn scan_estimate(&self, mode: ScanMode, transformed: bool) -> CostEstimate {
        let n = self.stats.cardinality as f64;
        let factor = match mode {
            ScanMode::Naive => 1.0,
            ScanMode::EarlyAbandon => EARLY_ABANDON_FACTOR,
        };
        CostEstimate {
            nodes: 0.0,
            candidates: n,
            refines: n,
            disk: n,
            cpu: self.refine_cpu(n, transformed) * factor,
        }
    }

    fn index_range_estimate(&self, sides: &[f64], t: &LinearTransform) -> CostEstimate {
        let (nodes, frac) = self.stats.profile.visit_estimate(sides);
        let candidates = self.stats.cardinality as f64 * frac;
        CostEstimate {
            nodes,
            candidates,
            refines: candidates,
            disk: nodes + candidates,
            cpu: self.refine_cpu(candidates, !t.is_identity(1e-12)) + self.traversal_cpu(nodes, t),
        }
    }

    fn plan_range(
        &self,
        query: &TimeSeries,
        eps: f64,
        t: &LinearTransform,
        window: &QueryWindow,
    ) -> Result<PlanChoice> {
        Error::check_threshold(eps)?;
        self.index.check_transform(t)?;
        let qf = self.index.query_features(query, t)?;
        let config = self.index.config();
        let qrect = config.space.search_rect(&qf, config.schema, eps, window);
        let sides = rect_sides(&qrect);
        let transformed = !t.is_identity(1e-12);
        let index_est = self.index_range_estimate(&sides, t);
        let ea_est = self.scan_estimate(ScanMode::EarlyAbandon, transformed);
        let seq_est = self.scan_estimate(ScanMode::Naive, transformed);
        let considered = vec![
            (PhysicalOp::IndexRange.name(), index_est),
            (PhysicalOp::EarlyAbandonScan.name(), ea_est),
            (PhysicalOp::SeqScan.name(), seq_est),
        ];
        let (op, estimate, forced) = match self.pref {
            PlanPreference::ForceScan => (PhysicalOp::EarlyAbandonScan, ea_est, true),
            PlanPreference::ForceIndex => (PhysicalOp::IndexRange, index_est, true),
            PlanPreference::Auto => {
                if index_est.total() <= ea_est.total() {
                    (PhysicalOp::IndexRange, index_est, false)
                } else {
                    (PhysicalOp::EarlyAbandonScan, ea_est, false)
                }
            }
        };
        Ok(PlanChoice {
            plan: PhysicalPlan {
                op,
                estimate,
                forced,
            },
            considered,
        })
    }

    fn plan_knn(&self, query: &TimeSeries, k: usize, t: &LinearTransform) -> Result<PlanChoice> {
        self.index.check_transform(t)?;
        // Validate the query length exactly as execution will.
        let _ = self.index.query_features(query, t)?;
        let n = self.stats.cardinality;
        let transformed = !t.is_identity(1e-12);
        // Equivalent-radius heuristic: the rectangle enclosing the k
        // nearest points covers about a k/n volume fraction of the data
        // bounds, so each side scales by (k/n)^(1/dims).
        let sides: Vec<f64> = if n == 0 {
            vec![0.0; self.stats.dims]
        } else {
            let frac = (k as f64 / n as f64).min(1.0);
            let scale = frac.powf(1.0 / self.stats.dims.max(1) as f64);
            (0..self.stats.dims)
                .map(|d| self.stats.profile.extent(d) * scale)
                .collect()
        };
        let (nodes, frac) = self.stats.profile.visit_estimate(&sides);
        // Best-first search refines a small multiple of the answer set.
        let refines = (2.0 * (k as f64).max(n as f64 * frac)).min(n as f64);
        let index_est = CostEstimate {
            nodes,
            candidates: refines,
            refines,
            disk: nodes + refines,
            cpu: self.refine_cpu(refines, transformed) + self.traversal_cpu(nodes, t),
        };
        let scan_est = self.scan_estimate(ScanMode::Naive, transformed);
        let considered = vec![
            (PhysicalOp::IndexKnn.name(), index_est),
            (PhysicalOp::SeqScan.name(), scan_est),
        ];
        let (op, estimate, forced) = match self.pref {
            PlanPreference::ForceScan => (PhysicalOp::SeqScan, scan_est, true),
            PlanPreference::ForceIndex => (PhysicalOp::IndexKnn, index_est, true),
            PlanPreference::Auto => {
                if index_est.total() <= scan_est.total() {
                    (PhysicalOp::IndexKnn, index_est, false)
                } else {
                    (PhysicalOp::SeqScan, scan_est, false)
                }
            }
        };
        Ok(PlanChoice {
            plan: PhysicalPlan {
                op,
                estimate,
                forced,
            },
            considered,
        })
    }

    fn plan_join(
        &self,
        eps: f64,
        t: &LinearTransform,
        hint: Option<JoinHint>,
    ) -> Result<PlanChoice> {
        Error::check_threshold(eps)?;
        if t.warp() <= 1 {
            self.index.check_transform(t)?;
        }
        let n = self.stats.cardinality as f64;
        let pairs = n * (n - 1.0).max(0.0) / 2.0;
        let transformed = !t.is_identity(1e-12);
        let scan_full = CostEstimate {
            nodes: 0.0,
            candidates: pairs,
            refines: pairs,
            disk: n,
            cpu: self.refine_cpu(pairs, transformed),
        };
        let scan_ea = CostEstimate {
            cpu: scan_full.cpu * EARLY_ABANDON_FACTOR,
            ..scan_full
        };
        // An average probe: the eps-ball search rectangle around a typical
        // feature point (the center of the data bounds), with the mean/std
        // filter dimensions unconstrained.
        let sides = self.eps_probe_sides(eps);
        let per_probe = self.index_range_estimate(&sides, t);
        let join_index = CostEstimate {
            nodes: n * per_probe.nodes,
            candidates: n * per_probe.candidates,
            refines: n * per_probe.refines,
            disk: n * per_probe.disk,
            cpu: n * per_probe.cpu,
        };
        // The synchronized join prunes both sides at once: at each level,
        // node pairs survive with the Minkowski probability of their two
        // average extents, and each surviving pair costs two node reads.
        let mut tree_nodes = 0.0;
        let dims = self.stats.dims;
        let top = self.stats.profile.levels.len().saturating_sub(1);
        for (i, level) in self.stats.profile.levels.iter().enumerate() {
            if i == top {
                tree_nodes += 1.0;
                continue;
            }
            let mut p = 1.0f64;
            for d in 0..dims {
                let w = self.stats.profile.extent(d);
                if w <= 0.0 {
                    continue;
                }
                let s = level.avg_extent.get(d).copied().unwrap_or(0.0);
                let q = sides.get(d).copied().unwrap_or(f64::INFINITY).min(w);
                p *= ((2.0 * s + q) / w).clamp(0.0, 1.0);
            }
            let nodes_l = level.nodes as f64;
            tree_nodes += (nodes_l * (1.0 + nodes_l * p)).min(nodes_l * nodes_l).min(
                // Never model the synchronized join as costlier than
                // probing every node once per series.
                n * nodes_l,
            );
        }
        let join_tree = CostEstimate {
            nodes: tree_nodes,
            candidates: join_index.candidates,
            refines: join_index.refines,
            disk: tree_nodes + join_index.candidates,
            cpu: self.refine_cpu(join_index.refines, transformed)
                + self.traversal_cpu(tree_nodes, t),
        };
        let considered = vec![
            (PhysicalOp::JoinIndex { dedup: true }.name(), join_index),
            (PhysicalOp::JoinTree { dedup: true }.name(), join_tree),
            (
                PhysicalOp::JoinScan {
                    mode: ScanMode::EarlyAbandon,
                }
                .name(),
                scan_ea,
            ),
            (
                PhysicalOp::JoinScan {
                    mode: ScanMode::Naive,
                }
                .name(),
                scan_full,
            ),
        ];
        let (op, estimate, forced) = match hint {
            Some(JoinHint::ScanFull) => (
                PhysicalOp::JoinScan {
                    mode: ScanMode::Naive,
                },
                scan_full,
                true,
            ),
            Some(JoinHint::Scan) => (
                PhysicalOp::JoinScan {
                    mode: ScanMode::EarlyAbandon,
                },
                scan_ea,
                true,
            ),
            Some(JoinHint::Index) => (PhysicalOp::JoinIndex { dedup: false }, join_index, true),
            Some(JoinHint::Tree) => (PhysicalOp::JoinTree { dedup: false }, join_tree, true),
            None => match self.pref {
                PlanPreference::ForceScan => (
                    PhysicalOp::JoinScan {
                        mode: ScanMode::EarlyAbandon,
                    },
                    scan_ea,
                    true,
                ),
                PlanPreference::ForceIndex => {
                    (PhysicalOp::JoinIndex { dedup: true }, join_index, true)
                }
                PlanPreference::Auto => {
                    let mut best = (PhysicalOp::JoinIndex { dedup: true }, join_index);
                    if join_tree.total() < best.1.total() {
                        best = (PhysicalOp::JoinTree { dedup: true }, join_tree);
                    }
                    if scan_ea.total() < best.1.total() {
                        best = (
                            PhysicalOp::JoinScan {
                                mode: ScanMode::EarlyAbandon,
                            },
                            scan_ea,
                        );
                    }
                    (best.0, best.1, false)
                }
            },
        };
        Ok(PlanChoice {
            plan: PhysicalPlan {
                op,
                estimate,
                forced,
            },
            considered,
        })
    }

    /// Per-dimension sides of an average eps-ball search rectangle: the
    /// Figure-7 block around the center of the data bounds, mean/std
    /// filter dimensions unconstrained.
    fn eps_probe_sides(&self, eps: f64) -> Vec<f64> {
        let config = self.index.config();
        let aux = config.schema.aux_dims();
        let mut sides = vec![f64::INFINITY; aux];
        let mut d = aux;
        while d < self.stats.dims {
            match config.space {
                SpaceKind::Rectangular => {
                    sides.push(2.0 * eps);
                    sides.push(2.0 * eps);
                }
                SpaceKind::Polar => {
                    // Magnitude dimension, then angle dimension.
                    sides.push(2.0 * eps);
                    let lo = if d < self.stats.profile.bounds_lo.len() {
                        self.stats.profile.bounds_lo[d]
                    } else {
                        0.0
                    };
                    let mag_center = (lo + self.stats.profile.extent(d) / 2.0).max(1e-9);
                    let angle_side = if eps >= mag_center {
                        2.0 * std::f64::consts::PI
                    } else {
                        2.0 * (eps / mag_center).asin()
                    };
                    sides.push(angle_side);
                }
            }
            d += 2;
        }
        sides
    }

    fn plan_subseq(
        &self,
        query: &TimeSeries,
        eps: Option<f64>,
        k: Option<usize>,
        window: usize,
        subseq: Option<&SubseqIndex>,
    ) -> Result<PlanChoice> {
        if let Some(eps) = eps {
            Error::check_threshold(eps)?;
        }
        if query.len() != window {
            return Err(Error::LengthMismatch {
                expected: window,
                got: query.len(),
            });
        }
        let config = match subseq {
            Some(idx) => *idx.config(),
            None => SubseqConfig::new(window),
        };
        let dims = 2 * config.k.min(window);
        let windows_per_series = (self.stats.series_len + 1).saturating_sub(window);
        let windows_total = match subseq {
            Some(idx) => idx.windows_total() as f64,
            None => (self.stats.cardinality * windows_per_series) as f64,
        };
        // The ST-index query rectangle is a cube of side 2 eps in the
        // window-feature space; k-NN uses the equivalent-radius heuristic.
        let side = match (eps, k) {
            (Some(eps), _) => 2.0 * eps,
            (None, Some(k)) => {
                let frac = if windows_total > 0.0 {
                    (k as f64 / windows_total).min(1.0)
                } else {
                    0.0
                };
                frac.powf(1.0 / dims.max(1) as f64)
            }
            (None, None) => 0.0,
        };
        let (probe, build_cpu) = match subseq {
            Some(idx) => {
                let profile = SpaceProfile::of_tree(idx.tree(), idx.windows_total() as u64);
                let sides: Vec<f64> = (0..dims)
                    .map(|d| match (eps, k) {
                        (Some(_), _) => side,
                        _ => profile.extent(d) * side,
                    })
                    .collect();
                let (nodes, frac) = profile.visit_estimate(&sides);
                let candidates = windows_total * frac;
                (
                    CostEstimate {
                        nodes,
                        candidates,
                        refines: candidates,
                        disk: nodes + candidates,
                        cpu: candidates * window as f64 / POINT_OPS_PER_PAGE,
                    },
                    0.0,
                )
            }
            None => {
                // Cold probe: coarse estimate (no tree to profile yet) plus
                // the sliding-DFT build the executor will run first.
                let trails = (windows_total / config.trail as f64).ceil();
                let fanout = config.rtree.max_entries.max(2) as f64;
                let mut level_nodes = (trails / fanout).ceil().max(1.0);
                let mut nodes = 0.0;
                while level_nodes > 1.0 {
                    nodes += level_nodes;
                    level_nodes = (level_nodes / fanout).ceil();
                }
                nodes += 1.0;
                let candidates = (windows_total * 0.05).max(1.0).min(windows_total);
                let build_cpu = windows_total * window as f64 / POINT_OPS_PER_PAGE;
                (
                    CostEstimate {
                        nodes,
                        candidates,
                        refines: candidates,
                        disk: nodes + candidates,
                        cpu: candidates * window as f64 / POINT_OPS_PER_PAGE,
                    },
                    build_cpu,
                )
            }
        };
        let estimate = CostEstimate {
            cpu: probe.cpu + build_cpu,
            ..probe
        };
        let op = PhysicalOp::SubseqIndexProbe {
            knn: k.is_some(),
            cached: subseq.is_some(),
        };
        Ok(PlanChoice {
            plan: PhysicalPlan {
                op,
                estimate,
                forced: false,
            },
            considered: vec![(op.name(), estimate)],
        })
    }
}

/// Side lengths of a search rectangle, with the unbounded filter
/// dimensions (|bound| ≥ 1e17) reported as infinite.
fn rect_sides(rect: &Rect) -> Vec<f64> {
    rect.lo()
        .iter()
        .zip(rect.hi())
        .map(|(lo, hi)| {
            if *lo <= -1e17 || *hi >= 1e17 {
                f64::INFINITY
            } else {
                hi - lo
            }
        })
        .collect()
}

/// Counters actually observed while running a plan. `disk_accesses`
/// follows the bench accounting: scans charge one access per stored
/// record, index plans one per visited node plus one per candidate fetch.
/// `pool_hits`/`pool_misses` are *measured* buffer-pool counters — real
/// page fetches, not arithmetic — and stay zero unless the relation has
/// paged storage attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Index-level candidates produced (scans: records compared).
    pub candidates: usize,
    /// Exact distance computations performed.
    pub refined: usize,
    /// Refined candidates rejected by the exact check.
    pub false_hits: usize,
    /// R\*-tree nodes visited (0 for scans).
    pub nodes_visited: u64,
    /// Simulated disk accesses of the whole plan.
    pub disk_accesses: u64,
    /// Measured buffer-pool hits (paged storage only; 0 in memory).
    pub pool_hits: u64,
    /// Measured buffer-pool misses, i.e. actual page reads (paged
    /// storage only; 0 in memory).
    pub pool_misses: u64,
}

impl ExecStats {
    /// Adds every counter of `other` into `self` — the scatter-gather
    /// merge rule: the merged stats of a sharded execution are the exact
    /// sum of the per-shard counters, buffer-pool traffic included.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.candidates += other.candidates;
        self.refined += other.refined;
        self.false_hits += other.false_hits;
        self.nodes_visited += other.nodes_visited;
        self.disk_accesses += other.disk_accesses;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
    }

    /// Exact sum of a slice of per-shard stats.
    pub fn sum(parts: &[ExecStats]) -> ExecStats {
        let mut total = ExecStats::default();
        for p in parts {
            total.absorb(p);
        }
        total
    }
}

/// Typed answer rows of a plan execution, before the language layer
/// attaches labels.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanRows {
    /// Whole-series matches (range and k-NN forms).
    Whole(Vec<Match>),
    /// Join pairs.
    Pairs(Vec<JoinPair>),
    /// Subsequence window matches.
    Windows(Vec<SubseqMatch>),
}

impl PlanRows {
    /// Number of answer rows.
    pub fn len(&self) -> usize {
        match self {
            PlanRows::Whole(v) => v.len(),
            PlanRows::Pairs(v) => v.len(),
            PlanRows::Windows(v) => v.len(),
        }
    }

    /// True when the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether `features` passes the query's mean/std filter window — the
/// scan-side equivalent of the index path's search-rectangle bounds on
/// the two auxiliary dimensions.
fn window_admits(features: &crate::features::Features, window: &QueryWindow) -> bool {
    if let Some((lo, hi)) = window.mean {
        if features.mean < lo || features.mean > hi {
            return false;
        }
    }
    if let Some((lo, hi)) = window.std {
        if features.std < lo || features.std > hi {
            return false;
        }
    }
    true
}

/// Executes a physical plan — the single dispatch point between planned
/// queries and the engine. `subseq` must be provided for subsequence
/// plans (the catalog builds or fetches it from its cache).
///
/// # Errors
/// Engine validation failures, or [`Error::Unsupported`] when the plan
/// does not fit the logical query (never produced by the [`Planner`]).
pub fn execute_plan(
    logical: &LogicalPlan,
    plan: &PhysicalPlan,
    index: &SimilarityIndex,
    subseq: Option<&SubseqIndex>,
) -> Result<(PlanRows, ExecStats)> {
    let n = index.len();
    match (logical, plan.op) {
        (
            LogicalPlan::Range {
                query,
                eps,
                transform,
                window,
                ..
            },
            PhysicalOp::IndexRange,
        ) => {
            let (matches, stats) = index.range_query(query, *eps, transform, window)?;
            let exec = ExecStats {
                candidates: stats.candidates,
                refined: stats.exact_checks,
                false_hits: stats.false_hits,
                nodes_visited: stats.index.nodes_visited,
                disk_accesses: stats.index.nodes_visited + stats.candidates as u64,
                pool_hits: stats.index.pool_hits,
                pool_misses: stats.index.pool_misses,
            };
            Ok((PlanRows::Whole(matches), exec))
        }
        (
            LogicalPlan::Range {
                query,
                eps,
                transform,
                window,
                ..
            },
            PhysicalOp::SeqScan | PhysicalOp::EarlyAbandonScan,
        ) => {
            Error::check_threshold(*eps)?;
            index.check_transform(transform)?;
            let qf = index.query_features(query, transform)?;
            let early = matches!(plan.op, PhysicalOp::EarlyAbandonScan);
            let mut exec = ExecStats {
                disk_accesses: n as u64,
                ..ExecStats::default()
            };
            let mut matches = Vec::new();
            for id in 0..n {
                let features = index.features(id).expect("id < len");
                if !window_admits(features, window) {
                    continue;
                }
                exec.candidates += 1;
                exec.refined += 1;
                let hit = if early {
                    index.exact_distance_bounded(id, transform, &qf, *eps)
                } else {
                    Some(index.exact_distance(id, transform, &qf)).filter(|d| *d <= *eps)
                };
                match hit {
                    Some(distance) => matches.push(Match { id, distance }),
                    None => exec.false_hits += 1,
                }
            }
            Ok((PlanRows::Whole(matches), exec))
        }
        (
            LogicalPlan::Knn {
                query,
                k,
                transform,
                ..
            },
            PhysicalOp::IndexKnn,
        ) => {
            let (matches, stats) = index.knn_query(query, *k, transform)?;
            let exec = ExecStats {
                candidates: stats.candidates,
                refined: stats.exact_checks,
                false_hits: 0,
                nodes_visited: stats.index.nodes_visited,
                disk_accesses: stats.index.nodes_visited + stats.exact_checks as u64,
                pool_hits: stats.index.pool_hits,
                pool_misses: stats.index.pool_misses,
            };
            Ok((PlanRows::Whole(matches), exec))
        }
        (
            LogicalPlan::Knn {
                query,
                k,
                transform,
                ..
            },
            PhysicalOp::SeqScan,
        ) => {
            let matches = index.scan_knn(query, *k, transform)?;
            let exec = ExecStats {
                candidates: n,
                refined: n,
                false_hits: n - matches.len(),
                nodes_visited: 0,
                disk_accesses: n as u64,
                pool_hits: 0,
                pool_misses: 0,
            };
            Ok((PlanRows::Whole(matches), exec))
        }
        (LogicalPlan::Join { eps, transform, .. }, PhysicalOp::JoinScan { mode }) => {
            let outcome = index.join_scan(*eps, transform, mode)?;
            let exec = ExecStats {
                candidates: outcome.stats.exact_checks,
                refined: outcome.stats.exact_checks,
                false_hits: outcome.stats.exact_checks - outcome.pairs.len(),
                nodes_visited: 0,
                disk_accesses: n as u64,
                pool_hits: 0,
                pool_misses: 0,
            };
            Ok((PlanRows::Pairs(outcome.pairs), exec))
        }
        (
            LogicalPlan::Join { eps, transform, .. },
            PhysicalOp::JoinIndex { dedup } | PhysicalOp::JoinTree { dedup },
        ) => {
            let outcome = if matches!(plan.op, PhysicalOp::JoinIndex { .. }) {
                index.join_index(*eps, transform)?
            } else {
                index.join_tree(*eps, transform)?
            };
            let mut pairs = outcome.pairs;
            if dedup {
                // Canonical answer: one row per unordered pair, `a < b`,
                // sorted — identical to the scan strategies' output keys.
                pairs.retain(|p| p.a < p.b);
                pairs.sort_by_key(|p| (p.a, p.b));
            }
            let exec = ExecStats {
                candidates: outcome.stats.candidates,
                refined: outcome.stats.exact_checks,
                // Refines rejected by the exact check. Derived from the
                // abandon counter, not `refined - rows`: an index probe's
                // own series is a candidate that *passes* the check yet is
                // never emitted as a pair.
                false_hits: outcome.stats.abandoned,
                nodes_visited: outcome.stats.index.nodes_visited,
                disk_accesses: outcome.stats.index.nodes_visited + outcome.stats.candidates as u64,
                pool_hits: outcome.stats.index.pool_hits,
                pool_misses: outcome.stats.index.pool_misses,
            };
            Ok((PlanRows::Pairs(pairs), exec))
        }
        (
            LogicalPlan::SubseqRange { query, eps, .. },
            PhysicalOp::SubseqIndexProbe { knn: false, .. },
        ) => {
            let idx = subseq.ok_or_else(|| {
                Error::Unsupported("subsequence plan executed without an ST-index".to_string())
            })?;
            let (matches, stats) = idx.subseq_range(query, *eps)?;
            Ok((PlanRows::Windows(matches), subseq_exec(&stats)))
        }
        (
            LogicalPlan::SubseqKnn { query, k, .. },
            PhysicalOp::SubseqIndexProbe { knn: true, .. },
        ) => {
            let idx = subseq.ok_or_else(|| {
                Error::Unsupported("subsequence plan executed without an ST-index".to_string())
            })?;
            let (matches, stats) = idx.subseq_knn(query, *k)?;
            Ok((PlanRows::Windows(matches), subseq_exec(&stats)))
        }
        _ => Err(Error::Unsupported(format!(
            "physical operator {} does not implement logical form {}",
            plan.op.name(),
            logical.label()
        ))),
    }
}

fn subseq_exec(stats: &crate::subseq::SubseqStats) -> ExecStats {
    ExecStats {
        candidates: stats.candidates,
        refined: stats.candidates,
        false_hits: stats.false_hits,
        nodes_visited: stats.index.nodes_visited,
        disk_accesses: stats.index.nodes_visited + stats.candidates as u64,
        pool_hits: stats.index.pool_hits,
        pool_misses: stats.index.pool_misses,
    }
}

fn fmt_est(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.1}")
    }
}

/// Renders a chosen plan as the `EXPLAIN` tree: the logical form, the
/// relation's statistics line, the chosen operator with its estimates,
/// and every alternative considered. Append actual counters (the
/// `EXPLAIN ANALYZE` form) via [`render_analyze`].
pub fn render_plan(logical: &LogicalPlan, choice: &PlanChoice, stats: &RelationStats) -> String {
    let mut out = String::new();
    let header = match logical {
        LogicalPlan::Range {
            relation,
            eps,
            transform,
            window,
            ..
        } => {
            let filter = match (window.mean, window.std) {
                (None, None) => String::new(),
                (mean, std) => {
                    let mut parts = Vec::new();
                    if let Some((lo, hi)) = mean {
                        parts.push(format!("mean in [{lo}, {hi}]"));
                    }
                    if let Some((lo, hi)) = std {
                        parts.push(format!("std in [{lo}, {hi}]"));
                    }
                    format!(", where {}", parts.join(" and "))
                }
            };
            format!(
                "Range on \"{relation}\": eps={eps}, transform={}{filter}",
                transform.name()
            )
        }
        LogicalPlan::Knn {
            relation,
            k,
            transform,
            ..
        } => format!(
            "Knn on \"{relation}\": k={k}, transform={}",
            transform.name()
        ),
        LogicalPlan::Join {
            relation,
            eps,
            transform,
            hint,
        } => {
            let hint = match hint {
                None => String::new(),
                Some(JoinHint::ScanFull) => ", using SCANFULL".to_string(),
                Some(JoinHint::Scan) => ", using SCAN".to_string(),
                Some(JoinHint::Index) => ", using INDEX".to_string(),
                Some(JoinHint::Tree) => ", using TREE".to_string(),
            };
            format!(
                "Join on \"{relation}\": eps={eps}, transform={}{hint}",
                transform.name()
            )
        }
        LogicalPlan::SubseqRange {
            relation,
            eps,
            window,
            ..
        } => format!("SubseqRange on \"{relation}\": eps={eps}, window={window}"),
        LogicalPlan::SubseqKnn {
            relation,
            k,
            window,
            ..
        } => format!("SubseqKnn on \"{relation}\": k={k}, window={window}"),
    };
    out.push_str(&header);
    out.push('\n');
    out.push_str(&format!(
        "  relation: {} series x {} points; index: {}-d R*-tree, height {}, {} node(s)\n",
        stats.cardinality,
        stats.series_len,
        stats.dims,
        stats.height(),
        stats.profile.nodes_total(),
    ));
    let plan = &choice.plan;
    let mode = if plan.forced { " [forced]" } else { "" };
    let extra = match plan.op {
        PhysicalOp::SubseqIndexProbe { cached, .. } if !cached => " [cold: builds ST-index]",
        _ => "",
    };
    out.push_str(&format!(
        "  => {}{mode}{extra}  (cost {}: disk {}, cpu {}; nodes {}, candidates {}, refines {})\n",
        plan.op.name(),
        fmt_est(plan.estimate.total()),
        fmt_est(plan.estimate.disk),
        fmt_est(plan.estimate.cpu),
        fmt_est(plan.estimate.nodes),
        fmt_est(plan.estimate.candidates),
        fmt_est(plan.estimate.refines),
    ));
    let alts: Vec<String> = choice
        .considered
        .iter()
        .map(|(name, est)| format!("{name} {}", fmt_est(est.total())))
        .collect();
    out.push_str(&format!("     considered: {}\n", alts.join(" | ")));
    out
}

/// Appends the `EXPLAIN ANALYZE` actual-counter line to a rendered plan.
/// The counters are exactly the [`ExecStats`] the execution returned.
/// When the relation runs on paged storage a second line reports the
/// *measured* buffer-pool traffic next to the `disk` paper-accounting
/// estimate; in-memory plans render byte-identically to before.
pub fn render_analyze(rendered: &mut String, rows: usize, stats: &ExecStats) {
    rendered.push_str(&format!(
        "     actual: rows={rows}, nodes={}, candidates={}, refined={}, false_hits={}, disk={}\n",
        stats.nodes_visited, stats.candidates, stats.refined, stats.false_hits, stats.disk_accesses,
    ));
    if stats.pool_hits + stats.pool_misses > 0 {
        rendered.push_str(&format!(
            "     measured: pool_hits={}, pool_misses={}\n",
            stats.pool_hits, stats.pool_misses,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use tsq_series::generate::RandomWalkGenerator;

    fn index(count: usize, len: usize, seed: u64) -> SimilarityIndex {
        let rel = RandomWalkGenerator::new(seed).relation(count, len);
        SimilarityIndex::build(IndexConfig::default(), rel).unwrap()
    }

    fn range_logical(idx: &SimilarityIndex, qid: usize, eps: f64) -> LogicalPlan {
        LogicalPlan::Range {
            relation: "r".into(),
            query: idx.series(qid).unwrap().clone(),
            eps,
            transform: LinearTransform::identity(idx.series_len()),
            window: QueryWindow::default(),
        }
    }

    #[test]
    fn relation_stats_deterministic() {
        let idx = index(120, 64, 1);
        let a = RelationStats::from_index(&idx);
        let b = RelationStats::from_index(&idx);
        assert_eq!(a, b);
        assert_eq!(a.cardinality, 120);
        assert_eq!(a.series_len, 64);
        assert_eq!(a.dims, 6);
        assert_eq!(a.profile.population, 120);
        assert!(a.height() >= 1);
    }

    #[test]
    fn selective_query_plans_index_unselective_plans_scan() {
        let idx = index(300, 32, 2);
        let stats = RelationStats::from_index(&idx);
        let planner = Planner::new(&idx, &stats);
        let tight = planner.plan(&range_logical(&idx, 0, 0.05), None).unwrap();
        assert_eq!(tight.plan.op, PhysicalOp::IndexRange);
        assert!(!tight.plan.forced);
        // eps large enough that every record qualifies: scanning must win.
        let loose = planner.plan(&range_logical(&idx, 0, 1e6), None).unwrap();
        assert_eq!(loose.plan.op, PhysicalOp::EarlyAbandonScan);
        assert_eq!(loose.considered.len(), 3);
    }

    #[test]
    fn preference_overrides_cost() {
        let idx = index(100, 32, 3);
        let stats = RelationStats::from_index(&idx);
        let logical = range_logical(&idx, 1, 0.1);
        let scan = Planner::new(&idx, &stats)
            .with_preference(PlanPreference::ForceScan)
            .plan(&logical, None)
            .unwrap();
        assert_eq!(scan.plan.op, PhysicalOp::EarlyAbandonScan);
        assert!(scan.plan.forced);
        let index_plan = Planner::new(&idx, &stats)
            .with_preference(PlanPreference::ForceIndex)
            .plan(&logical, None)
            .unwrap();
        assert_eq!(index_plan.plan.op, PhysicalOp::IndexRange);
        assert!(index_plan.plan.forced);
    }

    #[test]
    fn planned_range_matches_forced_plans() {
        let idx = index(150, 32, 4);
        let stats = RelationStats::from_index(&idx);
        for eps in [0.2, 1.0, 3.0, 10.0] {
            let logical = range_logical(&idx, 7, eps);
            let mut answers = Vec::new();
            for pref in [
                PlanPreference::Auto,
                PlanPreference::ForceScan,
                PlanPreference::ForceIndex,
            ] {
                let choice = Planner::new(&idx, &stats)
                    .with_preference(pref)
                    .plan(&logical, None)
                    .unwrap();
                let (rows, exec) = execute_plan(&logical, &choice.plan, &idx, None).unwrap();
                if matches!(choice.plan.op, PhysicalOp::IndexRange) {
                    assert!(exec.nodes_visited > 0);
                } else {
                    assert_eq!(exec.nodes_visited, 0);
                    assert_eq!(exec.disk_accesses, 150);
                }
                answers.push(rows);
            }
            let PlanRows::Whole(auto) = &answers[0] else {
                panic!("range plans return whole-series rows")
            };
            for other in &answers[1..] {
                let PlanRows::Whole(o) = other else { panic!() };
                let ids: Vec<usize> = auto.iter().map(|m| m.id).collect();
                let oids: Vec<usize> = o.iter().map(|m| m.id).collect();
                assert_eq!(ids, oids, "eps={eps}");
                for (a, b) in auto.iter().zip(o) {
                    assert!((a.distance - b.distance).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn join_auto_answers_match_scan_oracle() {
        let idx = index(60, 32, 5);
        let stats = RelationStats::from_index(&idx);
        let t = LinearTransform::moving_average(32, 4);
        let logical = LogicalPlan::Join {
            relation: "r".into(),
            eps: 1.6,
            transform: t.clone(),
            hint: None,
        };
        let oracle = idx.join_scan(1.6, &t, ScanMode::Naive).unwrap();
        for pref in [
            PlanPreference::Auto,
            PlanPreference::ForceScan,
            PlanPreference::ForceIndex,
        ] {
            let choice = Planner::new(&idx, &stats)
                .with_preference(pref)
                .plan(&logical, None)
                .unwrap();
            let (rows, _) = execute_plan(&logical, &choice.plan, &idx, None).unwrap();
            let PlanRows::Pairs(pairs) = rows else {
                panic!()
            };
            let got: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
            let want: Vec<(usize, usize)> = oracle.pairs.iter().map(|p| (p.a, p.b)).collect();
            assert_eq!(got, want, "{pref:?}");
        }
    }

    #[test]
    fn hinted_join_preserves_method_accounting() {
        let idx = index(60, 32, 6);
        let stats = RelationStats::from_index(&idx);
        let t = LinearTransform::moving_average(32, 4);
        let hinted = LogicalPlan::Join {
            relation: "r".into(),
            eps: 1.6,
            transform: t.clone(),
            hint: Some(JoinHint::Index),
        };
        let choice = Planner::new(&idx, &stats).plan(&hinted, None).unwrap();
        assert!(choice.plan.forced);
        assert_eq!(choice.plan.op, PhysicalOp::JoinIndex { dedup: false });
        let (rows, _) = execute_plan(&hinted, &choice.plan, &idx, None).unwrap();
        let scan = idx.join_scan(1.6, &t, ScanMode::Naive).unwrap();
        // The paper's accounting: each unordered pair reported twice.
        assert_eq!(rows.len(), 2 * scan.pairs.len());
    }

    #[test]
    fn join_false_hits_exclude_self_pairs() {
        // Every index-join probe's own series is a candidate that passes
        // the exact check (distance 0) without producing a pair; it must
        // not be reported as a false hit.
        let idx = index(20, 32, 12);
        let stats = RelationStats::from_index(&idx);
        let hinted = LogicalPlan::Join {
            relation: "r".into(),
            eps: 1e-3,
            transform: LinearTransform::identity(32),
            hint: Some(JoinHint::Index),
        };
        let choice = Planner::new(&idx, &stats).plan(&hinted, None).unwrap();
        let (rows, exec) = execute_plan(&hinted, &choice.plan, &idx, None).unwrap();
        assert!(rows.is_empty(), "1e-3 admits no distinct pairs");
        assert!(exec.refined >= 20, "each probe refines at least itself");
        assert_eq!(
            exec.false_hits, 0,
            "self-pair refines passed the exact check and are not false hits"
        );
    }

    #[test]
    fn knn_plans_execute_identically() {
        let idx = index(200, 32, 7);
        let stats = RelationStats::from_index(&idx);
        let logical = LogicalPlan::Knn {
            relation: "r".into(),
            query: idx.series(3).unwrap().clone(),
            k: 5,
            transform: LinearTransform::moving_average(32, 4),
        };
        let mut results = Vec::new();
        for pref in [PlanPreference::ForceScan, PlanPreference::ForceIndex] {
            let choice = Planner::new(&idx, &stats)
                .with_preference(pref)
                .plan(&logical, None)
                .unwrap();
            let (rows, _) = execute_plan(&logical, &choice.plan, &idx, None).unwrap();
            let PlanRows::Whole(m) = rows else { panic!() };
            assert_eq!(m.len(), 5);
            results.push(m);
        }
        for (a, b) in results[0].iter().zip(&results[1]) {
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn window_filter_applies_on_scan_plans() {
        let idx = index(120, 32, 8);
        let stats = RelationStats::from_index(&idx);
        let m = idx.series(0).unwrap().mean();
        let window = QueryWindow {
            mean: Some((m - 0.5, m + 0.5)),
            std: None,
        };
        let logical = LogicalPlan::Range {
            relation: "r".into(),
            query: idx.series(0).unwrap().clone(),
            eps: 100.0,
            transform: LinearTransform::identity(32),
            window,
        };
        let planner = Planner::new(&idx, &stats);
        let scan = planner
            .with_preference(PlanPreference::ForceScan)
            .plan(&logical, None)
            .unwrap();
        let via_index = planner
            .with_preference(PlanPreference::ForceIndex)
            .plan(&logical, None)
            .unwrap();
        let (a, sa) = execute_plan(&logical, &scan.plan, &idx, None).unwrap();
        let (b, _) = execute_plan(&logical, &via_index.plan, &idx, None).unwrap();
        assert_eq!(a, b);
        // The filter pruned scan candidates below the relation size.
        assert!(sa.candidates < 120);
    }

    #[test]
    fn mismatched_plan_is_typed_error() {
        let idx = index(10, 16, 9);
        let logical = LogicalPlan::Knn {
            relation: "r".into(),
            query: idx.series(0).unwrap().clone(),
            k: 2,
            transform: LinearTransform::identity(16),
        };
        let bad = PhysicalPlan {
            op: PhysicalOp::JoinTree { dedup: true },
            estimate: CostEstimate::default(),
            forced: false,
        };
        assert!(matches!(
            execute_plan(&logical, &bad, &idx, None),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn subseq_plan_requires_index_at_execution_only() {
        let idx = index(20, 32, 10);
        let stats = RelationStats::from_index(&idx);
        let logical = LogicalPlan::SubseqRange {
            relation: "r".into(),
            query: TimeSeries::new(idx.series(0).unwrap().values()[..8].to_vec()),
            eps: 1.0,
            window: 8,
        };
        // Planning without a cached ST-index works (cold estimate)...
        let choice = Planner::new(&idx, &stats).plan(&logical, None).unwrap();
        assert_eq!(
            choice.plan.op,
            PhysicalOp::SubseqIndexProbe {
                knn: false,
                cached: false
            }
        );
        // ...but execution needs the index.
        assert!(matches!(
            execute_plan(&logical, &choice.plan, &idx, None),
            Err(Error::Unsupported(_))
        ));
        let st = SubseqIndex::build(
            SubseqConfig::new(8),
            (0..idx.len())
                .map(|i| idx.series(i).unwrap().clone())
                .collect(),
        )
        .unwrap();
        let cached_choice = Planner::new(&idx, &stats)
            .plan(&logical, Some(&st))
            .unwrap();
        assert_eq!(
            cached_choice.plan.op,
            PhysicalOp::SubseqIndexProbe {
                knn: false,
                cached: true
            }
        );
        let (rows, exec) = execute_plan(&logical, &cached_choice.plan, &idx, Some(&st)).unwrap();
        assert!(matches!(rows, PlanRows::Windows(_)));
        assert_eq!(
            exec.disk_accesses,
            exec.nodes_visited + exec.candidates as u64
        );
    }

    #[test]
    fn render_is_stable_and_complete() {
        let idx = index(80, 32, 11);
        let stats = RelationStats::from_index(&idx);
        let logical = range_logical(&idx, 2, 1.5);
        let choice = Planner::new(&idx, &stats).plan(&logical, None).unwrap();
        let a = render_plan(&logical, &choice, &stats);
        let b = render_plan(&logical, &choice, &stats);
        assert_eq!(a, b);
        assert!(a.contains("Range on \"r\""));
        assert!(a.contains("considered: IndexRange"));
        assert!(a.contains("EarlyAbandonScan"));
        let mut analyzed = a.clone();
        let exec = ExecStats {
            candidates: 3,
            refined: 3,
            false_hits: 1,
            nodes_visited: 7,
            disk_accesses: 10,
            pool_hits: 0,
            pool_misses: 0,
        };
        render_analyze(&mut analyzed, 2, &exec);
        assert!(analyzed.contains("actual: rows=2, nodes=7, candidates=3"));
        // In-memory plans never grow the measured line…
        assert!(!analyzed.contains("measured:"));
        // …and paged plans report real pool traffic next to the estimate.
        let paged_exec = ExecStats {
            pool_hits: 4,
            pool_misses: 3,
            ..exec
        };
        render_analyze(&mut analyzed, 2, &paged_exec);
        assert!(analyzed.contains("measured: pool_hits=4, pool_misses=3"));
    }
}
