//! The paper's transformation language: linear transformations
//! `T = (a, b)` over Fourier-series representations (Section 3).
//!
//! A transformation maps a spectrum `X` to `a .* X + b` (element-wise
//! complex multiply plus translate). Constructors are provided for every
//! operation the paper formulates in this language:
//!
//! - [`LinearTransform::moving_average`] — `T_mavg` (Section 3.2, Eq. 11),
//!   with the `sqrt(n)` convolution-theorem factor handled exactly so the
//!   frequency-domain action matches the time-domain circular moving
//!   average;
//! - [`LinearTransform::reverse`] — `T_rev` (`a = -1`, Example 2.2);
//! - [`LinearTransform::shift`] / [`LinearTransform::scale`] — the
//!   Goldin–Kanellakis operations, generalized to negative scales;
//! - [`LinearTransform::time_warp`] — Appendix A (Eq. 19), stretching the
//!   time dimension by an integer factor;
//! - [`LinearTransform::identity`] — `T_i = (1, 0)`, used by the paper's
//!   Figure 8/9 experiments to isolate transformation overhead.
//!
//! A transformation also carries affine actions on the two auxiliary index
//! dimensions of the paper's Section-5 layout (mean and standard deviation
//! of the original series) and a cost for the Eq. 10 dissimilarity.

use std::fmt;

use tsq_dft::complex::{Complex64, ONE, ZERO};
use tsq_dft::FftPlanner;

use crate::error::{Error, Result};

/// A linear transformation `(a, b)` on length-`n` spectra, together with
/// affine maps for the mean/std index dimensions, an optional time-warp
/// factor, and a cost.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTransform {
    a: Vec<Complex64>,
    /// Cached polar decomposition of `a` — (magnitude, angle) per
    /// coefficient. Computed once at construction; the transformed-MBR
    /// overlap test in `S_pol` reads it on every rectangle, so caching it
    /// removes a hypot+atan2 pair from the hottest loop of Algorithm 2.
    a_polar: Vec<(f64, f64)>,
    b: Vec<Complex64>,
    mean_map: (f64, f64),
    std_map: (f64, f64),
    warp: usize,
    cost: f64,
    name: String,
}

impl LinearTransform {
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        a: Vec<Complex64>,
        b: Vec<Complex64>,
        mean_map: (f64, f64),
        std_map: (f64, f64),
        warp: usize,
        cost: f64,
        name: String,
    ) -> Self {
        let a_polar = a.iter().map(|c| (c.abs(), c.angle())).collect();
        LinearTransform {
            a,
            a_polar,
            b,
            mean_map,
            std_map,
            warp,
            cost,
            name,
        }
    }

    /// Builds a transformation from raw coefficient vectors.
    ///
    /// # Errors
    /// Returns [`Error::TransformArity`] if `a` and `b` differ in length.
    pub fn from_parts(
        a: Vec<Complex64>,
        b: Vec<Complex64>,
        name: impl Into<String>,
    ) -> Result<Self> {
        if a.len() != b.len() {
            return Err(Error::TransformArity {
                expected: a.len(),
                got: b.len(),
            });
        }
        Ok(Self::assemble(
            a,
            b,
            (1.0, 0.0),
            (1.0, 0.0),
            1,
            0.0,
            name.into(),
        ))
    }

    /// The identity transformation `T_i = (I, 0)` over length-`n` spectra.
    pub fn identity(n: usize) -> Self {
        Self::assemble(
            vec![ONE; n],
            vec![ZERO; n],
            (1.0, 0.0),
            (1.0, 0.0),
            1,
            0.0,
            "identity".to_string(),
        )
    }

    /// The `window`-day circular moving average `T_mavg` for length-`n`
    /// series: `a_f = sum_{t<window} (1/window) e^{-j 2 pi t f / n}`, which
    /// is the *unnormalized* DFT of the kernel `m_l` — exactly the
    /// multiplier that makes `a .* X` the unitary spectrum of
    /// `conv(x, m_l)`. (The paper's Eq. 6 elides the `sqrt(n)`; see
    /// `tsq_dft::convolution`.)
    pub fn moving_average(n: usize, window: usize) -> Self {
        let w = vec![1.0 / window as f64; window];
        Self::weighted_moving_average(n, &w)
    }

    /// Weighted circular moving average (Eq. 11 with arbitrary weights
    /// `w_1..w_m`).
    ///
    /// # Panics
    /// Panics if the kernel is empty or longer than `n`.
    pub fn weighted_moving_average(n: usize, weights: &[f64]) -> Self {
        assert!(!weights.is_empty() && weights.len() <= n, "invalid kernel");
        let step = -std::f64::consts::TAU / n as f64;
        let a: Vec<Complex64> = (0..n)
            .map(|f| {
                let mut acc = ZERO;
                for (t, &w) in weights.iter().enumerate() {
                    acc += Complex64::cis(step * ((t * f) % n) as f64).scale(w);
                }
                acc
            })
            .collect();
        // Smoothing shrinks dispersion by a data-dependent factor; the
        // std dimension is left unchanged (it describes the *original*
        // series, as in the paper's Section-5 index layout).
        Self::assemble(
            a,
            vec![ZERO; n],
            (1.0, 0.0),
            (1.0, 0.0),
            1,
            0.0,
            format!("mavg({})", weights.len()),
        )
    }

    /// The reversing transformation `T_rev = (-1, 0)` of Example 2.2:
    /// every value multiplied by −1 (finds series with opposite price
    /// movements).
    pub fn reverse(n: usize) -> Self {
        Self::assemble(
            vec![-ONE; n],
            vec![ZERO; n],
            (-1.0, 0.0),
            (1.0, 0.0),
            1,
            0.0,
            "reverse".to_string(),
        )
    }

    /// Shift of the *original* series by `c` (adds `c` to every value).
    ///
    /// Under the paper's Section-5 layout the indexed spectrum belongs to
    /// the normal form, which a shift leaves untouched; only the mean
    /// dimension moves. (For an index over raw spectra use
    /// [`LinearTransform::shift_raw`].)
    pub fn shift(n: usize, c: f64) -> Self {
        Self::assemble(
            vec![ONE; n],
            vec![ZERO; n],
            (1.0, c),
            (1.0, 0.0),
            1,
            0.0,
            format!("shift({c})"),
        )
    }

    /// Scale of the *original* series by `c` (may be negative — the paper
    /// drops GK95's positive-scale restriction). The normal form flips sign
    /// when `c < 0`; mean scales by `c`, std by `|c|`.
    pub fn scale(n: usize, c: f64) -> Self {
        let sign = if c < 0.0 { -ONE } else { ONE };
        Self::assemble(
            vec![sign; n],
            vec![ZERO; n],
            (c, 0.0),
            (c.abs(), 0.0),
            1,
            0.0,
            format!("scale({c})"),
        )
    }

    /// Shift acting on a *raw* (unnormalized) spectrum: only the DC
    /// coefficient moves, by `c * sqrt(n)`.
    pub fn shift_raw(n: usize, c: f64) -> Self {
        let mut b = vec![ZERO; n];
        if n > 0 {
            b[0] = Complex64::from_real(c * (n as f64).sqrt());
        }
        Self::assemble(
            vec![ONE; n],
            b,
            (1.0, c),
            (1.0, 0.0),
            1,
            0.0,
            format!("shift_raw({c})"),
        )
    }

    /// Scale acting on a raw spectrum: every coefficient multiplied by `c`.
    pub fn scale_raw(n: usize, c: f64) -> Self {
        Self::assemble(
            vec![Complex64::from_real(c); n],
            vec![ZERO; n],
            (c, 0.0),
            (c.abs(), 0.0),
            1,
            0.0,
            format!("scale_raw({c})"),
        )
    }

    /// First difference (circular): `y_i = x_i - x_{i-1 mod n}` — the
    /// day-over-day *change* of a series, a standard de-trending step in
    /// stock analysis. Like the moving average it is a circular convolution
    /// (kernel `(1, -1, 0, ..., 0)`), hence expressible in the paper's
    /// transformation language with `a_f = 1 - e^{-j 2 pi f / n}`.
    pub fn difference(n: usize) -> Self {
        assert!(n >= 2, "difference needs at least two points");
        let step = -std::f64::consts::TAU / n as f64;
        let a: Vec<Complex64> = (0..n)
            .map(|f| ONE - Complex64::cis(step * f as f64))
            .collect();
        Self::assemble(
            a,
            vec![ZERO; n],
            (0.0, 0.0), // differencing removes the level entirely
            (1.0, 0.0),
            1,
            0.0,
            "diff".to_string(),
        )
    }

    /// Time warping by integer factor `m` (Appendix A): maps the spectrum
    /// of a length-`n` series to the first `n` coefficients of the
    /// length-`m*n` series obtained by repeating every value `m` times.
    ///
    /// With the unitary DFT convention the coefficients are
    /// `a_f = (1/sqrt(m)) * sum_{t<m} e^{-j 2 pi t f / (m n)}` (Eq. 19
    /// carries no `1/sqrt(m)` because the paper keeps `1/sqrt(n)` on both
    /// sides; see the module docs of `tsq_dft::dft`).
    pub fn time_warp(n: usize, m: usize) -> Self {
        assert!(m >= 1, "warp factor must be at least 1");
        let mn = m * n;
        let a: Vec<Complex64> = (0..n)
            .map(|f| {
                let mut acc = ZERO;
                for t in 0..m {
                    let k = (t * f) % mn;
                    acc += Complex64::cis(-std::f64::consts::TAU * k as f64 / mn as f64);
                }
                acc.scale(1.0 / (m as f64).sqrt())
            })
            .collect();
        // Stretching repeats values, so the std dimension is unchanged.
        Self::assemble(
            a,
            vec![ZERO; n],
            (1.0, 0.0),
            (1.0, 0.0),
            m,
            0.0,
            format!("warp({m})"),
        )
    }

    /// Sets the cost used by the Eq. 10 dissimilarity.
    pub fn with_cost(mut self, cost: f64) -> Self {
        assert!(cost >= 0.0, "cost must be non-negative");
        self.cost = cost;
        self
    }

    /// Renames the transformation (shown in query plans and `Display`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Spectrum length `n` this transformation acts on.
    pub fn n(&self) -> usize {
        self.a.len()
    }

    /// Multipliers `a`.
    pub fn a(&self) -> &[Complex64] {
        &self.a
    }

    /// Translations `b`.
    pub fn b(&self) -> &[Complex64] {
        &self.b
    }

    /// Cached polar decomposition of the multipliers: `(|a_f|, angle(a_f))`
    /// per coefficient.
    #[inline]
    pub fn a_polar(&self) -> &[(f64, f64)] {
        &self.a_polar
    }

    /// Affine map `(scale, offset)` on the mean dimension.
    pub fn mean_map(&self) -> (f64, f64) {
        self.mean_map
    }

    /// Affine map `(scale, offset)` on the std dimension.
    pub fn std_map(&self) -> (f64, f64) {
        self.std_map
    }

    /// Time-warp factor (1 = none).
    pub fn warp(&self) -> usize {
        self.warp
    }

    /// Cost for the Eq. 10 dissimilarity.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Transformation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when this is (numerically) the identity.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.warp == 1
            && self.a.iter().all(|c| (*c - ONE).abs() <= tol)
            && self.b.iter().all(|c| c.abs() <= tol)
            && (self.mean_map.0 - 1.0).abs() <= tol
            && self.mean_map.1.abs() <= tol
            && (self.std_map.0 - 1.0).abs() <= tol
            && self.std_map.1.abs() <= tol
    }

    /// Applies the transformation to a full spectrum.
    ///
    /// # Panics
    /// Panics if the spectrum length differs from `n`.
    pub fn apply_spectrum(&self, spectrum: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(spectrum.len(), self.a.len(), "spectrum length mismatch");
        spectrum
            .iter()
            .zip(self.a.iter().zip(&self.b))
            .map(|(&x, (&a, &b))| a * x + b)
            .collect()
    }

    /// Applies the transformation to a single coefficient by index.
    #[inline]
    pub fn apply_coeff(&self, f: usize, x: Complex64) -> Complex64 {
        self.a[f] * x + self.b[f]
    }

    /// Applies the transformation in the *time domain*: transforms the
    /// spectrum of `x` and inverts. For warping transformations this is the
    /// literal stretch (each value repeated `m` times).
    pub fn apply_time_domain(&self, planner: &mut FftPlanner, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n(), "series length mismatch");
        if self.warp > 1 {
            let mut out = Vec::with_capacity(x.len() * self.warp);
            for &v in x {
                for _ in 0..self.warp {
                    out.push(v);
                }
            }
            return out;
        }
        let spec = planner.dft_real(x);
        let transformed = self.apply_spectrum(&spec);
        planner.idft_real(&transformed)
    }

    /// Functional composition `other ∘ self` (apply `self` first):
    /// `a = a2 .* a1`, `b = a2 .* b1 + b2`; costs add.
    ///
    /// # Errors
    /// Returns [`Error::Unsupported`] when either side warps time (warps
    /// change the series length and do not compose with same-length
    /// transformations), and [`Error::TransformArity`] on length mismatch.
    pub fn then(&self, other: &LinearTransform) -> Result<LinearTransform> {
        if self.warp != 1 || other.warp != 1 {
            return Err(Error::Unsupported(
                "composition involving time warps".to_string(),
            ));
        }
        if self.n() != other.n() {
            return Err(Error::TransformArity {
                expected: self.n(),
                got: other.n(),
            });
        }
        let a: Vec<Complex64> = self
            .a
            .iter()
            .zip(&other.a)
            .map(|(&a1, &a2)| a2 * a1)
            .collect();
        let b: Vec<Complex64> = self
            .b
            .iter()
            .zip(other.a.iter().zip(&other.b))
            .map(|(&b1, (&a2, &b2))| a2 * b1 + b2)
            .collect();
        Ok(Self::assemble(
            a,
            b,
            (
                other.mean_map.0 * self.mean_map.0,
                other.mean_map.0 * self.mean_map.1 + other.mean_map.1,
            ),
            (
                other.std_map.0 * self.std_map.0,
                other.std_map.0 * self.std_map.1 + other.std_map.1,
            ),
            1,
            self.cost + other.cost,
            format!("{} . {}", other.name, self.name),
        ))
    }

    /// True when every multiplier is (numerically) real — the Theorem 2
    /// precondition for safety in `S_rect`.
    pub fn is_safe_rect(&self, tol: f64) -> bool {
        self.a.iter().all(|c| c.is_real(tol))
    }

    /// True when every translation is (numerically) zero — the Theorem 3
    /// precondition for safety in `S_pol`.
    pub fn is_safe_polar(&self, tol: f64) -> bool {
        self.b.iter().all(|c| c.abs() <= tol)
    }
}

impl fmt::Display for LinearTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_series::moving_average::circular_moving_average;
    use tsq_series::warp::stretch;
    use tsq_series::TimeSeries;

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn identity_is_identity() {
        let t = LinearTransform::identity(8);
        assert!(t.is_identity(1e-12));
        let mut planner = FftPlanner::new();
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        close(&t.apply_time_domain(&mut planner, &x), &x, 1e-9);
    }

    #[test]
    fn moving_average_matches_time_domain() {
        // The central claim of Section 3.2: T_mavg applied in the frequency
        // domain equals the circular moving average in the time domain.
        let s = TimeSeries::from([
            36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0, 37.0, 38.0, 39.0, 38.0, 40.0, 38.0,
            37.0,
        ]);
        let t = LinearTransform::moving_average(15, 3);
        let mut planner = FftPlanner::new();
        let freq_way = t.apply_time_domain(&mut planner, s.values());
        let time_way = circular_moving_average(&s, 3);
        close(&freq_way, time_way.values(), 1e-9);
    }

    #[test]
    fn weighted_moving_average_matches_time_domain() {
        let s = TimeSeries::from([1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0, 7.0]);
        let w = [0.5, 0.3, 0.2];
        let t = LinearTransform::weighted_moving_average(8, &w);
        let mut planner = FftPlanner::new();
        let freq_way = t.apply_time_domain(&mut planner, s.values());
        let time_way = tsq_series::moving_average::weighted_circular_moving_average(&s, &w);
        close(&freq_way, time_way.values(), 1e-9);
    }

    #[test]
    fn reverse_negates() {
        let t = LinearTransform::reverse(6);
        let mut planner = FftPlanner::new();
        let x = [1.0, -2.0, 3.0, 0.0, 5.0, -1.0];
        let y = t.apply_time_domain(&mut planner, &x);
        close(&y, &[-1.0, 2.0, -3.0, 0.0, -5.0, 1.0], 1e-9);
        assert_eq!(t.mean_map(), (-1.0, 0.0));
    }

    #[test]
    fn shift_raw_adds_constant() {
        let t = LinearTransform::shift_raw(5, 2.5);
        let mut planner = FftPlanner::new();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = t.apply_time_domain(&mut planner, &x);
        close(&y, &[3.5, 4.5, 5.5, 6.5, 7.5], 1e-9);
    }

    #[test]
    fn scale_raw_multiplies() {
        let t = LinearTransform::scale_raw(4, -3.0);
        let mut planner = FftPlanner::new();
        let y = t.apply_time_domain(&mut planner, &[1.0, 2.0, 0.0, -1.0]);
        close(&y, &[-3.0, -6.0, 0.0, 3.0], 1e-9);
        assert_eq!(t.std_map(), (3.0, 0.0));
    }

    #[test]
    fn difference_matches_time_domain() {
        let t = LinearTransform::difference(6);
        let mut planner = FftPlanner::new();
        let x = [5.0, 7.0, 4.0, 4.0, 9.0, 1.0];
        let y = t.apply_time_domain(&mut planner, &x);
        // Circular first difference: y_0 = x_0 - x_5.
        let want = [4.0, 2.0, -3.0, 0.0, 5.0, -8.0];
        close(&y, &want, 1e-9);
    }

    #[test]
    fn difference_is_polar_safe_only() {
        let t = LinearTransform::difference(8);
        assert!(t.is_safe_polar(1e-9));
        assert!(!t.is_safe_rect(1e-9), "difference multipliers are complex");
    }

    #[test]
    fn warp_coefficients_satisfy_appendix_a() {
        // Equation 18: a_f * S_f = S'_f where s' repeats each value m times,
        // both spectra unitary.
        let mut planner = FftPlanner::new();
        let s = TimeSeries::from([20.0, 21.0, 20.0, 23.0]);
        for m in [1usize, 2, 3] {
            let t = LinearTransform::time_warp(4, m);
            let spec = planner.dft_real(s.values());
            let warped = stretch(&s, m);
            let warped_spec = planner.dft_real(warped.values());
            for f in 0..4 {
                let lhs = t.apply_coeff(f, spec[f]);
                let rhs = warped_spec[f];
                assert!((lhs - rhs).abs() < 1e-9, "m={m} f={f}: {lhs} vs {rhs}");
            }
        }
    }

    #[test]
    fn warp_example_1_2_matches_exactly() {
        // Stretching p by 2 must reproduce s of Example 1.2 exactly — the
        // first k coefficients of T_warp2(P) equal those of S.
        let mut planner = FftPlanner::new();
        let p = TimeSeries::from([20.0, 21.0, 20.0, 23.0]);
        let s = TimeSeries::from([20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0]);
        let t = LinearTransform::time_warp(4, 2);
        let p_spec = planner.dft_real(p.values());
        let s_spec = planner.dft_real(s.values());
        for f in 0..4 {
            let lhs = t.apply_coeff(f, p_spec[f]);
            assert!((lhs - s_spec[f]).abs() < 1e-9, "f={f}");
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let t1 = LinearTransform::moving_average(12, 3);
        let t2 = LinearTransform::reverse(12);
        let both = t1.then(&t2).unwrap();
        let mut planner = FftPlanner::new();
        let x: Vec<f64> = (0..12).map(|i| ((i * 7) % 5) as f64).collect();
        let spec = planner.dft_real(&x);
        let seq = t2.apply_spectrum(&t1.apply_spectrum(&spec));
        let fused = both.apply_spectrum(&spec);
        for (a, b) in seq.iter().zip(&fused) {
            assert!((*a - *b).abs() < 1e-10);
        }
        assert_eq!(both.name(), "reverse . mavg(3)");
    }

    #[test]
    fn warp_composition_rejected() {
        let w = LinearTransform::time_warp(4, 2);
        let i = LinearTransform::identity(4);
        assert!(matches!(w.then(&i), Err(Error::Unsupported(_))));
        assert!(matches!(i.then(&w), Err(Error::Unsupported(_))));
    }

    #[test]
    fn safety_predicates() {
        let mavg = LinearTransform::moving_average(16, 4);
        assert!(!mavg.is_safe_rect(1e-9), "MA multipliers are complex");
        assert!(mavg.is_safe_polar(1e-9), "MA has zero translation");
        let shift = LinearTransform::shift_raw(16, 1.0);
        assert!(shift.is_safe_rect(1e-9));
        assert!(!shift.is_safe_polar(1e-9));
        let rev = LinearTransform::reverse(16);
        assert!(rev.is_safe_rect(1e-9) && rev.is_safe_polar(1e-9));
    }

    #[test]
    fn costs_accumulate() {
        let t1 = LinearTransform::identity(4).with_cost(2.0);
        let t2 = LinearTransform::reverse(4).with_cost(3.5);
        assert_eq!(t1.then(&t2).unwrap().cost(), 5.5);
    }

    #[test]
    fn from_parts_checks_arity() {
        let a = vec![ONE; 4];
        let b = vec![ZERO; 3];
        assert!(matches!(
            LinearTransform::from_parts(a, b, "bad"),
            Err(Error::TransformArity { .. })
        ));
    }
}
