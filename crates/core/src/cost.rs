//! The cost-bounded dissimilarity of Equation 10 (after Jagadish,
//! Mendelzon & Milo 1995).
//!
//! Given a set of transformations `t`, each with a cost, the dissimilarity
//! between two objects is
//!
//! ```text
//! D(x, y) = min {  D0(x, y),
//!                  min_{T in t}       cost(T)  + D(T(x), y),
//!                  min_{T in t}       cost(T)  + D(x, T(y)),
//!                  min_{T1, T2 in t}  cost(T1) + cost(T2) + D(T1(x), T2(y)) }
//! ```
//!
//! where `D0` is the Euclidean distance. The recursion is a shortest-path
//! problem over states `(x', y')` reachable by applying transformations to
//! either side; [`transformation_distance`] solves it with uniform-cost
//! search, bounded by a cost budget and a depth limit (the paper bounds the
//! total cost, e.g. "proportional to the Euclidean distance between the two
//! original series", to keep repeated smoothing from equating everything).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tsq_dft::energy::euclidean_complex;
use tsq_dft::{Complex64, FftPlanner};
use tsq_series::TimeSeries;

use crate::error::{Error, Result};
use crate::transform::LinearTransform;

/// Search limits for [`transformation_distance`].
#[derive(Debug, Clone, Copy)]
pub struct CostBudget {
    /// Maximum total transformation cost allowed (the paper's upper bound
    /// on Equation 10's minimization).
    pub max_cost: f64,
    /// Maximum number of transformation applications per side (guards
    /// against zero-cost loops; the paper's examples all use depth <= 2).
    pub max_depth: usize,
}

impl Default for CostBudget {
    fn default() -> Self {
        CostBudget {
            max_cost: f64::INFINITY,
            max_depth: 3,
        }
    }
}

/// Result of a cost-bounded distance evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedDistance {
    /// The minimized value: transformation costs plus residual Euclidean
    /// distance.
    pub value: f64,
    /// Names of the transformations applied to the first object.
    pub applied_x: Vec<String>,
    /// Names of the transformations applied to the second object.
    pub applied_y: Vec<String>,
}

#[derive(Debug)]
struct State {
    priority: f64, // cost so far (admissible lower bound of final value)
    cost: f64,
    x: Vec<Complex64>,
    y: Vec<Complex64>,
    applied_x: Vec<usize>,
    applied_y: Vec<usize>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        other.priority.total_cmp(&self.priority) // min-heap
    }
}

/// Computes the Equation-10 dissimilarity between two equal-length series
/// under a transformation set, by uniform-cost search over transformation
/// applications to either side.
///
/// # Errors
/// - [`Error::LengthMismatch`] when the series lengths differ;
/// - [`Error::TransformArity`] when a transformation's length differs;
/// - [`Error::Unsupported`] for warping transformations (length-changing).
pub fn transformation_distance(
    x: &TimeSeries,
    y: &TimeSeries,
    transforms: &[LinearTransform],
    budget: CostBudget,
) -> Result<CostedDistance> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch {
            expected: x.len(),
            got: y.len(),
        });
    }
    // NaN budgets or costs make every pruning comparison below silently
    // false (`next_cost > NaN`, `priority >= NaN`), so the search would
    // neither prune nor terminate meaningfully — reject them up front.
    // +∞ max_cost is fine: it is the documented "no bound" default.
    if budget.max_cost.is_nan() {
        return Err(Error::NonFinite {
            context: format!("cost budget max_cost = {}", budget.max_cost),
        });
    }
    for t in transforms {
        if t.warp() > 1 {
            return Err(Error::Unsupported(
                "time warps in Equation-10 search".to_string(),
            ));
        }
        if t.n() != x.len() {
            return Err(Error::TransformArity {
                expected: x.len(),
                got: t.n(),
            });
        }
        if !t.cost().is_finite() {
            return Err(Error::NonFinite {
                context: format!("transformation {} cost = {}", t.name(), t.cost()),
            });
        }
    }
    let mut planner = FftPlanner::new();
    let sx = planner.dft_real(x.values());
    let sy = planner.dft_real(y.values());

    let mut best = CostedDistance {
        value: euclidean_complex(&sx, &sy),
        applied_x: Vec::new(),
        applied_y: Vec::new(),
    };
    let mut heap = BinaryHeap::new();
    heap.push(State {
        priority: 0.0,
        cost: 0.0,
        x: sx,
        y: sy,
        applied_x: Vec::new(),
        applied_y: Vec::new(),
    });
    while let Some(state) = heap.pop() {
        // Costs only grow down the search tree; once the cheapest open
        // state cannot beat the incumbent, stop.
        if state.priority >= best.value {
            break;
        }
        let d0 = state.cost + euclidean_complex(&state.x, &state.y);
        if d0 < best.value {
            best = CostedDistance {
                value: d0,
                applied_x: name_list(transforms, &state.applied_x),
                applied_y: name_list(transforms, &state.applied_y),
            };
        }
        for (ti, t) in transforms.iter().enumerate() {
            let next_cost = state.cost + t.cost();
            if next_cost > budget.max_cost || next_cost >= best.value {
                continue;
            }
            if state.applied_x.len() < budget.max_depth {
                let mut ax = state.applied_x.clone();
                ax.push(ti);
                heap.push(State {
                    priority: next_cost,
                    cost: next_cost,
                    x: t.apply_spectrum(&state.x),
                    y: state.y.clone(),
                    applied_x: ax,
                    applied_y: state.applied_y.clone(),
                });
            }
            if state.applied_y.len() < budget.max_depth {
                let mut ay = state.applied_y.clone();
                ay.push(ti);
                heap.push(State {
                    priority: next_cost,
                    cost: next_cost,
                    x: state.x.clone(),
                    y: t.apply_spectrum(&state.y),
                    applied_x: state.applied_x.clone(),
                    applied_y: ay,
                });
            }
        }
    }
    Ok(best)
}

fn name_list(transforms: &[LinearTransform], applied: &[usize]) -> Vec<String> {
    applied
        .iter()
        .map(|&i| transforms[i].name().to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_series::distance::euclidean;

    #[test]
    fn no_transforms_is_plain_distance() {
        let x = TimeSeries::from([1.0, 2.0, 3.0, 4.0]);
        let y = TimeSeries::from([2.0, 2.0, 2.0, 2.0]);
        let d = transformation_distance(&x, &y, &[], CostBudget::default()).unwrap();
        assert!((d.value - euclidean(&x, &y)).abs() < 1e-9);
        assert!(d.applied_x.is_empty() && d.applied_y.is_empty());
    }

    #[test]
    fn reverse_detects_opposites() {
        // y = -x: with T_rev at cost 1 the dissimilarity drops to 1.
        let x = TimeSeries::from([1.0, -2.0, 3.0, -1.0, 0.5, 2.0, -3.0, 1.5]);
        let y = x.negate();
        let rev = LinearTransform::reverse(8).with_cost(1.0);
        let d = transformation_distance(&x, &y, &[rev], CostBudget::default()).unwrap();
        assert!((d.value - 1.0).abs() < 1e-9, "got {}", d.value);
        assert_eq!(
            d.applied_x.len() + d.applied_y.len(),
            1,
            "one application suffices"
        );
    }

    #[test]
    fn transformation_skipped_when_too_expensive() {
        let x = TimeSeries::from([1.0, -2.0, 3.0, -1.0]);
        let y = x.negate();
        let plain = euclidean(&x, &y);
        let rev = LinearTransform::reverse(4).with_cost(plain + 5.0);
        let d = transformation_distance(&x, &y, &[rev], CostBudget::default()).unwrap();
        assert!((d.value - plain).abs() < 1e-9, "expensive transform unused");
    }

    #[test]
    fn non_finite_budget_and_costs_rejected() {
        let x = TimeSeries::from([1.0, -2.0, 3.0, -1.0]);
        let y = x.negate();
        let nan_budget = CostBudget {
            max_cost: f64::NAN,
            max_depth: 2,
        };
        assert!(matches!(
            transformation_distance(&x, &y, &[], nan_budget),
            Err(Error::NonFinite { .. })
        ));
        let rev = LinearTransform::reverse(4).with_cost(f64::INFINITY);
        assert!(matches!(
            transformation_distance(&x, &y, &[rev], CostBudget::default()),
            Err(Error::NonFinite { .. })
        ));
    }

    #[test]
    fn budget_cost_limit_respected() {
        let x = TimeSeries::from([1.0, -2.0, 3.0, -1.0]);
        let y = x.negate();
        let rev = LinearTransform::reverse(4).with_cost(2.0);
        let tight = CostBudget {
            max_cost: 1.0,
            max_depth: 3,
        };
        let d = transformation_distance(&x, &y, &[rev], tight).unwrap();
        assert!((d.value - euclidean(&x, &y)).abs() < 1e-9);
    }

    #[test]
    fn both_sides_can_transform() {
        // x and y similar only after smoothing *both* (Example 2.1's MV
        // step applied to the two series).
        let base: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin() * 4.0).collect();
        let mut xv = base.clone();
        let mut yv = base.clone();
        for i in 0..32 {
            // Opposite-phase alternating noise.
            xv[i] += if i % 2 == 0 { 1.0 } else { -1.0 };
            yv[i] += if i % 2 == 0 { -1.0 } else { 1.0 };
        }
        let x = TimeSeries::new(xv);
        let y = TimeSeries::new(yv);
        let ma = LinearTransform::moving_average(32, 4).with_cost(0.5);
        let d = transformation_distance(&x, &y, &[ma], CostBudget::default()).unwrap();
        let plain = euclidean(&x, &y);
        assert!(d.value < plain, "{} !< {plain}", d.value);
        assert!(!d.applied_x.is_empty() && !d.applied_y.is_empty());
    }

    #[test]
    fn zero_cost_transforms_capped_by_depth() {
        // With zero costs the depth limit keeps the search finite.
        let x = TimeSeries::from([5.0, 1.0, 4.0, 2.0, 8.0, 3.0, 7.0, 2.0]);
        let y = TimeSeries::from([2.0, 7.0, 1.0, 8.0, 2.0, 4.0, 1.0, 5.0]);
        let ma = LinearTransform::moving_average(8, 2);
        let budget = CostBudget {
            max_cost: f64::INFINITY,
            max_depth: 4,
        };
        let d = transformation_distance(&x, &y, &[ma], budget).unwrap();
        assert!(d.applied_x.len() <= 4 && d.applied_y.len() <= 4);
        // Repeated smoothing flattens both series toward their means, so
        // the minimized value is below the plain distance.
        assert!(d.value <= euclidean(&x, &y));
    }

    #[test]
    fn length_mismatch_rejected() {
        let x = TimeSeries::from([1.0, 2.0]);
        let y = TimeSeries::from([1.0, 2.0, 3.0]);
        assert!(matches!(
            transformation_distance(&x, &y, &[], CostBudget::default()),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn warp_rejected() {
        let x = TimeSeries::from([1.0, 2.0, 3.0, 4.0]);
        let w = LinearTransform::time_warp(4, 2);
        assert!(matches!(
            transformation_distance(&x, &x, &[w], CostBudget::default()),
            Err(Error::Unsupported(_))
        ));
    }
}
