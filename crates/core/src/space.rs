//! Coordinate spaces over the feature vector: `S_rect` and `S_pol`
//! (Section 3.1), search-rectangle construction (Figure 7), and the action
//! of a safe transformation on minimum bounding rectangles (Algorithm 1).

use std::f64::consts::PI;

use tsq_dft::Complex64;
use tsq_rtree::Rect;

use crate::error::{Error, Result};
use crate::features::{FeatureSchema, Features};
use crate::geometry::{normalize_angle, AnnularSector};
use crate::transform::LinearTransform;

/// Stand-in for an unbounded coordinate in search rectangles (the mean/std
/// filter dimensions are unconstrained unless the query says otherwise).
pub const UNBOUNDED: f64 = 1e300;

/// How complex coefficients are laid out as real index dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpaceKind {
    /// Real/imaginary components (`S_rect`): translations are safe
    /// (Theorem 2), complex multipliers are not.
    Rectangular,
    /// Magnitude/phase-angle components (`S_pol`): complex multipliers are
    /// safe (Theorem 3), translations are not. The paper's experiments use
    /// this space "because vector multiplication for time series data seemed
    /// to be more important than vector addition".
    #[default]
    Polar,
}

impl SpaceKind {
    /// Coordinates of one complex coefficient in this space.
    #[inline]
    pub fn coeff_coords(&self, c: Complex64) -> [f64; 2] {
        match self {
            SpaceKind::Rectangular => [c.re, c.im],
            SpaceKind::Polar => [c.abs(), c.angle()],
        }
    }

    /// Full coordinate vector of a feature point under `schema`.
    pub fn point(&self, features: &Features, schema: FeatureSchema) -> Vec<f64> {
        let mut coords = Vec::with_capacity(schema.dims());
        if schema.aux_dims() == 2 {
            coords.push(features.mean);
            coords.push(features.std);
        }
        for &c in features.indexed_coeffs(schema) {
            let [a, b] = self.coeff_coords(c);
            coords.push(a);
            coords.push(b);
        }
        coords
    }

    /// Verifies that `t` satisfies the safety condition (Definition 1) for
    /// this space, over the coefficients the schema actually indexes.
    ///
    /// # Errors
    /// [`Error::UnsafeTransform`] citing the violated theorem.
    pub fn check_safety(&self, t: &LinearTransform, schema: FeatureSchema) -> Result<()> {
        const TOL: f64 = 1e-9;
        let range = schema.coeff_indices();
        match self {
            SpaceKind::Rectangular => {
                for f in range {
                    if !t.a()[f].is_real(TOL) {
                        return Err(Error::UnsafeTransform {
                            reason: format!(
                                "multiplier a_{f} = {} is complex; Theorem 2 requires real \
                                 multipliers in S_rect",
                                t.a()[f]
                            ),
                        });
                    }
                }
                Ok(())
            }
            SpaceKind::Polar => {
                for f in range {
                    if t.b()[f].abs() > TOL {
                        return Err(Error::UnsafeTransform {
                            reason: format!(
                                "translation b_{f} = {} is non-zero; Theorem 3 requires b = 0 \
                                 in S_pol",
                                t.b()[f]
                            ),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// Builds the search rectangle around a query's feature point for a
    /// Euclidean threshold `eps` (Section 3.1 / Figure 7).
    ///
    /// The mean/std dimensions (NormalForm schema) are bounded only by the
    /// optional `window`.
    pub fn search_rect(
        &self,
        query: &Features,
        schema: FeatureSchema,
        eps: f64,
        window: &QueryWindow,
    ) -> Rect {
        assert!(eps >= 0.0, "threshold must be non-negative");
        let mut lo = Vec::with_capacity(schema.dims());
        let mut hi = Vec::with_capacity(schema.dims());
        if schema.aux_dims() == 2 {
            let (ml, mh) = window.mean.unwrap_or((-UNBOUNDED, UNBOUNDED));
            let (sl, sh) = window.std.unwrap_or((-UNBOUNDED, UNBOUNDED));
            lo.push(ml);
            hi.push(mh);
            lo.push(sl);
            hi.push(sh);
        }
        for &c in query.indexed_coeffs(schema) {
            let (block_lo, block_hi) = self.ball_block(c, eps);
            lo.extend_from_slice(&block_lo);
            hi.extend_from_slice(&block_hi);
        }
        Rect::new(lo, hi)
    }

    /// The 2-d bounding block of the disk of radius `eps` around complex
    /// point `c`, in this space's coordinates.
    ///
    /// Rectangular: `[re ± eps] x [im ± eps]`. Polar (Figure 7): magnitude
    /// `[m - eps, m + eps]`, angle `[α ± asin(eps/m)]`; when `eps >= m` the
    /// disk contains the origin, so the magnitude range is `[0, m + eps]`
    /// and *every* angle is possible. An angle interval crossing ±π is
    /// widened to the full circle (stored angle coordinates are normalized,
    /// so the widened rectangle still contains every qualifying point —
    /// conservative, never lossy).
    pub fn ball_block(&self, c: Complex64, eps: f64) -> ([f64; 2], [f64; 2]) {
        match self {
            SpaceKind::Rectangular => ([c.re - eps, c.im - eps], [c.re + eps, c.im + eps]),
            SpaceKind::Polar => {
                let m = c.abs();
                if eps >= m {
                    ([0.0, -PI], [m + eps, PI])
                } else {
                    let alpha = c.angle();
                    let da = (eps / m).asin();
                    let lo = alpha - da;
                    let hi = alpha + da;
                    if lo < -PI || hi > PI {
                        // Crosses the angular cut: widen.
                        ([m - eps, -PI], [m + eps, PI])
                    } else {
                        ([m - eps, lo], [m + eps, hi])
                    }
                }
            }
        }
    }

    /// Applies a safe transformation to a stored MBR (Algorithm 1: the
    /// node-wise construction of the transformed index `I' = T(I)`).
    ///
    /// The caller must have verified safety via
    /// [`SpaceKind::check_safety`]; debug assertions re-check.
    pub fn transform_mbr(&self, rect: &Rect, t: &LinearTransform, schema: FeatureSchema) -> Rect {
        let dims = schema.dims();
        debug_assert_eq!(rect.dims(), dims);
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        let mut d = 0;
        if schema.aux_dims() == 2 {
            let (ma, mb) = t.mean_map();
            push_affine(&mut lo, &mut hi, rect.lo()[0], rect.hi()[0], ma, mb);
            let (sa, sb) = t.std_map();
            push_affine(&mut lo, &mut hi, rect.lo()[1], rect.hi()[1], sa, sb);
            d = 2;
        }
        for f in schema.coeff_indices() {
            let (alo, ahi) = (rect.lo()[d], rect.hi()[d]);
            let (blo, bhi) = (rect.lo()[d + 1], rect.hi()[d + 1]);
            match self {
                SpaceKind::Rectangular => {
                    let a = t.a()[f];
                    debug_assert!(a.is_real(1e-6), "unsafe multiplier in S_rect");
                    let b = t.b()[f];
                    push_affine(&mut lo, &mut hi, alo, ahi, a.re, b.re);
                    push_affine(&mut lo, &mut hi, blo, bhi, a.re, b.im);
                }
                SpaceKind::Polar => {
                    debug_assert!(t.b()[f].abs() <= 1e-6, "unsafe translation in S_pol");
                    let (scale, delta) = t.a_polar()[f];
                    lo.push(alo * scale);
                    hi.push(ahi * scale);
                    if scale == 0.0 {
                        // Everything collapses to the origin: angle is
                        // meaningless, keep the full range.
                        lo.push(-PI);
                        hi.push(PI);
                    } else {
                        let span = bhi - blo;
                        if span >= 2.0 * PI - 1e-12 {
                            lo.push(-PI);
                            hi.push(PI);
                        } else {
                            let nl = normalize_angle(blo + delta);
                            let nh = normalize_angle(bhi + delta);
                            if nl <= nh && (nh - nl) - span <= 1e-9 {
                                lo.push(nl);
                                hi.push(nh);
                            } else {
                                // The shifted interval crosses ±π: widen to
                                // the full circle (conservative; preserves
                                // the no-false-dismissal guarantee).
                                lo.push(-PI);
                                hi.push(PI);
                            }
                        }
                    }
                }
            }
            d += 2;
        }
        // Conservative padding: the point-wise transformation (complex
        // multiply, atan2) and the rectangle-wise transformation (affine on
        // bounds, angle shift) round differently in the last ulps. Widening
        // every dimension by a relative 1e-9 keeps the transformed MBR a
        // strict superset of every transformed member point, preserving the
        // Lemma-1 guarantee without affecting pruning power measurably.
        for i in 0..lo.len() {
            let pad = 1e-9 * (1.0 + lo[i].abs().max(hi[i].abs()));
            lo[i] -= pad;
            hi[i] += pad;
        }
        Rect::new(lo, hi)
    }

    /// Lower bound on the distance between the (transformed) objects inside
    /// a stored MBR and a query point, measured over the indexed
    /// coefficients only. Admissible for KNN: it never exceeds the true
    /// spectral distance (and hence, by Parseval, the true series
    /// distance for untransformed NormalForm/Raw queries).
    pub fn transformed_lower_bound(
        &self,
        rect: &Rect,
        t: &LinearTransform,
        schema: FeatureSchema,
        query: &Features,
    ) -> f64 {
        let trect = self.transform_mbr(rect, t, schema);
        let mut acc = 0.0;
        let mut d = schema.aux_dims();
        for &q in query.indexed_coeffs(schema) {
            let (alo, ahi) = (trect.lo()[d], trect.hi()[d]);
            let (blo, bhi) = (trect.lo()[d + 1], trect.hi()[d + 1]);
            let dist = match self {
                SpaceKind::Rectangular => {
                    let dx = axis_dist(q.re, alo, ahi);
                    let dy = axis_dist(q.im, blo, bhi);
                    (dx * dx + dy * dy).sqrt()
                }
                SpaceKind::Polar => {
                    let sector = if bhi - blo >= 2.0 * PI - 1e-12 {
                        AnnularSector::annulus(alo.max(0.0), ahi.max(0.0))
                    } else {
                        AnnularSector::new(alo.max(0.0), ahi.max(0.0), blo, bhi)
                    };
                    sector.min_dist(q)
                }
            };
            acc += dist * dist;
            d += 2;
        }
        acc.sqrt()
    }
}

impl SpaceKind {
    /// Allocation-free variant of "transform the MBR, test overlap": the
    /// transformed bounds of each dimension are computed in turn and tested
    /// against the query rectangle immediately, so a disjoint dimension
    /// aborts the remaining work. Semantically identical to
    /// `transform_mbr(rect, t, schema).intersects(query)` (including the
    /// conservative anti-rounding padding); this is the hot path of
    /// Algorithm 2.
    pub fn transformed_intersects(
        &self,
        rect: &Rect,
        t: &LinearTransform,
        schema: FeatureSchema,
        query: &Rect,
    ) -> bool {
        #[inline]
        fn overlap(lo: f64, hi: f64, qlo: f64, qhi: f64) -> bool {
            let pad = 1e-9 * (1.0 + lo.abs().max(hi.abs()));
            lo - pad <= qhi && qlo <= hi + pad
        }
        #[inline]
        fn affine_overlap(l: f64, h: f64, a: f64, b: f64, qlo: f64, qhi: f64) -> bool {
            let x = a * l + b;
            let y = a * h + b;
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            overlap(lo, hi, qlo, qhi)
        }
        let mut d = 0;
        if schema.aux_dims() == 2 {
            let (ma, mb) = t.mean_map();
            if !affine_overlap(
                rect.lo()[0],
                rect.hi()[0],
                ma,
                mb,
                query.lo()[0],
                query.hi()[0],
            ) {
                return false;
            }
            let (sa, sb) = t.std_map();
            if !affine_overlap(
                rect.lo()[1],
                rect.hi()[1],
                sa,
                sb,
                query.lo()[1],
                query.hi()[1],
            ) {
                return false;
            }
            d = 2;
        }
        for f in schema.coeff_indices() {
            let (alo, ahi) = (rect.lo()[d], rect.hi()[d]);
            let (blo, bhi) = (rect.lo()[d + 1], rect.hi()[d + 1]);
            match self {
                SpaceKind::Rectangular => {
                    let a = t.a()[f];
                    let b = t.b()[f];
                    if !affine_overlap(alo, ahi, a.re, b.re, query.lo()[d], query.hi()[d]) {
                        return false;
                    }
                    if !affine_overlap(blo, bhi, a.re, b.im, query.lo()[d + 1], query.hi()[d + 1]) {
                        return false;
                    }
                }
                SpaceKind::Polar => {
                    let (scale, delta) = t.a_polar()[f];
                    if !overlap(alo * scale, ahi * scale, query.lo()[d], query.hi()[d]) {
                        return false;
                    }
                    if scale != 0.0 {
                        let span = bhi - blo;
                        if span < 2.0 * PI - 1e-12 {
                            let nl = normalize_angle(blo + delta);
                            let nh = normalize_angle(bhi + delta);
                            // A wrapped interval (nl > nh) widens to the full
                            // circle, which overlaps every query interval.
                            if nl <= nh
                                && (nh - nl) - span <= 1e-9
                                && !overlap(nl, nh, query.lo()[d + 1], query.hi()[d + 1])
                            {
                                return false;
                            }
                        }
                    }
                }
            }
            d += 2;
        }
        true
    }

    /// Lower bound on the distance between any two (transformed) objects
    /// drawn from a pair of stored MBRs — the pruning predicate of the
    /// tree↔tree spatial join. Rectangular blocks use axis-gap distance;
    /// polar blocks use exact annular-sector-to-sector distance (the
    /// coordinate-space gap would be invalid because angles wrap).
    pub fn transformed_pair_lower_bound(
        &self,
        ra: &Rect,
        rb: &Rect,
        t: &LinearTransform,
        schema: FeatureSchema,
    ) -> f64 {
        let ta = self.transform_mbr(ra, t, schema);
        let tb = self.transform_mbr(rb, t, schema);
        self.pair_lower_bound_pretransformed(&ta, &tb, schema)
    }

    /// Same bound, for rectangles that are *already* transformed (the tree
    /// join memoizes transformed MBRs and calls this).
    pub fn pair_lower_bound_pretransformed(
        &self,
        ta: &Rect,
        tb: &Rect,
        schema: FeatureSchema,
    ) -> f64 {
        let mut acc = 0.0;
        let mut d = schema.aux_dims();
        for _ in schema.coeff_indices() {
            let dist = match self {
                SpaceKind::Rectangular => {
                    let dx = gap(ta.lo()[d], ta.hi()[d], tb.lo()[d], tb.hi()[d]);
                    let dy = gap(
                        ta.lo()[d + 1],
                        ta.hi()[d + 1],
                        tb.lo()[d + 1],
                        tb.hi()[d + 1],
                    );
                    (dx * dx + dy * dy).sqrt()
                }
                SpaceKind::Polar => {
                    // Leaf entries are points (up to the anti-rounding
                    // padding); their "sectors" degenerate and the exact
                    // complex distance minus a slack covering the padding
                    // is a much cheaper valid lower bound.
                    const POINTISH: f64 = 1e-6;
                    let a_point = ta.hi()[d] - ta.lo()[d] < POINTISH
                        && ta.hi()[d + 1] - ta.lo()[d + 1] < POINTISH;
                    let b_point = tb.hi()[d] - tb.lo()[d] < POINTISH
                        && tb.hi()[d + 1] - tb.lo()[d + 1] < POINTISH;
                    if a_point && b_point {
                        let pa = Complex64::from_polar(ta.lo()[d], ta.lo()[d + 1]);
                        let pb = Complex64::from_polar(tb.lo()[d], tb.lo()[d + 1]);
                        ((pa - pb).abs() - 4.0 * POINTISH).max(0.0)
                    } else {
                        let sa = sector_of(ta, d);
                        let sb = sector_of(tb, d);
                        sa.min_dist_to_sector(&sb)
                    }
                }
            };
            acc += dist * dist;
            d += 2;
        }
        acc.sqrt()
    }
}

fn sector_of(r: &Rect, d: usize) -> AnnularSector {
    let (mlo, mhi) = (r.lo()[d].max(0.0), r.hi()[d].max(0.0));
    let (alo, ahi) = (r.lo()[d + 1], r.hi()[d + 1]);
    if ahi - alo >= 2.0 * PI - 1e-12 {
        AnnularSector::annulus(mlo, mhi)
    } else {
        AnnularSector::new(mlo, mhi, alo, ahi)
    }
}

#[inline]
fn gap(alo: f64, ahi: f64, blo: f64, bhi: f64) -> f64 {
    if ahi < blo {
        blo - ahi
    } else if bhi < alo {
        alo - bhi
    } else {
        0.0
    }
}

/// Optional constraints on the mean/std filter dimensions of a query
/// (NormalForm schema only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryWindow {
    /// Bounds on the original-series mean.
    pub mean: Option<(f64, f64)>,
    /// Bounds on the original-series standard deviation.
    pub std: Option<(f64, f64)>,
}

#[inline]
fn push_affine(lo: &mut Vec<f64>, hi: &mut Vec<f64>, l: f64, h: f64, a: f64, b: f64) {
    let x = a * l + b;
    let y = a * h + b;
    if x <= y {
        lo.push(x);
        hi.push(y);
    } else {
        lo.push(y);
        hi.push(x);
    }
}

#[inline]
fn axis_dist(v: f64, lo: f64, hi: f64) -> f64 {
    if v < lo {
        lo - v
    } else if v > hi {
        v - hi
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_dft::FftPlanner;
    use tsq_series::TimeSeries;

    fn feats(vals: &[f64], schema: FeatureSchema) -> Features {
        let mut planner = FftPlanner::new();
        Features::extract(&TimeSeries::new(vals.to_vec()), schema, &mut planner).unwrap()
    }

    const NF2: FeatureSchema = FeatureSchema::NormalForm { k: 2 };

    #[test]
    fn point_layout_matches_paper() {
        // 6 dims: mean, std, |X1|, angle(X1), |X2|, angle(X2).
        let f = feats(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0], NF2);
        let p = SpaceKind::Polar.point(&f, NF2);
        assert_eq!(p.len(), 6);
        assert!((p[0] - f.mean).abs() < 1e-12);
        assert!((p[1] - f.std).abs() < 1e-12);
        assert!((p[2] - f.spectrum[1].abs()).abs() < 1e-12);
        assert!((p[3] - f.spectrum[1].angle()).abs() < 1e-12);
        let r = SpaceKind::Rectangular.point(&f, NF2);
        assert!((r[2] - f.spectrum[1].re).abs() < 1e-12);
        assert!((r[3] - f.spectrum[1].im).abs() < 1e-12);
    }

    #[test]
    fn rect_ball_block() {
        let (lo, hi) = SpaceKind::Rectangular.ball_block(Complex64::new(1.0, -2.0), 0.5);
        assert_eq!(lo, [0.5, -2.5]);
        assert_eq!(hi, [1.5, -1.5]);
    }

    #[test]
    fn polar_ball_block_figure7() {
        // m = 2, eps = 1: magnitude [1, 3], angle alpha ± asin(1/2).
        let c = Complex64::from_polar(2.0, 0.3);
        let (lo, hi) = SpaceKind::Polar.ball_block(c, 1.0);
        assert!((lo[0] - 1.0).abs() < 1e-12);
        assert!((hi[0] - 3.0).abs() < 1e-12);
        let da = (0.5f64).asin();
        assert!((lo[1] - (0.3 - da)).abs() < 1e-12);
        assert!((hi[1] - (0.3 + da)).abs() < 1e-12);
    }

    #[test]
    fn polar_ball_block_large_eps() {
        // eps >= m: full annulus of radius m + eps around the origin.
        let c = Complex64::from_polar(0.5, 1.0);
        let (lo, hi) = SpaceKind::Polar.ball_block(c, 1.0);
        assert_eq!(lo[0], 0.0);
        assert!((hi[0] - 1.5).abs() < 1e-12);
        assert_eq!(lo[1], -PI);
        assert_eq!(hi[1], PI);
    }

    #[test]
    fn polar_ball_block_contains_disk_boundary() {
        // Every point within eps of c must fall inside the block.
        let c = Complex64::from_polar(3.0, 2.0);
        let eps = 0.8;
        let (lo, hi) = SpaceKind::Polar.ball_block(c, eps);
        for i in 0..64 {
            let th = i as f64 / 64.0 * 2.0 * PI;
            let p = c + Complex64::from_polar(eps * 0.999, th);
            let m = p.abs();
            let a = p.angle();
            assert!(m >= lo[0] - 1e-9 && m <= hi[0] + 1e-9, "magnitude {m}");
            assert!(a >= lo[1] - 1e-9 && a <= hi[1] + 1e-9, "angle {a}");
        }
    }

    #[test]
    fn polar_ball_block_wraparound_widens() {
        // Query angle near pi: the asin interval crosses the cut.
        let c = Complex64::from_polar(2.0, PI - 0.01);
        let (lo, hi) = SpaceKind::Polar.ball_block(c, 0.5);
        assert_eq!(lo[1], -PI);
        assert_eq!(hi[1], PI);
    }

    #[test]
    fn safety_check_matches_theorems() {
        let mavg = LinearTransform::moving_average(8, 3);
        assert!(SpaceKind::Polar.check_safety(&mavg, NF2).is_ok());
        assert!(SpaceKind::Rectangular.check_safety(&mavg, NF2).is_err());
        let shift = LinearTransform::shift_raw(8, 1.0);
        let raw2 = FeatureSchema::Raw { k: 2 };
        assert!(SpaceKind::Rectangular.check_safety(&shift, raw2).is_ok());
        assert!(SpaceKind::Polar.check_safety(&shift, raw2).is_err());
        // The NF schema does not index coefficient 0, so shift_raw is
        // polar-safe there (b_0 is outside the indexed range).
        assert!(SpaceKind::Polar.check_safety(&shift, NF2).is_ok());
    }

    #[test]
    fn transform_mbr_identity_is_noop() {
        let f = feats(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0], NF2);
        for space in [SpaceKind::Polar, SpaceKind::Rectangular] {
            let p = space.point(&f, NF2);
            let r = Rect::from_point(&p);
            let t = LinearTransform::identity(8);
            let tr = space.transform_mbr(&r, &t, NF2);
            for i in 0..6 {
                // Within the conservative anti-rounding padding.
                assert!((tr.lo()[i] - p[i]).abs() < 1e-6);
                assert!(tr.contains_point(&p));
            }
        }
    }

    #[test]
    fn transform_mbr_contains_transformed_points() {
        // Safety in action: take an MBR of two feature points, transform
        // MBR and points, check containment (Definition 1).
        let f1 = feats(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0], NF2);
        let f2 = feats(&[7.0, 2.0, 8.0, 1.0, 0.0, 4.0, 3.0, 5.0], NF2);
        let t = LinearTransform::moving_average(8, 3);
        let space = SpaceKind::Polar;
        let p1 = space.point(&f1, NF2);
        let p2 = space.point(&f2, NF2);
        let mut mbr = Rect::from_point(&p1);
        mbr.union_assign(&Rect::from_point(&p2));
        let tmbr = space.transform_mbr(&mbr, &t, NF2);
        for f in [&f1, &f2] {
            let transformed = Features {
                mean: f.mean,
                std: f.std,
                spectrum: t.apply_spectrum(&f.spectrum),
            };
            let tp = space.point(&transformed, NF2);
            assert!(
                tmbr.contains_point(&tp),
                "transformed point {tp:?} escaped transformed MBR {tmbr}"
            );
        }
    }

    #[test]
    fn lower_bound_is_admissible() {
        // The reported bound never exceeds the true distance between the
        // transformed stored point and the query, measured on indexed
        // coefficients.
        let stored = feats(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0], NF2);
        let query = feats(&[2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0], NF2);
        for t in [
            LinearTransform::identity(8),
            LinearTransform::moving_average(8, 3),
            LinearTransform::reverse(8),
        ] {
            for space in [SpaceKind::Polar, SpaceKind::Rectangular] {
                if space.check_safety(&t, NF2).is_err() {
                    continue;
                }
                let p = space.point(&stored, NF2);
                let rect = Rect::from_point(&p);
                let bound = space.transformed_lower_bound(&rect, &t, NF2, &query);
                // True distance over indexed coefficients.
                let mut true_d2 = 0.0;
                for f in NF2.coeff_indices() {
                    let tx = t.apply_coeff(f, stored.spectrum[f]);
                    true_d2 += (tx - query.spectrum[f]).norm_sqr();
                }
                let true_d = true_d2.sqrt();
                assert!(
                    bound <= true_d + 1e-9,
                    "space {space:?}, t {}: bound {bound} > true {true_d}",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn search_rect_dims_and_window() {
        let q = feats(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0], NF2);
        let w = QueryWindow {
            mean: Some((2.0, 4.0)),
            std: None,
        };
        let r = SpaceKind::Polar.search_rect(&q, NF2, 0.5, &w);
        assert_eq!(r.dims(), 6);
        assert_eq!(r.lo()[0], 2.0);
        assert_eq!(r.hi()[0], 4.0);
        assert_eq!(r.lo()[1], -UNBOUNDED);
        assert_eq!(r.hi()[1], UNBOUNDED);
    }

    #[test]
    fn negative_scale_swaps_mean_bounds() {
        let f = feats(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0], NF2);
        let space = SpaceKind::Polar;
        let p = space.point(&f, NF2);
        let mut rect = Rect::from_point(&p);
        let mut hi_p = p.clone();
        hi_p[0] += 1.0; // widen the mean dimension
        rect.union_assign(&Rect::from_point(&hi_p));
        let t = LinearTransform::scale(8, -2.0);
        let tr = space.transform_mbr(&rect, &t, NF2);
        assert!(tr.lo()[0] <= tr.hi()[0]);
        assert!((tr.lo()[0] - (-2.0 * (p[0] + 1.0))).abs() < 1e-6);
    }
}
