//! Subsequence similarity search: the **ST-index** over sliding-window
//! feature trails.
//!
//! The paper's whole-sequence machinery (DFT prefix features + Lemma-1 safe
//! index traversal) extends to *subsequence* matching in the style of
//! Faloutsos–Ranganathan–Manolopoulos (FRM, SIGMOD 1994): slide a window of
//! length `w` over every stored series, map each window to its first `k`
//! unitary DFT coefficients (computed incrementally by the sliding DFT in
//! `tsq-dft`, `O(k)` per step), and index the resulting *trail* of feature
//! points in an R\*-tree. Because consecutive windows overlap in `w - 1`
//! samples, consecutive feature points lie close together; grouping runs of
//! them into a single trail MBR keeps the tree small (one entry per
//! [`SubseqConfig::trail`] windows instead of one per window) at the cost
//! of slightly looser rectangles.
//!
//! ## Why there are no false dismissals
//!
//! The unitary DFT preserves Euclidean distance (Parseval, Equation 8), so
//! the distance restricted to the first `k` coefficients is a *lower bound*
//! of the true window↔query distance. A window within `eps` of the query
//! therefore has its feature point inside the `eps`-ball around the query's
//! feature point, which is contained in the box `[c_i ± eps]` the range
//! query searches — and the trail MBR containing that point must intersect
//! the box. Candidates are verified against the raw samples (exact,
//! early-abandoning), so false hits are discarded and the final match set
//! equals the naive sliding scan's exactly. The oracle suite
//! (`tests/subseq_consistency.rs`) asserts this equality on randomized
//! relations.
//!
//! The query rectangle is widened by a tiny pad covering the sliding DFT's
//! re-anchored numerical drift, so the guarantee survives floating-point
//! rounding (same trick as the transformed-MBR padding in
//! [`crate::space`]).

use tsq_dft::dft::dft_prefix;
use tsq_dft::energy::euclidean_real;
use tsq_dft::sliding::{sliding_prefix, SlidingCursor};
use tsq_dft::Complex64;
use tsq_rtree::{RStarTree, RTreeConfig, Rect, SearchStats};
use tsq_series::TimeSeries;
use tsq_store::{Decoder, Encoder, StoreError, StoreResult};

use crate::error::{Error, Result};
use crate::scan::ScanMode;

/// Configuration of a [`SubseqIndex`].
#[derive(Debug, Clone, Copy)]
pub struct SubseqConfig {
    /// Sliding-window length `w` (the length of every query). Must be at
    /// least 2.
    pub window: usize,
    /// Number of leading DFT coefficients indexed per window (`2k` real
    /// dimensions). Must satisfy `1 <= k <= window`.
    pub k: usize,
    /// Number of consecutive windows grouped into one trail MBR. Must be
    /// positive; 1 stores every feature point individually.
    pub trail: usize,
    /// R\*-tree tuning.
    pub rtree: RTreeConfig,
    /// Build the tree with STR bulk loading instead of repeated insertion.
    pub bulk_load: bool,
}

impl SubseqConfig {
    /// Default layout (`k = 3` clamped to the window, trails of 8) for a
    /// given window length.
    pub fn new(window: usize) -> Self {
        let defaults = SubseqConfig::default();
        SubseqConfig {
            window,
            k: defaults.k.min(window.max(1)),
            ..defaults
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// [`Error::InvalidWindow`] when `window < 2`; [`Error::InvalidCutoff`]
    /// when `k` does not fit the window; [`Error::Unsupported`] for a zero
    /// trail size.
    pub fn validate(&self) -> Result<()> {
        if self.window < 2 {
            return Err(Error::InvalidWindow {
                window: self.window,
            });
        }
        if self.k == 0 || self.k > self.window {
            return Err(Error::InvalidCutoff {
                k: self.k,
                n: self.window,
            });
        }
        if self.trail == 0 {
            return Err(Error::Unsupported(
                "trail size must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

impl Default for SubseqConfig {
    fn default() -> Self {
        SubseqConfig {
            window: 32,
            k: 3,
            trail: 8,
            rtree: RTreeConfig::default(),
            bulk_load: true,
        }
    }
}

/// Payload of one R\*-tree entry: a run of consecutive windows of one
/// stored series, bounded by the entry's MBR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrailEntry {
    /// Stored-series id.
    pub series: usize,
    /// First window offset covered by this trail.
    pub start: usize,
    /// Number of consecutive windows covered.
    pub len: usize,
}

/// One subsequence answer: which series, at which offset, how far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubseqMatch {
    /// Stored-series id.
    pub series: usize,
    /// Window offset within the series.
    pub offset: usize,
    /// Exact time-domain Euclidean distance between the window and the
    /// query.
    pub distance: f64,
}

/// Statistics of one ST-index query.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubseqStats {
    /// Index traversal counters.
    pub index: SearchStats,
    /// Trail MBRs accepted by the traversal.
    pub trails: usize,
    /// Windows examined in post-processing (the candidate set — compare
    /// against [`SubseqIndex::windows_total`] for the scan's effort).
    pub candidates: usize,
    /// Candidates rejected by the exact check.
    pub false_hits: usize,
}

/// Counters from a sliding-scan baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubseqScanStats {
    /// Windows examined (always every window of every stored series).
    pub windows: usize,
    /// Distance computations abandoned early.
    pub abandoned: usize,
}

/// The ST-index: subsequence similarity search over a relation of (possibly
/// different-length) time series.
#[derive(Debug, Clone)]
pub struct SubseqIndex {
    config: SubseqConfig,
    tree: RStarTree<TrailEntry>,
    store: Vec<TimeSeries>,
    windows_total: usize,
    trails_total: usize,
}

impl SubseqIndex {
    /// Builds an ST-index over a relation. Unlike the whole-sequence
    /// [`crate::SimilarityIndex`], stored series may differ in length;
    /// series shorter than the window contribute no windows (and can never
    /// match).
    ///
    /// # Errors
    /// Propagates [`SubseqConfig::validate`] failures.
    pub fn build(config: SubseqConfig, relation: Vec<TimeSeries>) -> Result<Self> {
        Self::build_parallel(config, relation, 1)
    }

    /// [`SubseqIndex::build`] with the two heavy phases partitioned across
    /// up to `threads` worker threads: sliding-DFT trail extraction fans
    /// out per stored series, and the STR bulk load packs levels in
    /// parallel ([`RStarTree::bulk_load_parallel`]). The index is
    /// *identical* to a sequential build for every thread count — trail
    /// order is preserved by the fan-out and STR packing is
    /// position-deterministic — so queries cannot tell how it was built.
    ///
    /// # Errors
    /// Propagates [`SubseqConfig::validate`] failures.
    pub fn build_parallel(
        config: SubseqConfig,
        relation: Vec<TimeSeries>,
        threads: usize,
    ) -> Result<Self> {
        config.validate()?;
        let threads = threads.max(1);
        let mut index = SubseqIndex {
            config,
            tree: RStarTree::new(config.rtree),
            store: Vec::new(),
            windows_total: 0,
            trails_total: 0,
        };
        if config.bulk_load {
            let per_series = crate::executor::parallel_map(
                threads,
                relation.iter().enumerate().collect(),
                |(id, series)| trails_of(&config, id, series),
            );
            let items: Vec<(Rect, TrailEntry)> = per_series.into_iter().flatten().collect();
            index.tree = RStarTree::bulk_load_parallel(config.rtree, items, threads);
        } else {
            for (id, series) in relation.iter().enumerate() {
                for (rect, entry) in trails_of(&config, id, series) {
                    index.tree.insert(rect, entry);
                }
            }
        }
        for series in relation {
            index.count_windows(&series);
            index.store.push(series);
        }
        Ok(index)
    }

    /// Appends one series, returning its id. The new trails enter the tree
    /// through the STR-sorted batch path ([`RStarTree::bulk_extend`]).
    pub fn insert(&mut self, series: TimeSeries) -> usize {
        let id = self.store.len();
        let items = trails_of(&self.config, id, &series);
        self.tree.bulk_extend(items);
        self.count_windows(&series);
        self.store.push(series);
        id
    }

    /// Appends values to the end of one stored series, extending its
    /// feature trail *incrementally*: the sliding-DFT recurrence is resumed
    /// from the last indexed window (no prefix recomputation — `O(k)` per
    /// appended point), the final trail MBR — if it was partial — is
    /// closed out (removed and re-emitted with its new windows), and the
    /// MBRs of the new chunks enter the tree through the STR-sorted batch
    /// path ([`RStarTree::bulk_extend`]).
    ///
    /// Trail chunk boundaries are fixed absolute offsets
    /// (`start = chunk * trail`) and the sliding DFT re-anchors on absolute
    /// offsets too, so every emitted rectangle is bit-identical to the one
    /// a from-scratch rebuild over the final data would produce: the tree
    /// holds the *same entry set* either way (its node structure may
    /// differ, so `nodes_visited` can differ while answers, candidates and
    /// trail hits cannot).
    ///
    /// Validation is atomic: on any error the index is exactly as it was.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`] for a bad id, [`Error::NonFinite`] when the
    /// appended values contain NaN/±∞.
    pub fn extend_series(&mut self, id: usize, appended: &[f64]) -> Result<()> {
        if id >= self.store.len() {
            return Err(Error::UnknownSeries(id));
        }
        let w = self.config.window;
        let trail = self.config.trail;
        let old_len = self.store[id].len();
        let old_windows = old_len.saturating_sub(w - 1);
        self.store[id].try_extend(appended)?;
        // Nothing can fail past this point — the mutation is committed.
        let new_len = self.store[id].len();
        let new_windows = new_len.saturating_sub(w - 1);
        if new_windows == old_windows {
            return Ok(());
        }
        // The first chunk whose window set changes. When the last old
        // chunk was partial it is that chunk (its MBR must absorb the new
        // windows); when it was full — or there were no windows at all —
        // it is the next, brand-new chunk.
        let first_chunk = old_windows / trail;
        let mut items = chunks_of(
            &self.config,
            id,
            self.store[id].values(),
            first_chunk,
            new_windows,
        );
        if old_windows % trail != 0 {
            // Recompute the partial chunk's rectangle exactly as it was
            // emitted (the old windows read only pre-append samples, and
            // the resumed cursor is bit-identical to the original walk).
            // Its re-emitted rectangle only absorbs new window points, so
            // it *contains* the old one — the tree widens the stored
            // entry in place (`O(height)`, no structural churn) instead
            // of paying a remove + reinsert pair.
            let old_rect = chunks_of(
                &self.config,
                id,
                self.store[id].values(),
                first_chunk,
                old_windows,
            )
            .pop()
            .expect("partial chunk implies at least one window")
            .0;
            let start = first_chunk * trail;
            let (grown, entry) = items.remove(0);
            debug_assert_eq!(entry.start, start);
            let updated = self.tree.grow_entry(
                &old_rect,
                |t| t.series == id && t.start == start,
                grown,
                entry,
            );
            assert!(updated, "indexed partial trail must be present");
        }
        self.tree.bulk_extend(items);
        self.windows_total += new_windows - old_windows;
        self.trails_total += new_windows.div_ceil(trail) - old_windows.div_ceil(trail);
        Ok(())
    }

    fn count_windows(&mut self, series: &TimeSeries) {
        let w = self.config.window;
        if series.len() >= w {
            let count = series.len() - w + 1;
            self.windows_total += count;
            self.trails_total += count.div_ceil(self.config.trail);
        }
    }

    /// Number of stored series.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no series are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The configuration.
    pub fn config(&self) -> &SubseqConfig {
        &self.config
    }

    /// Stored series by id.
    pub fn series(&self, id: usize) -> Option<&TimeSeries> {
        self.store.get(id)
    }

    /// Total number of indexed windows across the relation — the effort a
    /// sliding scan must always spend.
    pub fn windows_total(&self) -> usize {
        self.windows_total
    }

    /// Total number of trail MBRs in the tree.
    pub fn trails_total(&self) -> usize {
        self.trails_total
    }

    /// Access to the underlying R\*-tree (read-only).
    pub fn tree(&self) -> &RStarTree<TrailEntry> {
        &self.tree
    }

    /// Serializes the ST-index — configuration, stored series, window and
    /// trail counters, and the R\*-tree's node structure byte-identically.
    pub fn write_to(&self, enc: &mut Encoder) {
        crate::store::write_subseq_config(enc, &self.config);
        enc.usize(self.store.len());
        for series in &self.store {
            crate::store::write_series(enc, series);
        }
        self.write_tail(enc);
    }

    /// [`SubseqIndex::write_to`] minus the stored series: configuration,
    /// counters and tree only. Catalog snapshots use this for cached
    /// ST-indexes, whose store always equals the owning relation's series
    /// — writing (and re-parsing) a second copy of the raw data would
    /// double both snapshot size and restore time for nothing.
    pub fn write_trails_to(&self, enc: &mut Encoder) {
        crate::store::write_subseq_config(enc, &self.config);
        self.write_tail(enc);
    }

    fn write_tail(&self, enc: &mut Encoder) {
        enc.usize(self.windows_total);
        enc.usize(self.trails_total);
        self.tree.write_to(enc, &mut |e, trail: &TrailEntry| {
            e.usize(trail.series);
            e.usize(trail.start);
            e.usize(trail.len);
        });
    }

    /// Restores an ST-index written by [`SubseqIndex::write_to`] without
    /// re-extracting any trail: queries on the restored index return the
    /// same answers with the same traversal statistics as the original.
    ///
    /// # Errors
    /// [`Error::Store`] for truncated, corrupt or inconsistent bytes
    /// (out-of-range trail entries, counter mismatches) — never a panic.
    pub fn read_from(dec: &mut Decoder<'_>) -> Result<Self> {
        let config = crate::store::read_subseq_config(dec)?;
        let count = dec.seq(8, "subseq stored series count")?;
        let mut store = Vec::with_capacity(count);
        for _ in 0..count {
            store.push(crate::store::read_series(dec)?);
        }
        Self::read_tail(dec, config, store)
    }

    /// Restores an ST-index written by [`SubseqIndex::write_trails_to`],
    /// adopting `store` (the owning relation's series) as the stored data.
    ///
    /// # Errors
    /// Same failure modes as [`SubseqIndex::read_from`]; the counters and
    /// trail bounds are validated against the supplied store, so a store
    /// that does not match the trails is rejected as corrupt.
    pub fn read_trails_from(dec: &mut Decoder<'_>, store: Vec<TimeSeries>) -> Result<Self> {
        let config = crate::store::read_subseq_config(dec)?;
        Self::read_tail(dec, config, store)
    }

    fn read_tail(
        dec: &mut Decoder<'_>,
        config: SubseqConfig,
        store: Vec<TimeSeries>,
    ) -> Result<Self> {
        let count = store.len();
        let windows_total = dec.usize("subseq windows_total")?;
        let trails_total = dec.usize("subseq trails_total")?;
        // Recompute both counters from the stored series: the snapshot's
        // values must agree or the trail entries cannot be trusted.
        let mut index = SubseqIndex {
            config,
            tree: RStarTree::new(config.rtree),
            store: Vec::new(),
            windows_total: 0,
            trails_total: 0,
        };
        for series in &store {
            index.count_windows(series);
        }
        if index.windows_total != windows_total || index.trails_total != trails_total {
            return Err(StoreError::corrupt(format!(
                "subseq counters disagree with stored series: \
                 file says {windows_total} window(s) / {trails_total} trail(s), \
                 series imply {} / {}",
                index.windows_total, index.trails_total
            ))
            .into());
        }
        let window = config.window;
        let tree = RStarTree::read_from(dec, &mut |d| {
            // Hot path (one call per trail): one block read, three fields.
            let bytes = d.bytes(24, "trail entry")?;
            let field = |i: usize| -> StoreResult<usize> {
                let v = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
                usize::try_from(v)
                    .map_err(|_| StoreError::corrupt(format!("trail field {v} exceeds usize")))
            };
            let series = field(0)?;
            let start = field(1)?;
            let len = field(2)?;
            let stored = store.get(series).ok_or_else(|| {
                StoreError::corrupt(format!("trail references series {series} of {count}"))
            })?;
            let available = stored.len().saturating_sub(window - 1);
            let end = start.checked_add(len);
            if len == 0 || end.is_none() || end.unwrap() > available {
                return Err(StoreError::corrupt(format!(
                    "trail [{start}, {start}+{len}) outside the {available} window(s) \
                     of series {series}"
                )));
            }
            Ok(TrailEntry { series, start, len })
        })?;
        if tree.len() != trails_total {
            return Err(StoreError::corrupt(format!(
                "subseq tree holds {} trail(s), counters say {trails_total}",
                tree.len()
            ))
            .into());
        }
        // The two stored copies of the R*-tree config (ST-index
        // configuration and tree header) must agree.
        if *tree.config() != config.rtree {
            return Err(StoreError::corrupt(format!(
                "subseq config {:?} disagrees with its tree's config {:?}",
                config.rtree,
                tree.config()
            ))
            .into());
        }
        if trails_total > 0 && tree.dims() != Some(2 * config.k) {
            return Err(StoreError::corrupt(format!(
                "subseq tree dimensionality {:?} does not match 2k = {}",
                tree.dims(),
                2 * config.k
            ))
            .into());
        }
        index.tree = tree;
        index.store = store;
        Ok(index)
    }

    fn check_query(&self, q: &TimeSeries, eps: f64) -> Result<()> {
        Error::check_threshold(eps)?;
        if q.len() != self.config.window {
            return Err(Error::LengthMismatch {
                expected: self.config.window,
                got: q.len(),
            });
        }
        Ok(())
    }

    /// Range query: every `(series, offset)` whose length-`w` window lies
    /// within `eps` of `q` in Euclidean distance. The traversal prunes on
    /// trail MBRs (no false dismissals — see the module docs); candidates
    /// are verified against raw samples with early abandoning. Results are
    /// sorted by `(series, offset)`.
    ///
    /// # Errors
    /// [`Error::NegativeThreshold`] and [`Error::LengthMismatch`] (the
    /// query must be exactly one window long).
    pub fn subseq_range(
        &self,
        q: &TimeSeries,
        eps: f64,
    ) -> Result<(Vec<SubseqMatch>, SubseqStats)> {
        self.check_query(q, eps)?;
        Ok(self.range_inner(q, eps, eps * eps))
    }

    /// Shared range kernel: `eps` sizes the search box, `limit` is the
    /// squared-distance acceptance threshold for the exact check. Keeping
    /// the two separate lets the KNN refinement pass the *exact* squared
    /// distance of its k-th candidate — squaring `sqrt(d2)` back can round
    /// below `d2` and silently drop the boundary window.
    fn range_inner(&self, q: &TimeSeries, eps: f64, limit: f64) -> (Vec<SubseqMatch>, SubseqStats) {
        let qcoords = coeff_coords(&dft_prefix(q.values(), self.config.k));
        let qrect = query_rect(&qcoords, eps);
        let mut trails: Vec<TrailEntry> = Vec::new();
        let index_stats = self
            .tree
            .search_with(|r| r.intersects(&qrect), |_, &t| trails.push(t));
        let mut stats = SubseqStats {
            index: index_stats,
            trails: trails.len(),
            ..SubseqStats::default()
        };
        let mut matches = Vec::new();
        for trail in trails {
            let values = self.store[trail.series].values();
            for offset in trail.start..trail.start + trail.len {
                stats.candidates += 1;
                let window = &values[offset..offset + self.config.window];
                match distance_sq_bounded(window, q.values(), limit) {
                    Some(d2) => matches.push(SubseqMatch {
                        series: trail.series,
                        offset,
                        distance: d2.sqrt(),
                    }),
                    None => stats.false_hits += 1,
                }
            }
        }
        matches.sort_by_key(|a| (a.series, a.offset));
        (matches, stats)
    }

    /// K-nearest-subsequence query: the `k` windows (over all stored
    /// series and offsets) minimizing the Euclidean distance to `q`,
    /// sorted by ascending distance (ties broken by `(series, offset)`).
    ///
    /// Filter-and-refine: a best-first trail search produces `k` candidate
    /// window distances, whose k-th smallest upper-bounds the true k-th
    /// neighbor distance; a range query at that radius then retrieves the
    /// exact answer (Lemma 1 again: the range step cannot dismiss a true
    /// neighbor).
    ///
    /// # Errors
    /// [`Error::LengthMismatch`] when the query is not one window long.
    pub fn subseq_knn(&self, q: &TimeSeries, k: usize) -> Result<(Vec<SubseqMatch>, SubseqStats)> {
        self.check_query(q, 0.0)?;
        if k == 0 || self.windows_total == 0 {
            return Ok((Vec::new(), SubseqStats::default()));
        }
        let qcoords = coeff_coords(&dft_prefix(q.values(), self.config.k));
        // Phase 1: best-first over trails, collecting every examined
        // window's exact squared distance.
        let mut seen: Vec<(f64, usize, usize)> = Vec::new(); // (d2, series, offset)
        let mut candidates = 0usize;
        let (trail_hits, mut index_stats) = self.tree.nearest_with(
            k,
            |rect| rect.min_dist2(&qcoords).sqrt(),
            |_, trail| {
                let values = self.store[trail.series].values();
                let mut best = f64::INFINITY;
                for offset in trail.start..trail.start + trail.len {
                    candidates += 1;
                    let window = &values[offset..offset + self.config.window];
                    let d2 = distance_sq(window, q.values());
                    best = best.min(d2);
                    seen.push((d2, trail.series, offset));
                }
                best.sqrt()
            },
        );
        seen.sort_by(|a, b| a.0.total_cmp(&b.0).then((a.1, a.2).cmp(&(b.1, b.2))));
        if trail_hits.len() < k || self.trails_total <= k {
            // Fewer trails than neighbors requested: the best-first pass
            // visited every window, so `seen` already is the exact answer.
            seen.truncate(k);
            let matches: Vec<SubseqMatch> = seen
                .into_iter()
                .map(|(d2, series, offset)| SubseqMatch {
                    series,
                    offset,
                    distance: d2.sqrt(),
                })
                .collect();
            let stats = SubseqStats {
                index: index_stats,
                trails: trail_hits.len(),
                candidates,
                // Every candidate passed an exact distance computation;
                // windows beyond rank k were truncated, not rejected.
                false_hits: 0,
            };
            return Ok((matches, stats));
        }
        // Phase 2: refine. `seen` holds at least k true window distances
        // (each of the k trails contributes at least one), so its k-th
        // smallest is a valid search radius for the exact answer set. The
        // box is sized by the (rounded) root, but the acceptance limit is
        // the *exact* squared distance, so the boundary window survives.
        let limit = seen[k - 1].0;
        let (mut matches, range_stats) = self.range_inner(q, limit.sqrt(), limit);
        sort_matches(&mut matches);
        matches.truncate(k);
        index_stats.absorb(&range_stats.index);
        let stats = SubseqStats {
            index: index_stats,
            trails: trail_hits.len() + range_stats.trails,
            candidates: candidates + range_stats.candidates,
            false_hits: range_stats.false_hits,
        };
        Ok((matches, stats))
    }

    /// Ground-truth baseline: a sliding scan over every window of every
    /// stored series (Table-1-style methods (a)/(b) restated for
    /// subsequences). Naive mode computes every distance in full; early
    /// abandoning stops a window as soon as it exceeds `eps`.
    ///
    /// # Errors
    /// Same validation as [`SubseqIndex::subseq_range`].
    pub fn scan_subseq_range(
        &self,
        q: &TimeSeries,
        eps: f64,
        mode: ScanMode,
    ) -> Result<(Vec<SubseqMatch>, SubseqScanStats)> {
        self.check_query(q, eps)?;
        let w = self.config.window;
        let limit = eps * eps;
        let mut stats = SubseqScanStats::default();
        let mut matches = Vec::new();
        for (id, series) in self.store.iter().enumerate() {
            let values = series.values();
            if values.len() < w {
                continue;
            }
            for offset in 0..=values.len() - w {
                stats.windows += 1;
                let window = &values[offset..offset + w];
                let d2 = match mode {
                    ScanMode::Naive => {
                        let d2 = distance_sq(window, q.values());
                        (d2 <= limit).then_some(d2)
                    }
                    ScanMode::EarlyAbandon => distance_sq_bounded(window, q.values(), limit),
                };
                match d2 {
                    Some(d2) => matches.push(SubseqMatch {
                        series: id,
                        offset,
                        distance: d2.sqrt(),
                    }),
                    None => {
                        if mode == ScanMode::EarlyAbandon {
                            stats.abandoned += 1;
                        }
                    }
                }
            }
        }
        Ok((matches, stats))
    }

    /// Ground-truth k-nearest-subsequence by brute force.
    ///
    /// # Errors
    /// [`Error::LengthMismatch`] when the query is not one window long.
    pub fn scan_subseq_knn(&self, q: &TimeSeries, k: usize) -> Result<Vec<SubseqMatch>> {
        self.check_query(q, 0.0)?;
        let w = self.config.window;
        let mut all = Vec::with_capacity(self.windows_total);
        for (id, series) in self.store.iter().enumerate() {
            let values = series.values();
            if values.len() < w {
                continue;
            }
            for offset in 0..=values.len() - w {
                all.push(SubseqMatch {
                    series: id,
                    offset,
                    distance: euclidean_real(&values[offset..offset + w], q.values()),
                });
            }
        }
        sort_matches(&mut all);
        all.truncate(k);
        Ok(all)
    }
}

/// Sliding-DFT feature trail of one series, grouped into MBRs. A free
/// function (not a method) so trail extraction can fan out across worker
/// threads while the index is still being assembled.
///
/// Each MBR is widened by a relative `1e-9` per dimension: sliding-DFT
/// drift scales with the *stored* coefficients' magnitude (the error of
/// each `O(k)` step is rotated, not damped, until the next re-anchor),
/// so the padding absorbing it must scale with the trail's own
/// coordinates — a pad derived from the query's magnitude alone would
/// not cover large-valued data. Same recipe as the anti-rounding pad in
/// [`crate::space::SpaceKind::transform_mbr`].
fn trails_of(config: &SubseqConfig, id: usize, series: &TimeSeries) -> Vec<(Rect, TrailEntry)> {
    let w = config.window;
    let k = config.k;
    let points = sliding_prefix(series.values(), w, k);
    let mut out = Vec::with_capacity(points.len().div_ceil(config.trail));
    for (chunk_idx, chunk) in points.chunks(config.trail).enumerate() {
        let start = chunk_idx * config.trail;
        let mut mbr = Rect::from_point(&coeff_coords(&chunk[0]));
        for p in &chunk[1..] {
            mbr.union_assign(&Rect::from_point(&coeff_coords(p)));
        }
        out.push((
            pad_trail_mbr(&mbr),
            TrailEntry {
                series: id,
                start,
                len: chunk.len(),
            },
        ));
    }
    out
}

/// Trail MBRs of one series from `first_chunk` onward, computed by
/// *resuming* the sliding-DFT recurrence at that chunk's first window
/// instead of recomputing the prefix — the `O(k)`-per-point incremental
/// path behind [`SubseqIndex::extend_series`]. Because the cursor
/// re-anchors on absolute offsets ([`SlidingCursor::resume`] is
/// bit-identical to a from-zero walk) and chunk boundaries are absolute
/// too, the rectangles equal the ones [`trails_of`] emits for the same
/// windows.
fn chunks_of(
    config: &SubseqConfig,
    id: usize,
    values: &[f64],
    first_chunk: usize,
    windows: usize,
) -> Vec<(Rect, TrailEntry)> {
    let trail = config.trail;
    let mut offset = first_chunk * trail;
    if offset >= windows {
        return Vec::new();
    }
    let mut cursor = SlidingCursor::resume(values, config.window, config.k, offset);
    let mut out = Vec::with_capacity((windows - offset).div_ceil(trail));
    while offset < windows {
        let len = trail.min(windows - offset);
        let mut mbr = Rect::from_point(&coeff_coords(cursor.coeffs()));
        for _ in 1..len {
            cursor.advance(values);
            mbr.union_assign(&Rect::from_point(&coeff_coords(cursor.coeffs())));
        }
        out.push((
            pad_trail_mbr(&mbr),
            TrailEntry {
                series: id,
                start: offset,
                len,
            },
        ));
        offset += len;
        if offset < windows {
            cursor.advance(values);
        }
    }
    out
}

/// The anti-drift padding applied to every trail MBR — one shared
/// implementation so the bulk and incremental paths stay bit-identical.
fn pad_trail_mbr(mbr: &Rect) -> Rect {
    let mut lo = mbr.lo().to_vec();
    let mut hi = mbr.hi().to_vec();
    for i in 0..lo.len() {
        let pad = 1e-9 * (1.0 + lo[i].abs().max(hi[i].abs()));
        lo[i] -= pad;
        hi[i] += pad;
    }
    Rect::new(lo, hi)
}

/// Real index coordinates of a coefficient prefix: `[re_0, im_0, re_1, ...]`
/// (the rectangular space — an `eps`-ball maps to a box, and no
/// transformation acts on subsequence queries, so `S_rect` safety concerns
/// do not arise).
fn coeff_coords(coeffs: &[Complex64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * coeffs.len());
    for c in coeffs {
        out.push(c.re);
        out.push(c.im);
    }
    out
}

/// The search box `[c_i - eps - pad, c_i + eps + pad]` around a query
/// feature point. The stored side's sliding-DFT drift is absorbed by the
/// build-time trail padding (see `trails_of`); this query-side pad covers
/// the remaining rounding of the query's own transform and of the `c ± eps`
/// bound arithmetic, so a boundary window can never be lost.
fn query_rect(qcoords: &[f64], eps: f64) -> Rect {
    let mut lo = Vec::with_capacity(qcoords.len());
    let mut hi = Vec::with_capacity(qcoords.len());
    for &c in qcoords {
        let pad = 1e-7 * (1.0 + c.abs());
        lo.push(c - eps - pad);
        hi.push(c + eps + pad);
    }
    Rect::new(lo, hi)
}

fn sort_matches(matches: &mut [SubseqMatch]) {
    matches.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then((a.series, a.offset).cmp(&(b.series, b.offset)))
    });
}

#[inline]
fn distance_sq(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Squared distance with early abandoning: `None` as soon as the partial
/// sum exceeds `limit`. Delegates to the shared blocked kernel
/// ([`tsq_series::distance::distance_sq_within`]), which keeps the same
/// `<=` boundary predicate as the naive scan — and strict left-to-right
/// accumulation — so both paths agree bit-for-bit on threshold ties.
#[inline]
fn distance_sq_bounded(x: &[f64], y: &[f64], limit: f64) -> Option<f64> {
    tsq_series::distance::distance_sq_within(x, y, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_series::generate::RandomWalkGenerator;

    fn relation(seed: u64) -> Vec<TimeSeries> {
        // Varied lengths on purpose.
        let mut g = RandomWalkGenerator::new(seed);
        (0..12).map(|i| g.series(40 + 7 * (i % 5))).collect()
    }

    fn build(window: usize, seed: u64) -> SubseqIndex {
        SubseqIndex::build(SubseqConfig::new(window), relation(seed)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(matches!(
            SubseqConfig::new(1).validate(),
            Err(Error::InvalidWindow { window: 1 })
        ));
        assert!(matches!(
            SubseqConfig::new(0).validate(),
            Err(Error::InvalidWindow { window: 0 })
        ));
        let bad_k = SubseqConfig {
            k: 0,
            ..SubseqConfig::new(8)
        };
        assert!(matches!(bad_k.validate(), Err(Error::InvalidCutoff { .. })));
        let big_k = SubseqConfig {
            k: 9,
            ..SubseqConfig::new(8)
        };
        assert!(matches!(big_k.validate(), Err(Error::InvalidCutoff { .. })));
        let no_trail = SubseqConfig {
            trail: 0,
            ..SubseqConfig::new(8)
        };
        assert!(matches!(no_trail.validate(), Err(Error::Unsupported(_))));
        assert!(SubseqConfig::new(2).validate().is_ok());
    }

    #[test]
    fn build_counts_windows_and_trails() {
        let idx = build(16, 1);
        let expected: usize = relation(1).iter().map(|s| s.len().saturating_sub(15)).sum();
        assert_eq!(idx.windows_total(), expected);
        assert_eq!(idx.tree().len(), idx.trails_total());
        idx.tree().validate();
    }

    #[test]
    fn short_series_contribute_nothing() {
        let mut series = relation(2);
        series.push(TimeSeries::new(vec![1.0; 5])); // shorter than window
        let idx = SubseqIndex::build(SubseqConfig::new(16), series).unwrap();
        let q = idx.series(0).unwrap().values()[..16].to_vec();
        let (matches, _) = idx.subseq_range(&TimeSeries::new(q), 1e-9).unwrap();
        assert!(matches.iter().all(|m| m.series != 12));
    }

    #[test]
    fn range_matches_naive_scan() {
        let idx = build(16, 3);
        let src = idx.series(4).unwrap().clone();
        let q = TimeSeries::new(src.values()[9..25].to_vec());
        for eps in [0.0, 0.5, 2.0, 8.0] {
            let (indexed, _) = idx.subseq_range(&q, eps).unwrap();
            let (scan, _) = idx.scan_subseq_range(&q, eps, ScanMode::Naive).unwrap();
            assert_eq!(indexed, scan, "eps {eps}");
        }
        // The query window itself is always found at distance zero.
        let (hits, _) = idx.subseq_range(&q, 1e-9).unwrap();
        assert!(hits.iter().any(|m| m.series == 4 && m.offset == 9));
    }

    #[test]
    fn scan_modes_agree() {
        let idx = build(16, 4);
        let q = TimeSeries::new(idx.series(0).unwrap().values()[..16].to_vec());
        let (a, _) = idx.scan_subseq_range(&q, 3.0, ScanMode::Naive).unwrap();
        let (b, sb) = idx
            .scan_subseq_range(&q, 3.0, ScanMode::EarlyAbandon)
            .unwrap();
        assert_eq!(a, b);
        assert!(sb.abandoned > 0);
        assert_eq!(sb.windows, idx.windows_total());
    }

    #[test]
    fn index_prunes_candidates() {
        let idx = build(16, 5);
        let q = TimeSeries::new(idx.series(1).unwrap().values()[3..19].to_vec());
        let (_, stats) = idx.subseq_range(&q, 0.5).unwrap();
        assert!(
            stats.candidates < idx.windows_total(),
            "index examined {} of {} windows",
            stats.candidates,
            idx.windows_total()
        );
    }

    #[test]
    fn knn_matches_brute_force() {
        let idx = build(12, 6);
        let q = TimeSeries::new(idx.series(7).unwrap().values()[5..17].to_vec());
        for k in [1usize, 3, 10, 50] {
            let (got, _) = idx.subseq_knn(&q, k).unwrap();
            let want = idx.scan_subseq_knn(&q, k).unwrap();
            assert_eq!(got.len(), want.len(), "k {k}");
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.distance - w.distance).abs() < 1e-9,
                    "k {k}: {} vs {}",
                    g.distance,
                    w.distance
                );
            }
        }
    }

    #[test]
    fn knn_more_neighbors_than_windows() {
        let idx = SubseqIndex::build(
            SubseqConfig::new(8),
            vec![TimeSeries::new((0..12).map(|i| i as f64).collect())],
        )
        .unwrap();
        let q = TimeSeries::new((0..8).map(|i| i as f64).collect());
        let (got, _) = idx.subseq_knn(&q, 100).unwrap();
        assert_eq!(got.len(), idx.windows_total());
        assert_eq!(got[0].offset, 0);
        assert!(got[0].distance < 1e-12);
    }

    #[test]
    fn query_validation() {
        let idx = build(16, 7);
        let q = TimeSeries::new(vec![0.0; 16]);
        assert!(matches!(
            idx.subseq_range(&q, -1.0),
            Err(Error::NegativeThreshold { .. })
        ));
        let short = TimeSeries::new(vec![0.0; 15]);
        assert!(matches!(
            idx.subseq_range(&short, 1.0),
            Err(Error::LengthMismatch {
                expected: 16,
                got: 15
            })
        ));
        assert!(matches!(
            idx.subseq_knn(&short, 3),
            Err(Error::LengthMismatch { .. })
        ));
        assert!(matches!(
            idx.scan_subseq_range(&short, 1.0, ScanMode::Naive),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn insert_uses_batch_path_and_stays_consistent() {
        let mut idx = build(16, 8);
        let extra = RandomWalkGenerator::new(99).series(64);
        let id = idx.insert(extra.clone());
        assert_eq!(id, 12);
        idx.tree().validate();
        assert_eq!(idx.tree().len(), idx.trails_total());
        let q = TimeSeries::new(extra.values()[10..26].to_vec());
        let (matches, _) = idx.subseq_range(&q, 1e-9).unwrap();
        assert!(matches.iter().any(|m| m.series == id && m.offset == 10));
        // Still oracle-exact after the incremental insert.
        let (indexed, _) = idx.subseq_range(&q, 4.0).unwrap();
        let (scan, _) = idx.scan_subseq_range(&q, 4.0, ScanMode::Naive).unwrap();
        assert_eq!(indexed, scan);
    }

    #[test]
    fn extend_series_matches_fresh_rebuild() {
        // The oracle invariant at the trail level: after any append
        // schedule, the tree holds the same (rect, entry) set as a fresh
        // build over the final data — so answers, candidate counts and
        // trail hits agree exactly (node layout, hence nodes_visited, may
        // differ).
        let mut g = RandomWalkGenerator::new(40);
        let mut data: Vec<Vec<f64>> = (0..6).map(|i| g.series(20 + 9 * i).into_values()).collect();
        let mut idx = SubseqIndex::build(
            SubseqConfig::new(16),
            data.iter()
                .map(|v| TimeSeries::new(v.clone()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // Append in uneven slices, crossing chunk boundaries and growing a
        // series from below the window length past it.
        for (round, step) in [3usize, 8, 1, 13, 24].into_iter().enumerate() {
            for (id, series) in data.iter_mut().enumerate() {
                if (id + round) % 2 == 0 {
                    let tail = g.series(step).into_values();
                    idx.extend_series(id, &tail).unwrap();
                    series.extend_from_slice(&tail);
                }
            }
        }
        idx.tree().validate();
        let fresh = SubseqIndex::build(
            SubseqConfig::new(16),
            data.iter()
                .map(|v| TimeSeries::new(v.clone()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(idx.windows_total(), fresh.windows_total());
        assert_eq!(idx.trails_total(), fresh.trails_total());
        // Identical (rect, entry) sets.
        let key = |t: &SubseqIndex| {
            let mut v: Vec<(Vec<u64>, TrailEntry)> = t
                .tree()
                .iter()
                .map(|(r, &e)| {
                    let bits: Vec<u64> = r
                        .lo()
                        .iter()
                        .chain(r.hi().iter())
                        .map(|x| x.to_bits())
                        .collect();
                    (bits, e)
                })
                .collect();
            v.sort_by(|a, b| (&a.0, a.1.series, a.1.start).cmp(&(&b.0, b.1.series, b.1.start)));
            v
        };
        assert_eq!(key(&idx), key(&fresh));
        // Query-level agreement, candidate counters included.
        let q = TimeSeries::new(data[3][data[3].len() - 16..].to_vec());
        for eps in [0.0, 1.0, 6.0] {
            let (a, sa) = idx.subseq_range(&q, eps).unwrap();
            let (b, sb) = fresh.subseq_range(&q, eps).unwrap();
            assert_eq!(a, b, "eps {eps}");
            assert_eq!(sa.trails, sb.trails);
            assert_eq!(sa.candidates, sb.candidates);
            assert_eq!(sa.false_hits, sb.false_hits);
            let (scan, _) = idx.scan_subseq_range(&q, eps, ScanMode::Naive).unwrap();
            assert_eq!(a, scan, "oracle-exact after appends");
        }
        let (ka, _) = idx.subseq_knn(&q, 7).unwrap();
        let (kb, _) = fresh.subseq_knn(&q, 7).unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn extend_series_is_atomic() {
        let mut idx = build(16, 41);
        let before_windows = idx.windows_total();
        let before_series = idx.series(2).unwrap().clone();
        assert!(matches!(
            idx.extend_series(2, &[1.0, f64::NAN]),
            Err(Error::NonFinite { .. })
        ));
        assert!(matches!(
            idx.extend_series(99, &[1.0]),
            Err(Error::UnknownSeries(99))
        ));
        assert_eq!(idx.windows_total(), before_windows);
        assert_eq!(idx.series(2).unwrap(), &before_series);
        idx.tree().validate();
        // Empty appends are no-ops.
        idx.extend_series(2, &[]).unwrap();
        assert_eq!(idx.windows_total(), before_windows);
    }

    #[test]
    fn bulk_and_incremental_builds_agree() {
        let rel = relation(9);
        let bulk = SubseqIndex::build(SubseqConfig::new(16), rel.clone()).unwrap();
        let incr = SubseqIndex::build(
            SubseqConfig {
                bulk_load: false,
                ..SubseqConfig::new(16)
            },
            rel.clone(),
        )
        .unwrap();
        let q = TimeSeries::new(rel[2].values()[7..23].to_vec());
        let a = bulk.subseq_range(&q, 3.0).unwrap().0;
        let b = incr.subseq_range(&q, 3.0).unwrap().0;
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let rel = relation(10);
        let seq = SubseqIndex::build(SubseqConfig::new(16), rel.clone()).unwrap();
        let q = TimeSeries::new(rel[3].values()[11..27].to_vec());
        let (want_range, want_stats) = seq.subseq_range(&q, 3.0).unwrap();
        let want_knn = seq.subseq_knn(&q, 7).unwrap().0;
        for threads in [1usize, 2, 4] {
            let par =
                SubseqIndex::build_parallel(SubseqConfig::new(16), rel.clone(), threads).unwrap();
            par.tree().validate();
            assert_eq!(par.windows_total(), seq.windows_total());
            assert_eq!(par.trails_total(), seq.trails_total());
            assert_eq!(par.tree().height(), seq.tree().height());
            let (got, stats) = par.subseq_range(&q, 3.0).unwrap();
            assert_eq!(got, want_range, "threads = {threads}");
            // Identical trees ⇒ identical traversal effort, not just answers.
            assert_eq!(stats.index, want_stats.index, "threads = {threads}");
            assert_eq!(par.subseq_knn(&q, 7).unwrap().0, want_knn);
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_answers_and_stats() {
        let idx = build(16, 11);
        let mut enc = Encoder::new();
        idx.write_to(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = SubseqIndex::read_from(&mut dec).unwrap();
        dec.finish().unwrap();
        restored.tree().validate();
        assert_eq!(restored.windows_total(), idx.windows_total());
        assert_eq!(restored.trails_total(), idx.trails_total());
        // Canonical bytes on re-serialization.
        let mut enc2 = Encoder::new();
        restored.write_to(&mut enc2);
        assert_eq!(bytes, enc2.into_bytes());
        let q = TimeSeries::new(idx.series(3).unwrap().values()[4..20].to_vec());
        for eps in [0.0, 1.0, 5.0] {
            let (a, sa) = idx.subseq_range(&q, eps).unwrap();
            let (b, sb) = restored.subseq_range(&q, eps).unwrap();
            assert_eq!(a, b, "eps {eps}");
            assert_eq!(sa.index, sb.index, "eps {eps}: identical traversal");
            assert_eq!(sa.candidates, sb.candidates);
        }
        let (ka, _) = idx.subseq_knn(&q, 9).unwrap();
        let (kb, _) = restored.subseq_knn(&q, 9).unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn trails_only_round_trip_with_shared_store() {
        let idx = build(16, 14);
        let store: Vec<TimeSeries> = (0..idx.len())
            .map(|i| idx.series(i).unwrap().clone())
            .collect();
        let mut enc = Encoder::new();
        idx.write_trails_to(&mut enc);
        let full_len = {
            let mut full = Encoder::new();
            idx.write_to(&mut full);
            full.len()
        };
        assert!(enc.len() < full_len, "trails-only form must be smaller");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let restored = SubseqIndex::read_trails_from(&mut dec, store).unwrap();
        dec.finish().unwrap();
        let q = TimeSeries::new(idx.series(2).unwrap().values()[3..19].to_vec());
        let (a, sa) = idx.subseq_range(&q, 2.0).unwrap();
        let (b, sb) = restored.subseq_range(&q, 2.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa.index, sb.index);
        // A store that does not match the trails is rejected.
        let mut dec = Decoder::new(&bytes);
        let err = SubseqIndex::read_trails_from(&mut dec, Vec::new()).unwrap_err();
        assert!(
            matches!(err, Error::Store(StoreError::Corrupt { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn empty_subseq_index_round_trips() {
        let idx = SubseqIndex::build(SubseqConfig::new(8), Vec::new()).unwrap();
        let mut enc = Encoder::new();
        idx.write_to(&mut enc);
        let bytes = enc.into_bytes();
        let restored = SubseqIndex::read_from(&mut Decoder::new(&bytes)).unwrap();
        assert!(restored.is_empty());
        let q = TimeSeries::new(vec![0.0; 8]);
        assert!(restored.subseq_range(&q, 1.0).unwrap().0.is_empty());
    }

    #[test]
    fn restored_subseq_index_accepts_inserts() {
        let idx = build(16, 12);
        let mut enc = Encoder::new();
        idx.write_to(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = SubseqIndex::read_from(&mut Decoder::new(&bytes)).unwrap();
        let extra = RandomWalkGenerator::new(7).series(48);
        let id = restored.insert(extra.clone());
        assert_eq!(id, 12);
        restored.tree().validate();
        let q = TimeSeries::new(extra.values()[8..24].to_vec());
        let (m, _) = restored.subseq_range(&q, 1e-9).unwrap();
        assert!(m.iter().any(|x| x.series == id && x.offset == 8));
    }

    #[test]
    fn corrupt_subseq_bytes_are_typed_errors() {
        let idx = build(16, 13);
        let mut enc = Encoder::new();
        idx.write_to(&mut enc);
        let bytes = enc.into_bytes();
        for cut in (0..bytes.len()).step_by(5) {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(
                SubseqIndex::read_from(&mut dec).is_err(),
                "cut at {cut} still decoded"
            );
        }
        // Tampered windows_total (does not match the stored series).
        let mut enc = Encoder::new();
        idx.write_to(&mut enc);
        let mut bad = enc.into_bytes();
        // Locate the counter: config (8+8+8 + 12 + 1 = 37 bytes), then the
        // store block; recompute its size to find the counter offset.
        let mut store_bytes = 0usize;
        for i in 0..idx.len() {
            store_bytes += 8 + 8 * idx.series(i).unwrap().len();
        }
        let off = 37 + 8 + store_bytes;
        let old = u64::from_le_bytes(bad[off..off + 8].try_into().unwrap());
        assert_eq!(
            old as usize,
            idx.windows_total(),
            "offset arithmetic drifted"
        );
        bad[off..off + 8].copy_from_slice(&(old + 1).to_le_bytes());
        let err = SubseqIndex::read_from(&mut Decoder::new(&bad)).unwrap_err();
        assert!(
            matches!(err, Error::Store(StoreError::Corrupt { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn empty_index_answers_trivially() {
        let idx = SubseqIndex::build(SubseqConfig::new(8), Vec::new()).unwrap();
        let q = TimeSeries::new(vec![0.0; 8]);
        assert!(idx.subseq_range(&q, 10.0).unwrap().0.is_empty());
        assert!(idx.subseq_knn(&q, 5).unwrap().0.is_empty());
    }
}
