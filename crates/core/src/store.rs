//! Snapshot encoding of the engine's value types.
//!
//! The byte-level primitives (framing, checksums, allocation-guarded
//! reads) live in `tsq-store`; this module contributes the encodings of
//! `tsq-core`'s own vocabulary — [`TimeSeries`], [`Features`],
//! [`FeatureSchema`], [`SpaceKind`], [`IndexConfig`] and
//! [`SubseqConfig`] — shared by [`crate::SimilarityIndex::write_to`],
//! [`crate::SubseqIndex::write_to`] and the catalog snapshots in
//! `tsq-lang`. Every reader validates what it decodes (finite samples,
//! in-range enum tags, coherent configurations) and reports violations as
//! typed [`StoreError`]s, so corrupt bytes that survive the frame
//! checksum still cannot panic the engine.

use tsq_dft::Complex64;
use tsq_rtree::RTreeConfig;
use tsq_series::TimeSeries;
use tsq_store::{Decoder, Encoder, StoreError, StoreResult};

use crate::features::{FeatureSchema, Features};
use crate::index::IndexConfig;
use crate::plan::{RelationStats, SpaceProfile};
use crate::space::SpaceKind;
use crate::subseq::SubseqConfig;
use tsq_rtree::LevelStats;

/// Writes a series as a length-prefixed run of `f64` bit patterns.
pub fn write_series(enc: &mut Encoder, series: &TimeSeries) {
    enc.usize(series.len());
    enc.f64_slice(series.values());
}

/// Reads a series, rejecting non-finite samples.
///
/// # Errors
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`].
pub fn read_series(dec: &mut Decoder<'_>) -> StoreResult<TimeSeries> {
    let len = dec.seq(8, "series length")?;
    let values = dec.f64_vec(len, "series values")?;
    TimeSeries::try_new(values).map_err(|e| {
        StoreError::corrupt(format!("series sample {} at position {}", e.value, e.index))
    })
}

/// Writes extracted features (mean, std, full spectrum).
pub fn write_features(enc: &mut Encoder, features: &Features) {
    enc.f64(features.mean);
    enc.f64(features.std);
    enc.usize(features.spectrum.len());
    for c in &features.spectrum {
        enc.f64(c.re);
        enc.f64(c.im);
    }
}

/// Reads extracted features, rejecting non-finite components.
///
/// # Errors
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`].
pub fn read_features(dec: &mut Decoder<'_>) -> StoreResult<Features> {
    let mean = dec.f64_finite("feature mean")?;
    let std = dec.f64_finite("feature std")?;
    let n = dec.seq(16, "spectrum length")?;
    // Hot path (one call per stored series): decode the interleaved
    // re/im pairs straight into complex values — no intermediate buffer —
    // then validate with a plain loop.
    let bytes = dec.bytes(n * 16, "spectrum coefficients")?;
    let spectrum: Vec<Complex64> = bytes
        .chunks_exact(16)
        .map(|pair| Complex64 {
            re: f64::from_le_bytes(pair[..8].try_into().expect("8 bytes")),
            im: f64::from_le_bytes(pair[8..].try_into().expect("8 bytes")),
        })
        .collect();
    for (i, c) in spectrum.iter().enumerate() {
        if !c.re.is_finite() || !c.im.is_finite() {
            return Err(StoreError::corrupt(format!(
                "non-finite spectrum coefficient {i}: ({}, {})",
                c.re, c.im
            )));
        }
    }
    Ok(Features {
        mean,
        std,
        spectrum,
    })
}

/// Writes a feature schema as a tag byte plus its cut-off.
pub fn write_schema(enc: &mut Encoder, schema: FeatureSchema) {
    match schema {
        FeatureSchema::NormalForm { k } => {
            enc.u8(0);
            enc.usize(k);
        }
        FeatureSchema::Raw { k } => {
            enc.u8(1);
            enc.usize(k);
        }
    }
}

/// Reads a feature schema.
///
/// # Errors
/// [`StoreError::Corrupt`] on an unknown tag.
pub fn read_schema(dec: &mut Decoder<'_>) -> StoreResult<FeatureSchema> {
    let tag = dec.u8("feature schema tag")?;
    let k = dec.usize("feature schema k")?;
    match tag {
        0 => Ok(FeatureSchema::NormalForm { k }),
        1 => Ok(FeatureSchema::Raw { k }),
        other => Err(StoreError::corrupt(format!("feature schema tag {other}"))),
    }
}

/// Writes a coordinate-space kind as a tag byte.
pub fn write_space(enc: &mut Encoder, space: SpaceKind) {
    enc.u8(match space {
        SpaceKind::Rectangular => 0,
        SpaceKind::Polar => 1,
    });
}

/// Reads a coordinate-space kind.
///
/// # Errors
/// [`StoreError::Corrupt`] on an unknown tag.
pub fn read_space(dec: &mut Decoder<'_>) -> StoreResult<SpaceKind> {
    match dec.u8("coordinate space tag")? {
        0 => Ok(SpaceKind::Rectangular),
        1 => Ok(SpaceKind::Polar),
        other => Err(StoreError::corrupt(format!("coordinate space tag {other}"))),
    }
}

/// Writes R\*-tree tuning parameters (delegates to the single codec in
/// [`tsq_rtree::persist`], which tree snapshots use too).
pub fn write_rtree_config(enc: &mut Encoder, cfg: &RTreeConfig) {
    tsq_rtree::persist::write_config(enc, cfg);
}

/// Reads R\*-tree tuning parameters (the [`tsq_rtree::persist`] codec:
/// `RTreeConfig::validate`'s bounds enforced as typed errors).
///
/// # Errors
/// [`StoreError::Corrupt`] on out-of-range parameters.
pub fn read_rtree_config(dec: &mut Decoder<'_>) -> StoreResult<RTreeConfig> {
    tsq_rtree::persist::read_config(dec)
}

/// Writes a whole-match index configuration.
pub fn write_index_config(enc: &mut Encoder, cfg: &IndexConfig) {
    write_schema(enc, cfg.schema);
    write_space(enc, cfg.space);
    write_rtree_config(enc, &cfg.rtree);
    enc.bool(cfg.bulk_load);
}

/// Reads a whole-match index configuration.
///
/// # Errors
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`].
pub fn read_index_config(dec: &mut Decoder<'_>) -> StoreResult<IndexConfig> {
    Ok(IndexConfig {
        schema: read_schema(dec)?,
        space: read_space(dec)?,
        rtree: read_rtree_config(dec)?,
        bulk_load: dec.bool("index bulk_load")?,
    })
}

/// Writes an ST-index configuration.
pub fn write_subseq_config(enc: &mut Encoder, cfg: &SubseqConfig) {
    enc.usize(cfg.window);
    enc.usize(cfg.k);
    enc.usize(cfg.trail);
    write_rtree_config(enc, &cfg.rtree);
    enc.bool(cfg.bulk_load);
}

/// Reads an ST-index configuration, enforcing `SubseqConfig::validate`'s
/// bounds as typed store errors.
///
/// # Errors
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`].
pub fn read_subseq_config(dec: &mut Decoder<'_>) -> StoreResult<SubseqConfig> {
    let cfg = SubseqConfig {
        window: dec.usize("subseq window")?,
        k: dec.usize("subseq k")?,
        trail: dec.usize("subseq trail")?,
        rtree: read_rtree_config(dec)?,
        bulk_load: dec.bool("subseq bulk_load")?,
    };
    cfg.validate()
        .map_err(|e| StoreError::corrupt(format!("subseq configuration: {e}")))?;
    Ok(cfg)
}

/// Writes the planner statistics of one relation (see
/// [`crate::plan::RelationStats`]): cardinality, series length, and the
/// whole-match tree's per-level profile. Persisted with every catalog
/// snapshot so a restored catalog plans byte-for-byte identically.
pub fn write_relation_stats(enc: &mut Encoder, stats: &RelationStats) {
    enc.usize(stats.cardinality);
    enc.usize(stats.series_len);
    enc.usize(stats.dims);
    enc.u64(stats.profile.population);
    enc.usize(stats.profile.bounds_lo.len());
    enc.f64_slice(&stats.profile.bounds_lo);
    enc.f64_slice(&stats.profile.bounds_hi);
    enc.usize(stats.profile.levels.len());
    for level in &stats.profile.levels {
        enc.u32(level.level);
        enc.u64(level.nodes);
        enc.u64(level.entries);
        enc.usize(level.avg_extent.len());
        enc.f64_slice(&level.avg_extent);
    }
}

/// Reads planner statistics, rejecting non-finite values and incoherent
/// shapes.
///
/// # Errors
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`].
pub fn read_relation_stats(dec: &mut Decoder<'_>) -> StoreResult<RelationStats> {
    let cardinality = dec.usize("stats cardinality")?;
    let series_len = dec.usize("stats series_len")?;
    let dims = dec.usize("stats dims")?;
    let population = dec.u64("stats population")?;
    let bdims = dec.seq(16, "stats bounds dims")?;
    let bounds_lo = finite_vec(dec, bdims, "stats bounds_lo")?;
    let bounds_hi = finite_vec(dec, bdims, "stats bounds_hi")?;
    let level_count = dec.seq(28, "stats level count")?;
    let mut levels = Vec::with_capacity(level_count);
    for i in 0..level_count {
        let level = dec.u32("stats level index")?;
        if level as usize != i {
            return Err(StoreError::corrupt(format!(
                "stats level {level} stored at position {i}"
            )));
        }
        let nodes = dec.u64("stats level nodes")?;
        let entries = dec.u64("stats level entries")?;
        let edims = dec.seq(8, "stats extent dims")?;
        let avg_extent = finite_vec(dec, edims, "stats avg_extent")?;
        levels.push(LevelStats {
            level,
            nodes,
            entries,
            avg_extent,
        });
    }
    Ok(RelationStats {
        cardinality,
        series_len,
        dims,
        profile: SpaceProfile {
            population,
            bounds_lo,
            bounds_hi,
            levels,
        },
    })
}

fn finite_vec(dec: &mut Decoder<'_>, n: usize, what: &str) -> StoreResult<Vec<f64>> {
    let vs = dec.f64_vec(n, what)?;
    for (i, v) in vs.iter().enumerate() {
        if !v.is_finite() {
            return Err(StoreError::corrupt(format!("non-finite {what}[{i}]: {v}")));
        }
    }
    Ok(vs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_round_trip_bit_exact() {
        let s = TimeSeries::new(vec![1.5, -0.0, 1e-308, 42.0]);
        let mut enc = Encoder::new();
        write_series(&mut enc, &s);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let r = read_series(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(s.len(), r.len());
        for (a, b) in s.values().iter().zip(r.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn non_finite_series_sample_is_corrupt() {
        let mut enc = Encoder::new();
        enc.usize(1);
        enc.f64(f64::INFINITY);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            read_series(&mut dec),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn features_round_trip() {
        let f = Features {
            mean: 3.25,
            std: 0.5,
            spectrum: vec![
                Complex64 { re: 1.0, im: -2.0 },
                Complex64 { re: 0.0, im: 0.25 },
            ],
        };
        let mut enc = Encoder::new();
        write_features(&mut enc, &f);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(read_features(&mut dec).unwrap(), f);
        dec.finish().unwrap();
    }

    #[test]
    fn schema_space_and_configs_round_trip() {
        for schema in [
            FeatureSchema::NormalForm { k: 2 },
            FeatureSchema::Raw { k: 5 },
        ] {
            let mut enc = Encoder::new();
            write_schema(&mut enc, schema);
            let bytes = enc.into_bytes();
            assert_eq!(read_schema(&mut Decoder::new(&bytes)).unwrap(), schema);
        }
        for space in [SpaceKind::Rectangular, SpaceKind::Polar] {
            let mut enc = Encoder::new();
            write_space(&mut enc, space);
            let bytes = enc.into_bytes();
            assert_eq!(read_space(&mut Decoder::new(&bytes)).unwrap(), space);
        }
        let icfg = IndexConfig::default();
        let mut enc = Encoder::new();
        write_index_config(&mut enc, &icfg);
        let bytes = enc.into_bytes();
        let got = read_index_config(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(got.schema, icfg.schema);
        assert_eq!(got.space, icfg.space);
        assert_eq!(got.rtree, icfg.rtree);
        assert_eq!(got.bulk_load, icfg.bulk_load);
        let scfg = SubseqConfig::new(24);
        let mut enc = Encoder::new();
        write_subseq_config(&mut enc, &scfg);
        let bytes = enc.into_bytes();
        let got = read_subseq_config(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(got.window, 24);
        assert_eq!(got.k, scfg.k);
        assert_eq!(got.trail, scfg.trail);
    }

    #[test]
    fn relation_stats_round_trip_bit_exact() {
        let rel = tsq_series::generate::RandomWalkGenerator::new(99).relation(64, 32);
        let idx = crate::SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
        let stats = RelationStats::from_index(&idx);
        let mut enc = Encoder::new();
        write_relation_stats(&mut enc, &stats);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let got = read_relation_stats(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(got, stats);
        // Re-serialization is byte-identical (canonical encoding).
        let mut enc2 = Encoder::new();
        write_relation_stats(&mut enc2, &got);
        assert_eq!(bytes, enc2.into_bytes());
        // Truncations are typed errors, never panics.
        for cut in (0..bytes.len()).step_by(9) {
            assert!(read_relation_stats(&mut Decoder::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn bad_tags_and_configs_are_corrupt() {
        let mut dec = Decoder::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            read_schema(&mut dec),
            Err(StoreError::Corrupt { .. })
        ));
        let mut dec = Decoder::new(&[7]);
        assert!(matches!(
            read_space(&mut dec),
            Err(StoreError::Corrupt { .. })
        ));
        // min_entries above max/2.
        let mut enc = Encoder::new();
        enc.u32(8);
        enc.u32(5);
        enc.u32(2);
        let bytes = enc.into_bytes();
        assert!(matches!(
            read_rtree_config(&mut Decoder::new(&bytes)),
            Err(StoreError::Corrupt { .. })
        ));
        // Window of 1 violates SubseqConfig::validate.
        let mut enc = Encoder::new();
        let bad = SubseqConfig {
            window: 1,
            ..SubseqConfig::default()
        };
        write_subseq_config(&mut enc, &bad);
        let bytes = enc.into_bytes();
        assert!(matches!(
            read_subseq_config(&mut Decoder::new(&bytes)),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
