//! Concurrent batched query execution.
//!
//! The paper argues the DFT index must beat even a *good* sequential scan
//! (Section 5); at system scale the analogous bar is query *throughput*
//! under concurrency, not single-query latency — the lesson of the
//! Lernaean-Hydra evaluation of similarity-search systems. This module is
//! the std-only worker-pool layer that turns the per-query engine into a
//! batched one:
//!
//! - [`parallel_map`] — the shared order-preserving fan-out primitive,
//!   running on the persistent work-stealing [`Pool`] (no rayon in the
//!   build image; no per-call thread spawning either). Query costs vary
//!   wildly between a selective range probe and a whole-relation KNN, so
//!   indices are claimed one at a time rather than pre-chunked. Nested
//!   fan-outs (a sharded query inside a batch) run inline on the owning
//!   worker.
//! - [`QueryExecutor`] — runs a batch of whole-sequence queries
//!   ([`BatchQuery`]) against one [`SimilarityIndex`], or subsequence
//!   queries ([`SubseqBatchQuery`]) against one [`SubseqIndex`], fanning
//!   queries over the pool and aggregating per-batch [`BatchStats`].
//! - [`SimilarityIndex::range_query_parallel`] (in [`crate::index`])
//!   parallelizes *within* one query: the R\*-tree filter step fans out per
//!   root subtree, the exact refine step per candidate.
//!
//! Every parallel path is deterministic: results are byte-identical to the
//! sequential oracle regardless of thread count, which the concurrency
//! test suite asserts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsq_series::TimeSeries;

use crate::error::Result;
use crate::index::{Match, QueryStats, SimilarityIndex};
use crate::space::QueryWindow;
use crate::subseq::{SubseqIndex, SubseqMatch, SubseqStats};
use crate::transform::LinearTransform;

/// The shared order-preserving fan-out primitive, re-exported from the
/// lowest crate that needs it (`tsq-rtree` uses it for parallel bulk
/// loading; one implementation serves the whole workspace). It fans out
/// over [`Pool::global`], the persistent work-stealing executor.
pub use tsq_rtree::par::parallel_map;

/// The persistent work-stealing executor behind [`parallel_map`],
/// re-exported so callers can size batches off [`Pool::workers`], sample
/// [`Pool::stats`], or (in tests) drive a dedicated pool of a controlled
/// width.
pub use tsq_pool::{Pool, PoolStats};

/// Samples the global pool's cumulative scheduler counters (tasks run,
/// steals) — the pair `/metrics` and [`BatchStats`] surface. These are
/// deliberately *not* part of `ExecStats`: query counters stay
/// byte-identical between sequential and parallel execution, while
/// scheduler counters inherently depend on timing.
pub fn pool_stats() -> PoolStats {
    Pool::global().stats()
}

/// Number of workers to use when the caller does not care: the machine's
/// available parallelism (1 if it cannot be determined), queried once
/// and cached by the pool — repeated batch statements no longer re-query
/// `available_parallelism`.
pub fn default_threads() -> usize {
    tsq_pool::default_workers()
}

/// Most OS threads any single fan-out may request, as a multiple of the
/// machine's available parallelism. Past this point extra threads only
/// add scheduler pressure and per-thread stacks — a request like
/// `.batch file 1000000` used to take this literally and spawn a million
/// OS threads.
pub const MAX_THREAD_MULTIPLIER: usize = 4;

/// Clamps a requested worker count to `[1, MAX_THREAD_MULTIPLIER ×
/// available_parallelism]`. `0` means "let the machine decide" and maps
/// to [`default_threads`]. Every thread-count knob in the workspace
/// (batch execution, the query service, the shell's `.batch`) funnels
/// through here, so no user-supplied number can translate into unbounded
/// OS-thread creation.
pub fn clamp_threads(requested: usize) -> usize {
    let cap = default_threads()
        .saturating_mul(MAX_THREAD_MULTIPLIER)
        .max(1);
    match requested {
        0 => default_threads(),
        n => n.min(cap),
    }
}

/// A cooperative cancellation flag shared between a controller and any
/// number of workers — the executor-level hook the query service uses for
/// graceful shutdown (stop admitting work, drain what is in flight).
///
/// Cancellation is one-way and idempotent: once [`CancelToken::cancel`]
/// is called every clone observes [`CancelToken::is_cancelled`] `== true`
/// forever. Workers are expected to poll between units of work; nothing
/// is interrupted mid-computation, which is what keeps every parallel
/// path byte-identical to its sequential oracle.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Signals cancellation to every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One whole-sequence query of a batch, against a [`SimilarityIndex`].
#[derive(Debug, Clone)]
pub enum BatchQuery {
    /// `D(T(o), q) <= eps` range query (Algorithm 2).
    Range {
        /// Query series.
        q: TimeSeries,
        /// Distance threshold.
        eps: f64,
        /// Transformation applied to the data side.
        transform: LinearTransform,
        /// Optional mean/std windows.
        window: QueryWindow,
    },
    /// `k` nearest stored series under a transformation.
    Knn {
        /// Query series.
        q: TimeSeries,
        /// Number of neighbors.
        k: usize,
        /// Transformation applied to the data side.
        transform: LinearTransform,
    },
}

/// One subsequence query of a batch, against a [`SubseqIndex`].
#[derive(Debug, Clone)]
pub enum SubseqBatchQuery {
    /// Every window within `eps` of the query.
    Range {
        /// Query series (exactly one window long).
        q: TimeSeries,
        /// Distance threshold.
        eps: f64,
    },
    /// The `k` nearest windows over all series and offsets.
    Knn {
        /// Query series (exactly one window long).
        q: TimeSeries,
        /// Number of neighbors.
        k: usize,
    },
}

/// Per-query outcome of a whole-sequence batch.
pub type BatchResult = Result<(Vec<Match>, QueryStats)>;

/// Per-query outcome of a subsequence batch.
pub type SubseqBatchResult = Result<(Vec<SubseqMatch>, SubseqStats)>;

/// Aggregate counters for one executed batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries that returned an error.
    pub errors: usize,
    /// Summed simulated disk accesses across successful queries.
    pub nodes_visited: u64,
    /// Summed index-level candidates across successful queries.
    pub candidates: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Worker threads the batch ran on.
    pub threads: usize,
    /// Pool tasks executed while this batch ran (process-wide delta of
    /// [`pool_stats`]; concurrent batches' tasks are included).
    pub pool_tasks: u64,
    /// Pool deque steals while this batch ran (same process-wide delta).
    pub pool_steals: u64,
}

impl BatchStats {
    /// Batch throughput in queries per second (0 when nothing ran).
    pub fn queries_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }
}

/// A fixed-size worker pool for batched query execution.
///
/// The executor holds no state beyond its thread count — indexes are
/// passed per batch — so one executor can serve many relations, and
/// cloning it is free.
#[derive(Debug, Clone, Copy)]
pub struct QueryExecutor {
    threads: usize,
}

impl Default for QueryExecutor {
    fn default() -> Self {
        QueryExecutor::new(default_threads())
    }
}

impl QueryExecutor {
    /// An executor fanning batches over `threads` workers, clamped to
    /// `[1, MAX_THREAD_MULTIPLIER × available_parallelism]` by
    /// [`clamp_threads`] (`0` means the machine's parallelism) — an
    /// absurd request degrades to the cap instead of an OS-thread bomb.
    /// [`QueryExecutor::threads`] reports the count actually used.
    pub fn new(threads: usize) -> Self {
        QueryExecutor {
            threads: clamp_threads(threads),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes a batch of whole-sequence queries against `index`,
    /// fanning queries over the pool.
    ///
    /// Per-query failures (bad threshold, unsafe transformation, length
    /// mismatch) come back as `Err` in that query's slot — one bad query
    /// never poisons the batch. Results are in batch order and identical
    /// to running each query sequentially.
    pub fn run_batch(
        &self,
        index: &SimilarityIndex,
        batch: Vec<BatchQuery>,
    ) -> (Vec<BatchResult>, BatchStats) {
        let started = Instant::now();
        let before = pool_stats();
        let queries = batch.len();
        let results = parallel_map(self.threads, batch, |query| match query {
            BatchQuery::Range {
                q,
                eps,
                transform,
                window,
            } => index.range_query(&q, eps, &transform, &window),
            BatchQuery::Knn { q, k, transform } => index.knn_query(&q, k, &transform),
        });
        let stats = self.batch_stats(queries, started, before, results.iter(), |r| {
            (r.index.nodes_visited, r.candidates)
        });
        (results, stats)
    }

    /// Executes a batch of subsequence queries against `index`.
    ///
    /// Same contract as [`QueryExecutor::run_batch`]: batch order,
    /// per-query errors, sequential-identical results.
    pub fn run_subseq_batch(
        &self,
        index: &SubseqIndex,
        batch: Vec<SubseqBatchQuery>,
    ) -> (Vec<SubseqBatchResult>, BatchStats) {
        let started = Instant::now();
        let before = pool_stats();
        let queries = batch.len();
        let results = parallel_map(self.threads, batch, |query| match query {
            SubseqBatchQuery::Range { q, eps } => index.subseq_range(&q, eps),
            SubseqBatchQuery::Knn { q, k } => index.subseq_knn(&q, k),
        });
        let stats = self.batch_stats(queries, started, before, results.iter(), |r| {
            (r.index.nodes_visited, r.candidates)
        });
        (results, stats)
    }

    fn batch_stats<'a, M: 'a, S: 'a>(
        &self,
        queries: usize,
        started: Instant,
        before: PoolStats,
        results: impl Iterator<Item = &'a Result<(M, S)>>,
        counters: impl Fn(&S) -> (u64, usize),
    ) -> BatchStats {
        let mut stats = BatchStats {
            queries,
            threads: self.threads,
            ..BatchStats::default()
        };
        for r in results {
            match r {
                Ok((_, s)) => {
                    let (nodes, candidates) = counters(s);
                    stats.nodes_visited += nodes;
                    stats.candidates += candidates;
                }
                Err(_) => stats.errors += 1,
            }
        }
        stats.elapsed = started.elapsed();
        let after = pool_stats();
        stats.pool_tasks = after.tasks.saturating_sub(before.tasks);
        stats.pool_steals = after.steals.saturating_sub(before.steals);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::subseq::SubseqConfig;
    use tsq_series::generate::RandomWalkGenerator;

    #[test]
    fn parallel_map_preserves_order_and_balances() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|i| i * i).collect();
        for threads in [1usize, 2, 5, 32] {
            assert_eq!(
                parallel_map(threads, items.clone(), |i| i * i),
                want,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_oracle() {
        let rel = RandomWalkGenerator::new(41).relation(120, 32);
        let index = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let t = LinearTransform::moving_average(32, 4);
        let mut batch = Vec::new();
        for (qid, series) in rel.iter().enumerate().take(24) {
            if qid % 2 == 0 {
                batch.push(BatchQuery::Range {
                    q: series.clone(),
                    eps: 1.5,
                    transform: t.clone(),
                    window: QueryWindow::default(),
                });
            } else {
                batch.push(BatchQuery::Knn {
                    q: series.clone(),
                    k: 5,
                    transform: LinearTransform::identity(32),
                });
            }
        }
        // Sequential oracle.
        let want: Vec<_> = batch
            .iter()
            .map(|q| match q {
                BatchQuery::Range {
                    q,
                    eps,
                    transform,
                    window,
                } => index.range_query(q, *eps, transform, window).unwrap().0,
                BatchQuery::Knn { q, k, transform } => index.knn_query(q, *k, transform).unwrap().0,
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let (results, stats) = QueryExecutor::new(threads).run_batch(&index, batch.clone());
            assert_eq!(stats.queries, 24);
            assert_eq!(stats.errors, 0);
            assert!(stats.nodes_visited > 0);
            let got: Vec<_> = results.into_iter().map(|r| r.unwrap().0).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn bad_queries_error_without_poisoning_the_batch() {
        let rel = RandomWalkGenerator::new(42).relation(30, 32);
        let index = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let id = LinearTransform::identity(32);
        let batch = vec![
            BatchQuery::Range {
                q: rel[0].clone(),
                eps: f64::NAN, // rejected: non-finite threshold
                transform: id.clone(),
                window: QueryWindow::default(),
            },
            BatchQuery::Range {
                q: rel[1].clone(),
                eps: 2.0,
                transform: id.clone(),
                window: QueryWindow::default(),
            },
            BatchQuery::Knn {
                q: TimeSeries::new(vec![0.0; 7]), // wrong length
                k: 3,
                transform: id.clone(),
            },
        ];
        let (results, stats) = QueryExecutor::new(2).run_batch(&index, batch);
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.errors, 2);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert!(results[2].is_err());
    }

    #[test]
    fn subseq_batch_matches_sequential_oracle() {
        let mut g = RandomWalkGenerator::new(43);
        let rel: Vec<TimeSeries> = (0..10).map(|_| g.series(80)).collect();
        let index = SubseqIndex::build(SubseqConfig::new(16), rel.clone()).unwrap();
        let batch: Vec<SubseqBatchQuery> = (0..8)
            .map(|i| {
                let q = TimeSeries::new(rel[i].values()[i..i + 16].to_vec());
                if i % 2 == 0 {
                    SubseqBatchQuery::Range { q, eps: 2.0 }
                } else {
                    SubseqBatchQuery::Knn { q, k: 4 }
                }
            })
            .collect();
        let want: Vec<_> = batch
            .iter()
            .map(|q| match q {
                SubseqBatchQuery::Range { q, eps } => index.subseq_range(q, *eps).unwrap().0,
                SubseqBatchQuery::Knn { q, k } => index.subseq_knn(q, *k).unwrap().0,
            })
            .collect();
        for threads in [1usize, 3] {
            let (results, stats) =
                QueryExecutor::new(threads).run_subseq_batch(&index, batch.clone());
            assert_eq!(stats.errors, 0);
            let got: Vec<_> = results.into_iter().map(|r| r.unwrap().0).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn thread_counts_are_clamped() {
        let cap = default_threads() * MAX_THREAD_MULTIPLIER;
        // Zero delegates to the machine.
        assert_eq!(clamp_threads(0), default_threads());
        // Sane requests pass through.
        assert_eq!(clamp_threads(1), 1);
        assert_eq!(clamp_threads(cap), cap);
        // Absurd requests hit the cap instead of spawning a million
        // OS threads.
        assert_eq!(clamp_threads(1_000_000), cap);
        assert_eq!(clamp_threads(usize::MAX), cap);
        // The executor reports the clamped count.
        assert_eq!(QueryExecutor::new(1_000_000).threads(), cap);
        assert_eq!(QueryExecutor::new(0).threads(), default_threads());
        // Clamped executors still answer correctly.
        let rel = RandomWalkGenerator::new(7).relation(10, 32);
        let index = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let batch = vec![BatchQuery::Knn {
            q: rel[0].clone(),
            k: 3,
            transform: LinearTransform::identity(32),
        }];
        let (results, stats) = QueryExecutor::new(usize::MAX).run_batch(&index, batch);
        assert_eq!(stats.threads, cap);
        assert_eq!(results[0].as_ref().unwrap().0.len(), 3);
    }

    #[test]
    fn cancel_token_propagates_to_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        std::thread::scope(|scope| {
            scope.spawn(move || clone.cancel());
        });
        assert!(token.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn empty_batch() {
        let index = SimilarityIndex::build(IndexConfig::default(), Vec::new()).unwrap();
        let (results, stats) = QueryExecutor::default().run_batch(&index, Vec::new());
        assert!(results.is_empty());
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.queries_per_second(), 0.0);
    }
}
