//! # tsq-core — Similarity-Based Queries for Time Series Data
//!
//! A faithful Rust implementation of **Rafiei & Mendelzon, "Similarity-
//! Based Queries for Time Series Data", SIGMOD 1997**: linear
//! transformations on Fourier-series representations as a similarity
//! language, processed efficiently over an R\*-tree index that is
//! transformed *on the fly* during traversal.
//!
//! ## The pipeline
//!
//! 1. Every series is reduced to a feature point ([`features`]): its mean
//!    and standard deviation plus the first `k` DFT coefficients of its
//!    normal form (the paper's Section-5 layout; a raw AFS93 schema is also
//!    available).
//! 2. Feature points live in a coordinate space ([`space`]): rectangular
//!    (`S_rect`, re/im) or polar (`S_pol`, magnitude/angle). Safety of a
//!    transformation — rectangles map to rectangles, insides stay inside
//!    (Definition 1) — depends on the space: Theorems 1–3 are enforced by
//!    [`space::SpaceKind::check_safety`].
//! 3. Queries carry a [`transform::LinearTransform`] `T = (a, b)`:
//!    moving averages, reversal, shifts/scales (negative allowed), time
//!    warps. The R\*-tree is never rebuilt: every node MBR is mapped through
//!    `T` during the search (Algorithms 1–2, [`index::SimilarityIndex`]),
//!    and candidates are verified against full records. Lemma 1 guarantees
//!    the index level never dismisses a true answer.
//! 4. Range, nearest-neighbor and all-pairs queries ([`queries`]) all
//!    support transformations; sequential-scan baselines ([`scan`]) and the
//!    cost-bounded Equation-10 dissimilarity ([`cost`]) complete the
//!    paper's toolbox.
//!
//! ## Subsequence queries
//!
//! The [`subseq`] module extends the same feature-space machinery to
//! *subsequence* matching (FRM-style ST-index): a window of length `w`
//! slides over every stored series, each window's first `k` DFT
//! coefficients — maintained incrementally in `O(k)` per step by
//! `tsq_dft::sliding` — become a feature point, and runs of consecutive
//! points are grouped into **trail MBRs** inserted into the R\*-tree.
//! Because the unitary DFT preserves distances, the coefficient-prefix
//! distance lower-bounds the true window distance, so the very same
//! Lemma-1 argument applies: the trail-level traversal can produce false
//! hits (discarded by an exact early-abandoning check on raw samples) but
//! never false dismissals. [`SubseqIndex::subseq_range`] and
//! [`SubseqIndex::subseq_knn`] are oracle-tested against naive sliding
//! scans in `tests/subseq_consistency.rs`.
//!
//! ## Concurrency
//!
//! The [`executor`] module adds a std-only worker-pool layer:
//! [`QueryExecutor`] fans a batch of queries over scoped threads with
//! per-batch [`BatchStats`], [`SimilarityIndex::range_query_parallel`]
//! parallelizes the filter and refine phases *within* one query, and the
//! heavy build paths — STR bulk loading and sliding-DFT trail extraction
//! ([`SubseqIndex::build_parallel`]) — partition their input across
//! threads. Every parallel path returns results byte-identical to its
//! sequential oracle regardless of thread count.
//!
//! ## Persistence
//!
//! The [`store`] module plus [`SimilarityIndex::write_to`] /
//! [`SimilarityIndex::read_from`] and [`SubseqIndex::write_to`] /
//! [`SubseqIndex::read_from`] snapshot built indexes to the `tsq-store`
//! binary format — R\*-tree node structure included, byte-identically, so
//! a restored index answers every query with the same results *and the
//! same traversal statistics* without rebuilding anything. Malformed
//! snapshot bytes are rejected with typed [`Error::Store`] values at
//! every boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod executor;
pub mod features;
pub mod geometry;
pub mod index;
pub mod plan;
pub mod queries;
pub mod relation;
pub mod scan;
pub mod shard;
pub mod space;
pub mod store;
pub mod subseq;
pub mod transform;

pub use error::{Error, Result};
pub use executor::{BatchQuery, BatchStats, CancelToken, QueryExecutor, SubseqBatchQuery};
pub use features::{FeatureSchema, Features};
pub use index::{IndexConfig, Match, QueryStats, SimilarityIndex, StoredSeries};
pub use plan::{
    execute_plan, CostEstimate, ExecStats, ForceOp, JoinHint, LogicalPlan, PhysicalOp,
    PhysicalPlan, PlanChoice, PlanPreference, PlanRows, Planner, QueryOptions, RelationStats,
    SpaceProfile,
};
pub use queries::{JoinOutcome, JoinPair, JoinStats};
pub use relation::SeriesRelation;
pub use scan::{ScanMode, ScanStats};
pub use shard::{
    render_sharded_analyze, render_sharded_plan, ShardBy, ShardMap, ShardSpec, ShardedIndex,
    ShardedOutcome,
};
pub use space::{QueryWindow, SpaceKind};
pub use subseq::{SubseqConfig, SubseqIndex, SubseqMatch, SubseqScanStats, SubseqStats};
pub use transform::LinearTransform;
