//! Error types for the query engine.

use std::fmt;

/// Errors raised by index construction and query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A transformation violates the safety condition (Definition 1) for
    /// the coordinate space in use.
    UnsafeTransform {
        /// Human-readable reason (which theorem's precondition failed).
        reason: String,
    },
    /// Series length differs from what the index was built for.
    LengthMismatch {
        /// Length the index expects.
        expected: usize,
        /// Length that was supplied.
        got: usize,
    },
    /// The index cut-off `k` is invalid for the series length.
    InvalidCutoff {
        /// Requested number of coefficients.
        k: usize,
        /// Series length.
        n: usize,
    },
    /// A query referenced an unknown series identifier.
    UnknownSeries(usize),
    /// Transformation vector lengths disagree with the series length.
    TransformArity {
        /// Expected coefficient-vector length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A distance threshold was negative. Raised at query construction so
    /// a nonsensical query fails loudly instead of silently matching
    /// nothing.
    NegativeThreshold {
        /// The offending threshold.
        eps: f64,
    },
    /// A subsequence window length below 2 (a one-point "window" has no
    /// spectrum to index and degenerates every distance to a point gap).
    InvalidWindow {
        /// The offending window length.
        window: usize,
    },
    /// A non-finite number (NaN or ±∞) reached a query or ingest boundary:
    /// a series value, a distance threshold, or a transformation cost.
    /// NaN silently breaks every ordering and threshold comparison the
    /// engine relies on, so it is rejected with the offending context
    /// instead of flowing into the geometry.
    NonFinite {
        /// What carried the value, with the value formatted in (e.g.
        /// `"series value NaN at position 3"`, `"threshold eps = inf"`).
        context: String,
    },
    /// A whole-series query reached a relation whose series lengths are
    /// (transiently) unequal — single-series appends make a relation
    /// *ragged* until the other series catch up. Whole-series Euclidean
    /// distance is undefined across lengths, so these query forms are
    /// rejected instead of answered wrongly; subsequence queries, which
    /// compare fixed-length windows, remain available throughout.
    Ragged {
        /// Shortest series length in the relation.
        min: usize,
        /// Longest series length in the relation.
        max: usize,
    },
    /// Operation unsupported for this transformation (e.g. composing two
    /// time warps).
    Unsupported(String),
    /// A snapshot could not be written or restored: I/O failures, bad
    /// magic/version/endianness, checksum mismatches, truncated or
    /// structurally corrupt payloads, and restore-time name collisions all
    /// surface here as typed [`tsq_store::StoreError`]s — never a panic.
    Store(tsq_store::StoreError),
}

impl Error {
    /// `Ok(eps)` when the threshold is usable, the typed rejection
    /// otherwise: [`Error::NonFinite`] for NaN/∞, since `d <= NaN` is
    /// false for every distance (silently empty answers) and `d <= ∞` is
    /// true for all of them; [`Error::NegativeThreshold`] for `eps < 0`.
    pub fn check_threshold(eps: f64) -> Result<f64> {
        if !eps.is_finite() {
            return Err(Error::NonFinite {
                context: format!("threshold eps = {eps}"),
            });
        }
        if eps < 0.0 {
            return Err(Error::NegativeThreshold { eps });
        }
        Ok(eps)
    }
}

impl From<tsq_store::StoreError> for Error {
    fn from(e: tsq_store::StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<tsq_series::NonFiniteValue> for Error {
    fn from(e: tsq_series::NonFiniteValue) -> Self {
        Error::NonFinite {
            context: format!("series value {} at position {}", e.value, e.index),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnsafeTransform { reason } => write!(f, "unsafe transformation: {reason}"),
            Error::LengthMismatch { expected, got } => {
                write!(f, "series length mismatch: expected {expected}, got {got}")
            }
            Error::InvalidCutoff { k, n } => {
                write!(f, "invalid cut-off: k = {k} for series of length {n}")
            }
            Error::UnknownSeries(id) => write!(f, "unknown series id {id}"),
            Error::TransformArity { expected, got } => {
                write!(
                    f,
                    "transformation arity mismatch: expected {expected}, got {got}"
                )
            }
            Error::NegativeThreshold { eps } => {
                write!(f, "negative distance threshold: eps = {eps}")
            }
            Error::NonFinite { context } => {
                write!(f, "non-finite input rejected: {context}")
            }
            Error::InvalidWindow { window } => {
                write!(
                    f,
                    "invalid subsequence window: {window} (must be at least 2)"
                )
            }
            Error::Ragged { min, max } => {
                write!(
                    f,
                    "relation is ragged: series lengths range from {min} to {max}; \
                     whole-series queries need equal lengths (append the shorter \
                     series up to length {max}, or use subsequence queries)"
                )
            }
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            Error::Store(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::LengthMismatch {
            expected: 128,
            got: 64,
        };
        assert!(e.to_string().contains("128"));
        let e = Error::UnsafeTransform {
            reason: "complex multiplier in S_rect".into(),
        };
        assert!(e.to_string().contains("unsafe"));
        let e = Error::InvalidCutoff { k: 9, n: 4 };
        assert!(e.to_string().contains("k = 9"));
        let e = Error::NegativeThreshold { eps: -1.5 };
        assert!(e.to_string().contains("-1.5"));
        let e = Error::InvalidWindow { window: 1 };
        assert!(e.to_string().contains("window"));
        let e = Error::NonFinite {
            context: "threshold eps = NaN".into(),
        };
        assert!(e.to_string().contains("non-finite"));
        let e = Error::Ragged { min: 60, max: 64 };
        assert!(e.to_string().contains("60"));
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("ragged"));
    }

    #[test]
    fn threshold_check() {
        assert_eq!(Error::check_threshold(1.5), Ok(1.5));
        assert_eq!(Error::check_threshold(0.0), Ok(0.0));
        assert!(matches!(
            Error::check_threshold(f64::NAN),
            Err(Error::NonFinite { .. })
        ));
        assert!(matches!(
            Error::check_threshold(f64::INFINITY),
            Err(Error::NonFinite { .. })
        ));
        assert!(matches!(
            Error::check_threshold(-1.0),
            Err(Error::NegativeThreshold { eps }) if eps == -1.0
        ));
    }

    #[test]
    fn store_error_converts_and_displays() {
        let e: Error = tsq_store::StoreError::BadMagic.into();
        assert!(matches!(e, Error::Store(tsq_store::StoreError::BadMagic)));
        assert!(e.to_string().contains("snapshot error"));
        let e: Error = tsq_store::StoreError::corrupt("dangling id").into();
        assert!(e.to_string().contains("dangling id"));
    }

    #[test]
    fn non_finite_value_converts() {
        let e: Error = tsq_series::NonFiniteValue {
            index: 3,
            value: f64::NAN,
        }
        .into();
        assert!(matches!(&e, Error::NonFinite { context } if context.contains("position 3")));
    }
}
