//! Geometry of the polar coordinate space `S_pol`.
//!
//! A rectangle `[m_lo, m_hi] x [a_lo, a_hi]` in polar *coordinates* denotes
//! an **annular sector** in the complex plane. Two primitives are needed:
//!
//! - the minimum Euclidean (complex-plane) distance from a point to such a
//!   sector — the per-coefficient lower bound driving nearest-neighbor
//!   search in `S_pol` (the analogue of MINDIST in `S_rect`);
//! - angle-interval handling with wrap-around at ±π.

use std::f64::consts::PI;
use tsq_dft::Complex64;

/// Normalizes an angle to `(-pi, pi]`.
pub fn normalize_angle(a: f64) -> f64 {
    let mut x = a.rem_euclid(2.0 * PI); // [0, 2pi)
    if x > PI {
        x -= 2.0 * PI;
    }
    x
}

/// An annular sector: magnitudes in `[m_lo, m_hi]`, angles in the arc from
/// `a_lo` to `a_hi`. `full_angle` marks the degenerate "whole annulus" case
/// (produced e.g. by the Figure-7 construction when `eps >= m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnularSector {
    /// Minimum magnitude (>= 0).
    pub m_lo: f64,
    /// Maximum magnitude.
    pub m_hi: f64,
    /// Arc start angle, normalized.
    pub a_lo: f64,
    /// Arc end angle, normalized; the arc runs counter-clockwise from
    /// `a_lo` to `a_hi` (possibly crossing ±pi).
    pub a_hi: f64,
    /// When set, the sector covers all angles and `a_lo`/`a_hi` are ignored.
    pub full_angle: bool,
}

impl AnnularSector {
    /// A full annulus.
    pub fn annulus(m_lo: f64, m_hi: f64) -> Self {
        assert!(m_lo >= 0.0 && m_hi >= m_lo, "invalid magnitudes");
        AnnularSector {
            m_lo,
            m_hi,
            a_lo: -PI,
            a_hi: PI,
            full_angle: true,
        }
    }

    /// A sector from `a_lo` to `a_hi` (angles normalized internally). If
    /// the span reaches `2*pi` the sector becomes a full annulus.
    pub fn new(m_lo: f64, m_hi: f64, a_lo: f64, a_hi: f64) -> Self {
        assert!(m_lo >= 0.0 && m_hi >= m_lo, "invalid magnitudes");
        assert!(a_hi >= a_lo, "angle interval must be ordered");
        if a_hi - a_lo >= 2.0 * PI {
            return Self::annulus(m_lo, m_hi);
        }
        AnnularSector {
            m_lo,
            m_hi,
            a_lo: normalize_angle(a_lo),
            a_hi: normalize_angle(a_hi),
            full_angle: false,
        }
    }

    /// True if the (normalized) angle lies on the arc.
    pub fn contains_angle(&self, angle: f64) -> bool {
        if self.full_angle {
            return true;
        }
        let a = normalize_angle(angle);
        if self.a_lo <= self.a_hi {
            self.a_lo <= a && a <= self.a_hi
        } else {
            // Arc crosses the ±pi cut.
            a >= self.a_lo || a <= self.a_hi
        }
    }

    /// True if the complex point lies inside the sector.
    pub fn contains(&self, p: Complex64) -> bool {
        let m = p.abs();
        m >= self.m_lo - 1e-12
            && m <= self.m_hi + 1e-12
            && (m == 0.0 || self.contains_angle(p.angle()))
    }

    /// Exact minimum Euclidean distance from `p` to the sector (0 when `p`
    /// lies inside).
    pub fn min_dist(&self, p: Complex64) -> f64 {
        let m = p.abs();
        if self.full_angle {
            // Pure radial clamping.
            return if m < self.m_lo {
                self.m_lo - m
            } else if m > self.m_hi {
                m - self.m_hi
            } else {
                0.0
            };
        }
        if self.contains_angle(p.angle()) || m == 0.0 {
            // Radially aligned with the arc (the origin sees every angle).
            return if m < self.m_lo {
                self.m_lo - m
            } else if m > self.m_hi {
                m - self.m_hi
            } else if m == 0.0 && self.m_lo > 0.0 {
                self.m_lo
            } else {
                0.0
            };
        }
        // Closest point lies on one of the two straight radial edges.
        let d1 = dist_to_radial_segment(p, self.a_lo, self.m_lo, self.m_hi);
        let d2 = dist_to_radial_segment(p, self.a_hi, self.m_lo, self.m_hi);
        d1.min(d2)
    }
}

impl AnnularSector {
    /// Exact minimum Euclidean distance between two annular sectors
    /// (0 when they intersect). Needed by the tree↔tree spatial join in
    /// `S_pol`, where the coordinate-space rectangle distance is *not* a
    /// valid lower bound of the complex-plane distance.
    ///
    /// When the angular ranges meet (or either side covers all angles) the
    /// minimum is purely radial. Otherwise the minimizing pair lies on the
    /// facing radial edges: moving along an arc toward the other sector's
    /// angular range always decreases the distance, so arc-interior points
    /// are never strict minimizers.
    pub fn min_dist_to_sector(&self, other: &AnnularSector) -> f64 {
        let angular_overlap = self.full_angle
            || other.full_angle
            || self.contains_angle(other.a_lo)
            || self.contains_angle(other.a_hi)
            || other.contains_angle(self.a_lo)
            || other.contains_angle(self.a_hi);
        if angular_overlap {
            // Radial gap only.
            return if self.m_hi < other.m_lo {
                other.m_lo - self.m_hi
            } else if other.m_hi < self.m_lo {
                self.m_lo - other.m_hi
            } else {
                0.0
            };
        }
        let mut best = f64::INFINITY;
        for &ang_a in &[self.a_lo, self.a_hi] {
            let a0 = Complex64::cis(ang_a).scale(self.m_lo);
            let a1 = Complex64::cis(ang_a).scale(self.m_hi);
            for &ang_b in &[other.a_lo, other.a_hi] {
                let b0 = Complex64::cis(ang_b).scale(other.m_lo);
                let b1 = Complex64::cis(ang_b).scale(other.m_hi);
                best = best.min(segment_segment_min_dist(a0, a1, b0, b1));
            }
        }
        best
    }
}

/// Distance from `p` to the segment {t * e^{j*angle} : t in [m_lo, m_hi]}.
fn dist_to_radial_segment(p: Complex64, angle: f64, m_lo: f64, m_hi: f64) -> f64 {
    let dir = Complex64::cis(angle);
    // Projection of p onto the ray direction.
    let t = p.re * dir.re + p.im * dir.im;
    let t_clamped = t.clamp(m_lo, m_hi);
    let closest = dir.scale(t_clamped);
    (p - closest).abs()
}

/// Minimum distance between the 2-D segments `a0a1` and `b0b1`.
///
/// Standard clamped closest-point computation (Ericson, *Real-Time
/// Collision Detection*, §5.1.9), specialized to complex-plane points.
pub fn segment_segment_min_dist(a0: Complex64, a1: Complex64, b0: Complex64, b1: Complex64) -> f64 {
    let d1 = a1 - a0;
    let d2 = b1 - b0;
    let r = a0 - b0;
    let aa = d1.norm_sqr();
    let ee = d2.norm_sqr();
    let ff = d2.re * r.re + d2.im * r.im;
    let (s, t);
    if aa <= f64::EPSILON && ee <= f64::EPSILON {
        return r.abs(); // both degenerate
    }
    if aa <= f64::EPSILON {
        s = 0.0;
        t = (ff / ee).clamp(0.0, 1.0);
    } else {
        let cc = d1.re * r.re + d1.im * r.im;
        if ee <= f64::EPSILON {
            t = 0.0;
            s = (-cc / aa).clamp(0.0, 1.0);
        } else {
            let bb = d1.re * d2.re + d1.im * d2.im;
            let denom = aa * ee - bb * bb;
            let s0 = if denom != 0.0 {
                ((bb * ff - cc * ee) / denom).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let t0 = (bb * s0 + ff) / ee;
            if t0 < 0.0 {
                t = 0.0;
                s = (-cc / aa).clamp(0.0, 1.0);
            } else if t0 > 1.0 {
                t = 1.0;
                s = ((bb - cc) / aa).clamp(0.0, 1.0);
            } else {
                s = s0;
                t = t0;
            }
        }
    }
    let cp_a = a0 + d1.scale(s);
    let cp_b = b0 + d2.scale(t);
    (cp_a - cp_b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(m: f64, a: f64) -> Complex64 {
        Complex64::from_polar(m, a)
    }

    #[test]
    fn normalize_angle_cases() {
        assert!((normalize_angle(0.0)).abs() < 1e-12);
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!(
            (normalize_angle(-PI) - PI).abs() < 1e-12,
            "(-pi maps to +pi]"
        );
        assert!((normalize_angle(2.0 * PI)).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let s = AnnularSector::new(1.0, 2.0, -0.5, 0.5);
        assert!(s.contains(cp(1.5, 0.0)));
        assert!(s.contains(cp(1.0, 0.5)));
        assert!(!s.contains(cp(0.5, 0.0)), "too small a magnitude");
        assert!(!s.contains(cp(1.5, 1.0)), "outside the arc");
    }

    #[test]
    fn wraparound_arc() {
        // Arc from 170 degrees to -170 degrees, crossing the cut.
        let lo = 17.0 * PI / 18.0;
        let s = AnnularSector {
            m_lo: 1.0,
            m_hi: 2.0,
            a_lo: lo,
            a_hi: -lo,
            full_angle: false,
        };
        assert!(s.contains_angle(PI));
        assert!(s.contains_angle(-PI));
        assert!(!s.contains_angle(0.0));
        assert!(s.contains(cp(1.5, PI)));
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let s = AnnularSector::new(1.0, 2.0, 0.0, 1.0);
        assert_eq!(s.min_dist(cp(1.5, 0.5)), 0.0);
    }

    #[test]
    fn min_dist_radial() {
        let s = AnnularSector::new(2.0, 3.0, -0.2, 0.2);
        assert!((s.min_dist(cp(1.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((s.min_dist(cp(5.0, 0.1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_dist_angular_edge() {
        // Point at angle pi/2, sector arc [0, 0.3]: nearest point is on the
        // a_hi radial edge.
        let s = AnnularSector::new(1.0, 2.0, 0.0, 0.3);
        let p = cp(1.5, PI / 2.0);
        let d = s.min_dist(p);
        // Distance to the segment along angle 0.3 of radii [1,2].
        let expect = dist_to_radial_segment(p, 0.3, 1.0, 2.0);
        assert!((d - expect).abs() < 1e-12);
        assert!(d > 0.0);
    }

    #[test]
    fn min_dist_origin() {
        let s = AnnularSector::new(1.0, 2.0, 0.0, 0.1);
        assert!((s.min_dist(Complex64::new(0.0, 0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn annulus_distance_ignores_angle() {
        let s = AnnularSector::annulus(1.0, 2.0);
        for a in [0.0, 1.0, -2.0, PI] {
            assert!((s.min_dist(cp(0.25, a)) - 0.75).abs() < 1e-12);
            assert_eq!(s.min_dist(cp(1.5, a)), 0.0);
        }
    }

    #[test]
    fn segment_segment_cases() {
        let o = Complex64::new(0.0, 0.0);
        let e1 = Complex64::new(1.0, 0.0);
        let p = |x: f64, y: f64| Complex64::new(x, y);
        // Parallel horizontal segments one unit apart.
        assert!((segment_segment_min_dist(o, e1, p(0.0, 1.0), p(1.0, 1.0)) - 1.0).abs() < 1e-12);
        // Crossing segments: distance zero.
        assert!(
            segment_segment_min_dist(p(-1.0, -1.0), p(1.0, 1.0), p(-1.0, 1.0), p(1.0, -1.0))
                < 1e-12
        );
        // Endpoint to endpoint.
        assert!((segment_segment_min_dist(o, e1, p(3.0, 0.0), p(4.0, 0.0)) - 2.0).abs() < 1e-12);
        // Degenerate (point) segments.
        assert!((segment_segment_min_dist(o, o, p(0.0, 2.0), p(0.0, 2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sector_sector_radial_when_angles_overlap() {
        let a = AnnularSector::new(1.0, 2.0, 0.0, 1.0);
        let b = AnnularSector::new(3.0, 4.0, 0.5, 1.5);
        assert!((a.min_dist_to_sector(&b) - 1.0).abs() < 1e-12);
        assert!((b.min_dist_to_sector(&a) - 1.0).abs() < 1e-12);
        let c = AnnularSector::new(1.5, 3.5, 0.9, 1.1);
        assert_eq!(a.min_dist_to_sector(&c), 0.0);
    }

    #[test]
    fn sector_sector_edge_case_matches_sampling() {
        let pairs = [
            (
                AnnularSector::new(1.0, 2.0, 0.0, 0.2),
                AnnularSector::new(1.0, 2.0, 1.0, 1.2),
            ),
            (
                AnnularSector::new(0.5, 1.0, -0.3, 0.0),
                AnnularSector::new(2.0, 3.0, 2.8, 3.1),
            ),
            (
                AnnularSector::annulus(5.0, 6.0),
                AnnularSector::new(1.0, 2.0, 0.0, 0.5),
            ),
        ];
        for (a, b) in &pairs {
            let d = a.min_dist_to_sector(b);
            // Sample both sectors; the sampled minimum must straddle d.
            let mut best = f64::INFINITY;
            let steps = 120;
            let sample = |s: &AnnularSector, i: usize, j: usize| {
                let m = s.m_lo + (s.m_hi - s.m_lo) * i as f64 / steps as f64;
                let (alo, span) = if s.full_angle {
                    (-PI, 2.0 * PI)
                } else {
                    let mut sp = normalize_angle(s.a_hi - s.a_lo).rem_euclid(2.0 * PI);
                    if sp == 0.0 && s.a_lo != s.a_hi {
                        sp = 2.0 * PI;
                    }
                    (s.a_lo, sp)
                };
                let ang = alo + span * j as f64 / steps as f64;
                cp(m, ang)
            };
            for i in 0..=steps {
                for j in 0..=steps {
                    let pa = sample(a, i, j);
                    for i2 in 0..=steps {
                        // Sample only the boundary magnitudes of b for speed.
                        for &jb in &[0usize, steps / 2, steps] {
                            let pb = sample(b, i2, jb);
                            best = best.min((pa - pb).abs());
                        }
                    }
                }
            }
            assert!(d <= best + 1e-9, "reported {d} exceeds sampled {best}");
            assert!(best <= d + 0.1, "sampled {best} way below reported {d}");
        }
    }

    #[test]
    fn min_dist_is_true_minimum_by_sampling() {
        // Brute-force check: sample the sector densely; no sampled point may
        // be closer than the reported minimum (up to sampling slack), and at
        // least one sampled point must be nearly that close.
        let sectors = [
            AnnularSector::new(0.5, 2.0, -1.0, 0.25),
            AnnularSector::new(0.0, 1.0, 2.8, 3.4), // crosses the cut once normalized
            AnnularSector::annulus(1.0, 1.5),
        ];
        let points = [
            cp(3.0, 2.0),
            cp(0.1, -2.0),
            Complex64::new(-1.0, -1.0),
            Complex64::new(0.0, 0.0),
            cp(1.2, 1.5),
        ];
        for s in &sectors {
            for &p in &points {
                let d = s.min_dist(p);
                let mut best = f64::INFINITY;
                let steps = 400;
                for i in 0..=steps {
                    let m = s.m_lo + (s.m_hi - s.m_lo) * i as f64 / steps as f64;
                    // Sample the arc; full circle for annuli.
                    let (alo, span) = if s.full_angle {
                        (-PI, 2.0 * PI)
                    } else {
                        let span = normalize_angle(s.a_hi - s.a_lo).rem_euclid(2.0 * PI);
                        let span = if span == 0.0 && s.a_lo != s.a_hi {
                            2.0 * PI
                        } else {
                            span
                        };
                        (s.a_lo, span)
                    };
                    for j in 0..=steps {
                        let a = alo + span * j as f64 / steps as f64;
                        let q = cp(m, a);
                        best = best.min((p - q).abs());
                    }
                }
                assert!(
                    d <= best + 1e-9,
                    "reported min {d} exceeds sampled min {best} for {s:?} / {p}"
                );
                assert!(
                    best <= d + 0.02,
                    "sampled min {best} much smaller than reported {d} for {s:?} / {p}"
                );
            }
        }
    }
}
