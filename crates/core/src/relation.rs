//! Named relations of time series.
//!
//! The paper treats relations as "simply sets of sequences; in practice of
//! course they may have other attributes, such as source of the data, time
//! period covered, etc." (Section 3). [`SeriesRelation`] carries per-series
//! names (ticker symbols in the stock examples) and builds
//! [`SimilarityIndex`]es; the query language resolves identifiers against
//! it.

use std::collections::HashMap;

use tsq_series::TimeSeries;

use crate::error::{Error, Result};
use crate::index::{IndexConfig, SimilarityIndex};

/// A named collection of time series.
///
/// Lengths are *usually* equal, but streaming ingest makes them
/// transiently unequal: a single-series `APPEND` leaves the relation
/// **ragged** until the other series catch up. Whole-series queries are
/// gated on uniformity (see [`crate::Error::Ragged`]); subsequence
/// queries work either way.
#[derive(Debug, Clone, Default)]
pub struct SeriesRelation {
    name: String,
    series: Vec<TimeSeries>,
    labels: Vec<String>,
    by_label: HashMap<String, usize>,
}

impl SeriesRelation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<String>) -> Self {
        SeriesRelation {
            name: name.into(),
            ..SeriesRelation::default()
        }
    }

    /// Builds a relation from `(label, series)` pairs.
    ///
    /// # Errors
    /// Duplicate labels are rejected as [`Error::Unsupported`].
    pub fn from_labeled(name: impl Into<String>, items: Vec<(String, TimeSeries)>) -> Result<Self> {
        let mut rel = SeriesRelation::new(name);
        for (label, series) in items {
            rel.push(label, series)?;
        }
        Ok(rel)
    }

    /// Builds a relation with synthesized labels `s0, s1, ...`.
    pub fn from_series(name: impl Into<String>, series: Vec<TimeSeries>) -> Result<Self> {
        let items = series
            .into_iter()
            .enumerate()
            .map(|(i, s)| (format!("s{i}"), s))
            .collect();
        Self::from_labeled(name, items)
    }

    /// Appends one labeled series, returning its id. The new series may
    /// differ in length from the others (streaming ingest starts new
    /// series mid-stream); the relation is then ragged until appends even
    /// the lengths out.
    pub fn push(&mut self, label: impl Into<String>, series: TimeSeries) -> Result<usize> {
        let label = label.into();
        if self.by_label.contains_key(&label) {
            return Err(Error::Unsupported(format!("duplicate label {label:?}")));
        }
        let id = self.series.len();
        self.by_label.insert(label.clone(), id);
        self.labels.push(label);
        self.series.push(series);
        Ok(id)
    }

    /// Appends values to the end of one stored series (the `APPEND` verb's
    /// storage-level operation), returning its id. Validation is atomic:
    /// on any error the series — and therefore the relation — is exactly
    /// as it was.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`] for an unknown label (mapped by callers
    /// that know the label), [`Error::NonFinite`] when the appended values
    /// contain NaN/±∞.
    pub fn extend_series(&mut self, label: &str, appended: &[f64]) -> Result<usize> {
        let Some(&id) = self.by_label.get(label) else {
            return Err(Error::UnknownSeries(usize::MAX));
        };
        self.series[id].try_extend(appended)?;
        Ok(id)
    }

    /// `(min, max)` series lengths, or `None` for an empty relation.
    pub fn length_range(&self) -> Option<(usize, usize)> {
        let mut lens = self.series.iter().map(TimeSeries::len);
        let first = lens.next()?;
        Some(lens.fold((first, first), |(lo, hi), l| (lo.min(l), hi.max(l))))
    }

    /// True when every stored series has the same length (vacuously true
    /// when empty). Whole-series queries require this; see
    /// [`Error::Ragged`].
    pub fn is_uniform(&self) -> bool {
        // `map_or(true, ..)` rather than `is_none_or`: MSRV is 1.80.
        self.length_range().map_or(true, |(lo, hi)| lo == hi)
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series by id.
    pub fn get(&self, id: usize) -> Option<&TimeSeries> {
        self.series.get(id)
    }

    /// Series by label.
    pub fn get_by_label(&self, label: &str) -> Option<&TimeSeries> {
        self.by_label.get(label).map(|&i| &self.series[i])
    }

    /// Id of a label.
    pub fn id_of(&self, label: &str) -> Option<usize> {
        self.by_label.get(label).copied()
    }

    /// Label of an id.
    pub fn label(&self, id: usize) -> Option<&str> {
        self.labels.get(id).map(String::as_str)
    }

    /// All series, in id order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Builds a [`SimilarityIndex`] over this relation.
    pub fn index(&self, config: IndexConfig) -> Result<SimilarityIndex> {
        SimilarityIndex::build(config, self.series.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        let mut rel = SeriesRelation::new("stocks");
        let a = rel.push("BBA", TimeSeries::from([1.0, 2.0])).unwrap();
        let b = rel.push("ZTR", TimeSeries::from([3.0, 4.0])).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(rel.label(1), Some("ZTR"));
        assert_eq!(rel.id_of("BBA"), Some(0));
        assert_eq!(rel.get_by_label("ZTR").unwrap().values(), &[3.0, 4.0]);
        assert_eq!(rel.name(), "stocks");
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut rel = SeriesRelation::new("r");
        rel.push("X", TimeSeries::from([1.0])).unwrap();
        assert!(rel.push("X", TimeSeries::from([2.0])).is_err());
    }

    #[test]
    fn mixed_lengths_make_a_ragged_relation() {
        let mut rel = SeriesRelation::new("r");
        rel.push("X", TimeSeries::from([1.0, 2.0])).unwrap();
        rel.push("Y", TimeSeries::from([1.0])).unwrap();
        assert_eq!(rel.length_range(), Some((1, 2)));
        assert!(!rel.is_uniform());
        // Appending the short series up to length 2 heals it.
        let id = rel.extend_series("Y", &[5.0]).unwrap();
        assert_eq!(id, 1);
        assert!(rel.is_uniform());
        assert_eq!(rel.get_by_label("Y").unwrap().values(), &[1.0, 5.0]);
    }

    #[test]
    fn extend_series_validates() {
        let mut rel = SeriesRelation::new("r");
        rel.push("X", TimeSeries::from([1.0, 2.0])).unwrap();
        assert!(matches!(
            rel.extend_series("missing", &[1.0]),
            Err(Error::UnknownSeries(_))
        ));
        assert!(matches!(
            rel.extend_series("X", &[f64::INFINITY]),
            Err(Error::NonFinite { .. })
        ));
        // Failed extends are no-ops.
        assert_eq!(rel.get_by_label("X").unwrap().values(), &[1.0, 2.0]);
    }

    #[test]
    fn from_series_synthesizes_labels() {
        let rel = SeriesRelation::from_series(
            "r",
            vec![TimeSeries::from([1.0]), TimeSeries::from([2.0])],
        )
        .unwrap();
        assert_eq!(rel.label(0), Some("s0"));
        assert_eq!(rel.label(1), Some("s1"));
    }

    #[test]
    fn builds_index() {
        let series: Vec<TimeSeries> = (0..20)
            .map(|i| {
                TimeSeries::new(
                    (0..16)
                        .map(|t| ((i + t) as f64 * 0.7).sin() * 3.0 + i as f64)
                        .collect(),
                )
            })
            .collect();
        let rel = SeriesRelation::from_series("r", series).unwrap();
        let idx = rel.index(IndexConfig::default()).unwrap();
        assert_eq!(idx.len(), 20);
    }
}
