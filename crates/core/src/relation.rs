//! Named relations of time series.
//!
//! The paper treats relations as "simply sets of sequences; in practice of
//! course they may have other attributes, such as source of the data, time
//! period covered, etc." (Section 3). [`SeriesRelation`] carries per-series
//! names (ticker symbols in the stock examples) and builds
//! [`SimilarityIndex`]es; the query language resolves identifiers against
//! it.

use std::collections::HashMap;

use tsq_series::TimeSeries;

use crate::error::{Error, Result};
use crate::index::{IndexConfig, SimilarityIndex};

/// A named collection of equal-length time series.
#[derive(Debug, Clone, Default)]
pub struct SeriesRelation {
    name: String,
    series: Vec<TimeSeries>,
    labels: Vec<String>,
    by_label: HashMap<String, usize>,
}

impl SeriesRelation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<String>) -> Self {
        SeriesRelation {
            name: name.into(),
            ..SeriesRelation::default()
        }
    }

    /// Builds a relation from `(label, series)` pairs.
    ///
    /// # Errors
    /// [`Error::LengthMismatch`] if lengths disagree; duplicate labels are
    /// rejected as [`Error::Unsupported`].
    pub fn from_labeled(name: impl Into<String>, items: Vec<(String, TimeSeries)>) -> Result<Self> {
        let mut rel = SeriesRelation::new(name);
        for (label, series) in items {
            rel.push(label, series)?;
        }
        Ok(rel)
    }

    /// Builds a relation with synthesized labels `s0, s1, ...`.
    pub fn from_series(name: impl Into<String>, series: Vec<TimeSeries>) -> Result<Self> {
        let items = series
            .into_iter()
            .enumerate()
            .map(|(i, s)| (format!("s{i}"), s))
            .collect();
        Self::from_labeled(name, items)
    }

    /// Appends one labeled series, returning its id.
    pub fn push(&mut self, label: impl Into<String>, series: TimeSeries) -> Result<usize> {
        let label = label.into();
        if let Some(first) = self.series.first() {
            if first.len() != series.len() {
                return Err(Error::LengthMismatch {
                    expected: first.len(),
                    got: series.len(),
                });
            }
        }
        if self.by_label.contains_key(&label) {
            return Err(Error::Unsupported(format!("duplicate label {label:?}")));
        }
        let id = self.series.len();
        self.by_label.insert(label.clone(), id);
        self.labels.push(label);
        self.series.push(series);
        Ok(id)
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series by id.
    pub fn get(&self, id: usize) -> Option<&TimeSeries> {
        self.series.get(id)
    }

    /// Series by label.
    pub fn get_by_label(&self, label: &str) -> Option<&TimeSeries> {
        self.by_label.get(label).map(|&i| &self.series[i])
    }

    /// Id of a label.
    pub fn id_of(&self, label: &str) -> Option<usize> {
        self.by_label.get(label).copied()
    }

    /// Label of an id.
    pub fn label(&self, id: usize) -> Option<&str> {
        self.labels.get(id).map(String::as_str)
    }

    /// All series, in id order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Builds a [`SimilarityIndex`] over this relation.
    pub fn index(&self, config: IndexConfig) -> Result<SimilarityIndex> {
        SimilarityIndex::build(config, self.series.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        let mut rel = SeriesRelation::new("stocks");
        let a = rel.push("BBA", TimeSeries::from([1.0, 2.0])).unwrap();
        let b = rel.push("ZTR", TimeSeries::from([3.0, 4.0])).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(rel.label(1), Some("ZTR"));
        assert_eq!(rel.id_of("BBA"), Some(0));
        assert_eq!(rel.get_by_label("ZTR").unwrap().values(), &[3.0, 4.0]);
        assert_eq!(rel.name(), "stocks");
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut rel = SeriesRelation::new("r");
        rel.push("X", TimeSeries::from([1.0])).unwrap();
        assert!(rel.push("X", TimeSeries::from([2.0])).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut rel = SeriesRelation::new("r");
        rel.push("X", TimeSeries::from([1.0, 2.0])).unwrap();
        assert!(matches!(
            rel.push("Y", TimeSeries::from([1.0])),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn from_series_synthesizes_labels() {
        let rel = SeriesRelation::from_series(
            "r",
            vec![TimeSeries::from([1.0]), TimeSeries::from([2.0])],
        )
        .unwrap();
        assert_eq!(rel.label(0), Some("s0"));
        assert_eq!(rel.label(1), Some("s1"));
    }

    #[test]
    fn builds_index() {
        let series: Vec<TimeSeries> = (0..20)
            .map(|i| {
                TimeSeries::new(
                    (0..16)
                        .map(|t| ((i + t) as f64 * 0.7).sin() * 3.0 + i as f64)
                        .collect(),
                )
            })
            .collect();
        let rel = SeriesRelation::from_series("r", series).unwrap();
        let idx = rel.index(IndexConfig::default()).unwrap();
        assert_eq!(idx.len(), 20);
    }
}
