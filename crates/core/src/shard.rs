//! Sharded scatter-gather execution: a single-process rehearsal for
//! distributing the paper's filter-and-refine pipeline.
//!
//! A relation is partitioned into `N` shards — by a hash of each series
//! label or by contiguous label ranges — and every shard gets its own
//! [`SimilarityIndex`]. A query is then executed scatter-gather style:
//! the [`Planner`] produces one physical plan *per shard* (each shard has
//! its own [`RelationStats`]), the shard plans run concurrently on the
//! worker pool ([`crate::executor::parallel_map`]), and a typed merge
//! step reassembles the global answer:
//!
//! | form | merge |
//! |------|-------|
//! | range | threshold-union: concatenate, remap to global ids, sort by id |
//! | k-NN | bounded k-way merge by `(distance, id)` — deterministic ties |
//! | join | per-shard self-joins plus cross-shard probes, sorted `(a, b)` |
//! | subseq range | union sorted by `(series, offset)` |
//! | subseq k-NN | k-way merge by `(distance, series, offset)` |
//!
//! **Correctness bar.** Merged rows — values *and* order — are
//! byte-identical to the unsharded engine for every query form. Merged
//! [`ExecStats`] are the exact sum of the per-shard counters (buffer-pool
//! traffic included); for scan-forced plans those sums also equal the
//! unsharded counters exactly, while index-plan traversal counters
//! legitimately differ (N small trees are not one big tree) and are
//! reported per shard so nothing is hidden.
//!
//! Within a shard, members keep their global-id order, so local ids are
//! order-isomorphic to global ids — per-shard `(distance, local id)`
//! tie-breaking therefore agrees with the global `(distance, id)` rule
//! the k-way merge applies.

use std::sync::Arc;

use tsq_series::TimeSeries;

use crate::error::{Error, Result};
use crate::executor::parallel_map;
use crate::index::{IndexConfig, Match, SimilarityIndex};
use crate::plan::{
    execute_plan, render_plan, ExecStats, JoinHint, LogicalPlan, PhysicalOp, PlanChoice,
    PlanPreference, PlanRows, Planner, RelationStats,
};
use crate::queries::JoinPair;
use crate::relation::SeriesRelation;
use crate::space::QueryWindow;
use crate::subseq::{SubseqIndex, SubseqMatch};
use crate::transform::LinearTransform;

/// How series labels are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBy {
    /// FNV-1a hash of the label, modulo the shard count.
    Hash,
    /// Contiguous lexicographic label ranges (boundaries fixed at `SHARD`
    /// time; later labels route by binary search, so assignment stays
    /// deterministic as the relation grows).
    Range,
}

impl ShardBy {
    /// Stable lower-case name (`hash` / `range`), used by `SHARD ... BY`
    /// and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            ShardBy::Hash => "hash",
            ShardBy::Range => "range",
        }
    }
}

/// 64-bit FNV-1a over the label bytes — tiny, dependency-free, and
/// stable across platforms and sessions (snapshots rely on it).
pub fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic label → shard assignment rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    by: ShardBy,
    count: usize,
    /// For [`ShardBy::Range`]: shard `i >= 1` starts at `boundaries[i-1]`
    /// (inclusive); labels below `boundaries[0]` go to shard 0. Empty for
    /// hash sharding.
    boundaries: Vec<String>,
}

impl ShardSpec {
    /// Hash sharding into `count` shards.
    ///
    /// # Errors
    /// `count == 0` is rejected as [`Error::Unsupported`].
    pub fn hash(count: usize) -> Result<Self> {
        Self::check_count(count)?;
        Ok(ShardSpec {
            by: ShardBy::Hash,
            count,
            boundaries: Vec::new(),
        })
    }

    /// Range sharding into `count` shards, with boundaries chosen to
    /// split the *current* label population into near-equal contiguous
    /// chunks. Labels appended later route into the fixed boundaries.
    ///
    /// # Errors
    /// `count == 0` is rejected as [`Error::Unsupported`].
    pub fn range(count: usize, labels: &[&str]) -> Result<Self> {
        Self::check_count(count)?;
        let mut sorted: Vec<&str> = labels.to_vec();
        sorted.sort_unstable();
        let mut boundaries = Vec::with_capacity(count.saturating_sub(1));
        if !sorted.is_empty() {
            for i in 1..count {
                // First label of chunk i under near-equal ceil division.
                let at = (i * sorted.len()).div_ceil(count).min(sorted.len() - 1);
                boundaries.push(sorted[at].to_string());
            }
        }
        Ok(ShardSpec {
            by: ShardBy::Range,
            count,
            boundaries,
        })
    }

    /// Rebuilds a spec from snapshot fields.
    ///
    /// # Errors
    /// `count == 0` is rejected as [`Error::Unsupported`].
    pub fn from_parts(by: ShardBy, count: usize, boundaries: Vec<String>) -> Result<Self> {
        Self::check_count(count)?;
        Ok(ShardSpec {
            by,
            count,
            boundaries,
        })
    }

    fn check_count(count: usize) -> Result<()> {
        if count == 0 {
            return Err(Error::Unsupported(
                "SHARD count must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Assignment rule family.
    pub fn by(&self) -> ShardBy {
        self.by
    }

    /// Range boundaries (empty for hash sharding).
    pub fn boundaries(&self) -> &[String] {
        &self.boundaries
    }

    /// The shard a label belongs to.
    pub fn assign(&self, label: &str) -> usize {
        match self.by {
            ShardBy::Hash => (hash_label(label) % self.count as u64) as usize,
            ShardBy::Range => self
                .boundaries
                .partition_point(|b| b.as_str() <= label)
                .min(self.count - 1),
        }
    }
}

/// The materialized assignment of one relation's series to shards.
/// Members are listed in ascending global-id order, so the local id of a
/// series is its rank among its shard's members — an order-preserving
/// embedding of local ids into global ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    spec: ShardSpec,
    members: Vec<Vec<usize>>,
    /// `owner[global] = (shard, local)`.
    owner: Vec<(usize, usize)>,
}

impl ShardMap {
    /// Assigns `labels` (in global-id order) to shards under `spec`.
    pub fn build(spec: ShardSpec, labels: &[&str]) -> Self {
        let mut members = vec![Vec::new(); spec.count()];
        let mut owner = Vec::with_capacity(labels.len());
        for (global, label) in labels.iter().enumerate() {
            let shard = spec.assign(label);
            owner.push((shard, members[shard].len()));
            members[shard].push(global);
        }
        ShardMap {
            spec,
            members,
            owner,
        }
    }

    /// Rebuilds a map from snapshot members.
    ///
    /// # Errors
    /// [`Error::Unsupported`] when `members` is not a permutation of
    /// `0..total` split across `spec.count()` shards in ascending order.
    pub fn from_members(spec: ShardSpec, members: Vec<Vec<usize>>) -> Result<Self> {
        if members.len() != spec.count() {
            return Err(Error::Unsupported(format!(
                "shard map has {} member lists for {} shards",
                members.len(),
                spec.count()
            )));
        }
        let total: usize = members.iter().map(Vec::len).sum();
        let mut owner = vec![(usize::MAX, usize::MAX); total];
        for (shard, list) in members.iter().enumerate() {
            for (local, &global) in list.iter().enumerate() {
                if local > 0 && list[local - 1] >= global {
                    return Err(Error::Unsupported(
                        "shard members must ascend by global id".to_string(),
                    ));
                }
                let slot = owner.get_mut(global).ok_or_else(|| {
                    Error::Unsupported(format!("shard member id {global} out of range"))
                })?;
                if slot.0 != usize::MAX {
                    return Err(Error::Unsupported(format!(
                        "series {global} assigned to two shards"
                    )));
                }
                *slot = (shard, local);
            }
        }
        if owner.iter().any(|&(s, _)| s == usize::MAX) {
            return Err(Error::Unsupported(
                "shard map does not cover every series".to_string(),
            ));
        }
        Ok(ShardMap {
            spec,
            members,
            owner,
        })
    }

    /// The assignment rule.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Global ids of one shard's members, ascending.
    pub fn members(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }

    /// `(shard, local id)` of a global id.
    pub fn owner(&self, global: usize) -> Option<(usize, usize)> {
        self.owner.get(global).copied()
    }

    /// Global id of `(shard, local)`.
    pub fn to_global(&self, shard: usize, local: usize) -> usize {
        self.members[shard][local]
    }

    /// Total series across all shards.
    pub fn total(&self) -> usize {
        self.owner.len()
    }

    /// Registers a brand-new series (the next global id) and returns its
    /// `(shard, local)` slot.
    pub fn push_label(&mut self, label: &str) -> (usize, usize) {
        let shard = self.spec.assign(label);
        let local = self.members[shard].len();
        self.members[shard].push(self.owner.len());
        self.owner.push((shard, local));
        (shard, local)
    }
}

/// One relation partitioned into per-shard [`SimilarityIndex`]es, with
/// per-shard planner statistics kept current across appends.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    map: ShardMap,
    parts: Vec<SimilarityIndex>,
    stats: Vec<RelationStats>,
}

/// The merged result of one scatter-gather execution.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Global answer rows, byte-identical to the unsharded engine.
    pub rows: PlanRows,
    /// Exact sum of the per-shard counters.
    pub merged: ExecStats,
    /// Per-shard counters (zeros for shards skipped as empty).
    pub per_shard: Vec<ExecStats>,
    /// Pre-merge row count each shard contributed.
    pub per_shard_rows: Vec<usize>,
    /// Per-shard plan choices (`None` for shards skipped as empty).
    pub plans: Vec<Option<PlanChoice>>,
}

impl ShardedIndex {
    /// Partitions `rel` under `spec` and builds one index per shard.
    ///
    /// # Errors
    /// Index-build failures of any shard.
    pub fn build(config: IndexConfig, rel: &SeriesRelation, spec: ShardSpec) -> Result<Self> {
        let labels: Vec<&str> = (0..rel.len())
            .map(|id| rel.label(id).expect("id < len"))
            .collect();
        let map = ShardMap::build(spec, &labels);
        let mut parts = Vec::with_capacity(map.spec().count());
        for shard in 0..map.spec().count() {
            let series: Vec<TimeSeries> = map
                .members(shard)
                .iter()
                .map(|&g| rel.get(g).expect("member id valid").clone())
                .collect();
            parts.push(SimilarityIndex::build(config, series)?);
        }
        let stats = parts.iter().map(RelationStats::from_index).collect();
        Ok(ShardedIndex { map, parts, stats })
    }

    /// Reassembles a sharded index from restored parts (snapshot open).
    ///
    /// # Errors
    /// [`Error::Unsupported`] when part count or membership disagrees
    /// with the map.
    pub fn from_parts(map: ShardMap, parts: Vec<SimilarityIndex>) -> Result<Self> {
        if parts.len() != map.spec().count() {
            return Err(Error::Unsupported(format!(
                "sharded snapshot holds {} parts for {} shards",
                parts.len(),
                map.spec().count()
            )));
        }
        for (shard, part) in parts.iter().enumerate() {
            if part.len() != map.members(shard).len() {
                return Err(Error::Unsupported(format!(
                    "shard {shard} holds {} series, map expects {}",
                    part.len(),
                    map.members(shard).len()
                )));
            }
        }
        let stats = parts.iter().map(RelationStats::from_index).collect();
        Ok(ShardedIndex { map, parts, stats })
    }

    /// The assignment map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The per-shard indexes, shard order.
    pub fn parts(&self) -> &[SimilarityIndex] {
        &self.parts
    }

    /// The per-shard planner statistics, shard order.
    pub fn shard_stats(&self) -> &[RelationStats] {
        &self.stats
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.parts.len()
    }

    /// Total stored series across shards.
    pub fn len(&self) -> usize {
        self.map.total()
    }

    /// True when no series are stored.
    pub fn is_empty(&self) -> bool {
        self.map.total() == 0
    }

    /// Shared index configuration (identical across parts).
    pub fn config(&self) -> &IndexConfig {
        self.parts[0].config()
    }

    /// Series length of the relation — the first non-empty shard's
    /// (shards of a uniform relation agree; use
    /// [`ShardedIndex::check_uniform`] to gate whole-series forms).
    pub fn series_len(&self) -> usize {
        self.parts
            .iter()
            .find(|p| !p.is_empty())
            .map_or(0, |p| p.series_len())
    }

    /// True when any shard runs on paged storage.
    pub fn is_paged(&self) -> bool {
        self.parts.iter().any(SimilarityIndex::is_paged)
    }

    /// Mutable access to the per-shard indexes, for attaching storage
    /// (e.g. per-shard paged node files). The slice length is fixed, so
    /// the shard map stays consistent; callers must not change which
    /// series a part stores.
    pub fn parts_mut(&mut self) -> &mut [SimilarityIndex] {
        &mut self.parts
    }

    /// Stored series by global id.
    pub fn series(&self, global: usize) -> Option<&TimeSeries> {
        let (shard, local) = self.map.owner(global)?;
        self.parts[shard].series(local)
    }

    /// Global uniformity gate: per-shard uniformity is not enough (each
    /// shard may be internally uniform at a different length), so
    /// whole-series forms check the global `(min, max)` first and report
    /// the same [`Error::Ragged`] the unsharded engine would.
    pub fn check_uniform(&self) -> Result<()> {
        let mut lens = self
            .parts
            .iter()
            .flat_map(|p| (0..p.len()).map(move |i| p.series(i).expect("local id valid").len()));
        let Some(first) = lens.next() else {
            return Ok(());
        };
        let (min, max) = lens.fold((first, first), |(lo, hi), l| (lo.min(l), hi.max(l)));
        if min != max {
            return Err(Error::Ragged { min, max });
        }
        Ok(())
    }

    /// Routes a batch of appends-to-existing-series (global ids) to their
    /// owning shards and refreshes the touched shards' statistics.
    /// Callers (the catalog) validate the batch up front; per-shard
    /// application reuses the index's atomic batch append.
    ///
    /// # Errors
    /// The same failures [`SimilarityIndex::extend_series_batch`] reports.
    pub fn extend_series_batch(&mut self, edits: &[(usize, &[f64])]) -> Result<()> {
        let mut per_shard: Vec<Vec<(usize, &[f64])>> = vec![Vec::new(); self.parts.len()];
        for &(global, values) in edits {
            let (shard, local) = self.map.owner(global).ok_or(Error::UnknownSeries(global))?;
            per_shard[shard].push((local, values));
        }
        for (shard, batch) in per_shard.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.parts[shard].extend_series_batch(batch)?;
            self.stats[shard] = RelationStats::from_index(&self.parts[shard]);
        }
        Ok(())
    }

    /// Registers and stores a brand-new labeled series in its owning
    /// shard, returning `(global id, shard)`.
    ///
    /// # Errors
    /// The same failures [`SimilarityIndex::insert`] reports.
    pub fn push_series(&mut self, label: &str, series: TimeSeries) -> Result<(usize, usize)> {
        // Probe the assignment first; only commit the map entry after the
        // shard accepts the series (insert validates features/paging).
        let shard = self.map.spec().assign(label);
        self.parts[shard].insert(series)?;
        let (shard2, _local) = self.map.push_label(label);
        debug_assert_eq!(shard, shard2);
        self.stats[shard] = RelationStats::from_index(&self.parts[shard]);
        Ok((self.map.total() - 1, shard))
    }

    /// Plans every shard without executing anything (the `EXPLAIN` path).
    /// Empty shards of a non-empty relation are skipped (`None`).
    ///
    /// # Errors
    /// The same validation failures execution would report.
    pub fn plan_shards(
        &self,
        logical: &LogicalPlan,
        pref: PlanPreference,
        subseq: Option<&[Arc<SubseqIndex>]>,
    ) -> Result<Vec<Option<PlanChoice>>> {
        if logical.subseq_window().is_none() {
            self.check_uniform()?;
        }
        let mut out = Vec::with_capacity(self.parts.len());
        for shard in self.active_shards(logical) {
            match shard {
                None => out.push(None),
                Some(s) => {
                    let st = subseq.map(|list| &*list[s]);
                    let choice = Planner::new(&self.parts[s], &self.stats[s])
                        .with_preference(pref)
                        .plan(logical, st)?;
                    out.push(Some(choice));
                }
            }
        }
        Ok(out)
    }

    /// Scatter-gather execution: per-shard plans run concurrently (up to
    /// `scatter` at once), then the form's typed merge reassembles the
    /// global answer. See the module docs for the exact merge rules and
    /// the stats contract.
    ///
    /// # Errors
    /// The same validation failures the unsharded engine reports (global
    /// raggedness, transform arity/safety, bad thresholds, warp joins).
    pub fn execute(
        &self,
        logical: &LogicalPlan,
        pref: PlanPreference,
        scatter: usize,
        subseq: Option<&[Arc<SubseqIndex>]>,
    ) -> Result<ShardedOutcome> {
        if logical.subseq_window().is_none() {
            self.check_uniform()?;
        }
        match logical {
            LogicalPlan::Range { .. } | LogicalPlan::Knn { .. } => {
                self.execute_whole(logical, pref, scatter)
            }
            LogicalPlan::Join {
                eps,
                transform,
                hint,
                ..
            } => self.execute_join(logical, *eps, transform, *hint, pref, scatter),
            LogicalPlan::SubseqRange { .. } | LogicalPlan::SubseqKnn { .. } => {
                let parts = subseq.ok_or_else(|| {
                    Error::Unsupported(
                        "sharded subsequence plan executed without ST-indexes".to_string(),
                    )
                })?;
                self.execute_subseq(logical, pref, scatter, parts)
            }
        }
    }

    /// Shard worklist: `Some(s)` runs, `None` is skipped. Empty shards of
    /// a non-empty relation are skipped for whole-series forms (their
    /// zero series length would reject the query the unsharded engine
    /// accepts); an entirely empty relation keeps shard 0 so validation
    /// and empty-answer behavior match the unsharded engine exactly.
    fn active_shards(&self, logical: &LogicalPlan) -> Vec<Option<usize>> {
        if logical.subseq_window().is_some() {
            return (0..self.parts.len()).map(Some).collect();
        }
        if self.is_empty() {
            let mut v = vec![None; self.parts.len()];
            v[0] = Some(0);
            return v;
        }
        (0..self.parts.len())
            .map(|s| (!self.parts[s].is_empty()).then_some(s))
            .collect()
    }

    fn execute_whole(
        &self,
        logical: &LogicalPlan,
        pref: PlanPreference,
        scatter: usize,
    ) -> Result<ShardedOutcome> {
        let worklist = self.active_shards(logical);
        let ran: Vec<Option<Result<(PlanChoice, PlanRows, ExecStats)>>> =
            parallel_map(scatter.max(1), worklist, |slot| {
                slot.map(|s| {
                    let choice = Planner::new(&self.parts[s], &self.stats[s])
                        .with_preference(pref)
                        .plan(logical, None)?;
                    let (rows, exec) = execute_plan(logical, &choice.plan, &self.parts[s], None)?;
                    Ok((choice, rows, exec))
                })
            });
        let mut outcome = self.collect(ran)?;
        match logical {
            LogicalPlan::Range { .. } => {
                let mut all: Vec<Match> = Vec::new();
                for (s, rows) in outcome.shard_rows.drain(..).enumerate() {
                    if let Some(PlanRows::Whole(matches)) = rows {
                        all.extend(matches.into_iter().map(|m| Match {
                            id: self.map.to_global(s, m.id),
                            distance: m.distance,
                        }));
                    }
                }
                all.sort_by_key(|m| m.id);
                outcome.finish(PlanRows::Whole(all))
            }
            LogicalPlan::Knn { k, .. } => {
                let mut all: Vec<Match> = Vec::new();
                let mut from_shard: Vec<usize> = Vec::new();
                for (s, rows) in outcome.shard_rows.drain(..).enumerate() {
                    if let Some(PlanRows::Whole(matches)) = rows {
                        for m in matches {
                            all.push(Match {
                                id: self.map.to_global(s, m.id),
                                distance: m.distance,
                            });
                            from_shard.push(s);
                        }
                    }
                }
                let mut order: Vec<usize> = (0..all.len()).collect();
                order.sort_by(|&x, &y| {
                    all[x]
                        .distance
                        .total_cmp(&all[y].distance)
                        .then(all[x].id.cmp(&all[y].id))
                });
                order.truncate(*k);
                // Scan-forced shards report false hits against the *final*
                // answer, so the merged sum equals the unsharded scan's
                // `n - rows` exactly.
                let mut survivors = vec![0usize; self.parts.len()];
                for &x in &order {
                    survivors[from_shard[x]] += 1;
                }
                for (s, exec) in outcome.per_shard.iter_mut().enumerate() {
                    if let Some(choice) = &outcome.plans[s] {
                        if matches!(choice.plan.op, PhysicalOp::SeqScan) {
                            exec.false_hits = self.parts[s].len() - survivors[s];
                        }
                    }
                }
                let merged: Vec<Match> = order.into_iter().map(|x| all[x]).collect();
                outcome.finish(PlanRows::Whole(merged))
            }
            _ => unreachable!("execute_whole handles range and knn only"),
        }
    }

    fn execute_subseq(
        &self,
        logical: &LogicalPlan,
        pref: PlanPreference,
        scatter: usize,
        subseq: &[Arc<SubseqIndex>],
    ) -> Result<ShardedOutcome> {
        if subseq.len() != self.parts.len() {
            return Err(Error::Unsupported(format!(
                "{} ST-indexes supplied for {} shards",
                subseq.len(),
                self.parts.len()
            )));
        }
        let worklist = self.active_shards(logical);
        let ran: Vec<Option<Result<(PlanChoice, PlanRows, ExecStats)>>> =
            parallel_map(scatter.max(1), worklist, |slot| {
                slot.map(|s| {
                    let st = &*subseq[s];
                    let choice = Planner::new(&self.parts[s], &self.stats[s])
                        .with_preference(pref)
                        .plan(logical, Some(st))?;
                    let (rows, exec) =
                        execute_plan(logical, &choice.plan, &self.parts[s], Some(st))?;
                    Ok((choice, rows, exec))
                })
            });
        let mut outcome = self.collect(ran)?;
        let mut all: Vec<SubseqMatch> = Vec::new();
        for (s, rows) in outcome.shard_rows.drain(..).enumerate() {
            if let Some(PlanRows::Windows(matches)) = rows {
                all.extend(matches.into_iter().map(|m| SubseqMatch {
                    series: self.map.to_global(s, m.series),
                    offset: m.offset,
                    distance: m.distance,
                }));
            }
        }
        match logical {
            LogicalPlan::SubseqRange { .. } => {
                all.sort_by_key(|m| (m.series, m.offset));
            }
            LogicalPlan::SubseqKnn { k, .. } => {
                all.sort_by(|a, b| {
                    a.distance
                        .total_cmp(&b.distance)
                        .then((a.series, a.offset).cmp(&(b.series, b.offset)))
                });
                all.truncate(*k);
            }
            _ => unreachable!("execute_subseq handles subsequence forms only"),
        }
        outcome.finish(PlanRows::Windows(all))
    }

    fn execute_join(
        &self,
        logical: &LogicalPlan,
        eps: f64,
        t: &LinearTransform,
        hint: Option<JoinHint>,
        pref: PlanPreference,
        scatter: usize,
    ) -> Result<ShardedOutcome> {
        if t.warp() > 1 {
            return Err(Error::Unsupported("self-join under time warp".to_string()));
        }
        let worklist = self.active_shards(logical);
        let ran: Vec<Option<Result<(PlanChoice, PlanRows, ExecStats)>>> =
            parallel_map(scatter.max(1), worklist, |slot| {
                slot.map(|s| {
                    let choice = Planner::new(&self.parts[s], &self.stats[s])
                        .with_preference(pref)
                        .plan(logical, None)?;
                    let (rows, exec) = execute_plan(logical, &choice.plan, &self.parts[s], None)?;
                    Ok((choice, rows, exec))
                })
            });
        let mut outcome = self.collect(ran)?;
        // Local pairs, remapped to global ids. The order-preserving
        // local→global embedding keeps canonical `a < b` orientation.
        let mut pairs: Vec<JoinPair> = Vec::new();
        for (s, rows) in outcome.shard_rows.drain(..).enumerate() {
            if let Some(PlanRows::Pairs(local)) = rows {
                pairs.extend(local.into_iter().map(|p| JoinPair {
                    a: self.map.to_global(s, p.a),
                    b: self.map.to_global(s, p.b),
                    distance: p.distance,
                }));
            }
        }
        // Cross-shard stage. Directed hints (USING INDEX / TREE) keep the
        // paper's twice-per-pair accounting by probing every ordered
        // shard pair; undirected answers probe each unordered pair once.
        let directed = matches!(hint, Some(JoinHint::Index) | Some(JoinHint::Tree));
        let scan_cross = matches!(hint, Some(JoinHint::Scan) | Some(JoinHint::ScanFull))
            || (hint.is_none() && pref == PlanPreference::ForceScan);
        let active: Vec<usize> = (0..self.parts.len())
            .filter(|&s| !self.parts[s].is_empty())
            .collect();
        for (ai, &sa) in active.iter().enumerate() {
            for &sb in &active[ai + 1..] {
                if scan_cross {
                    self.cross_scan(sa, sb, eps, t, &mut pairs, &mut outcome.per_shard[sa])?;
                } else {
                    self.cross_probe(
                        sa,
                        sb,
                        eps,
                        t,
                        directed,
                        &mut pairs,
                        &mut outcome.per_shard[sa],
                    )?;
                    if directed {
                        let exec = &mut outcome.per_shard[sb];
                        self.cross_probe(sb, sa, eps, t, directed, &mut pairs, exec)?;
                    }
                }
            }
        }
        pairs.sort_by_key(|p| (p.a, p.b));
        outcome.finish(PlanRows::Pairs(pairs))
    }

    /// Brute-force cross-shard scan: one early-abandoning exact check per
    /// cross pair, so the merged counters sum to the unsharded scan's
    /// `C(n, 2)` accounting exactly. Emits each unordered pair once,
    /// oriented `a < b` in global ids.
    fn cross_scan(
        &self,
        sa: usize,
        sb: usize,
        eps: f64,
        t: &LinearTransform,
        pairs: &mut Vec<JoinPair>,
        exec: &mut ExecStats,
    ) -> Result<()> {
        let pa = &self.parts[sa];
        let pb = &self.parts[sb];
        for i in 0..pa.len() {
            let qf = pa.transformed_features(i, t)?;
            let gi = self.map.to_global(sa, i);
            for j in 0..pb.len() {
                exec.candidates += 1;
                exec.refined += 1;
                match pb.exact_distance_bounded(j, t, &qf, eps) {
                    Some(distance) => {
                        let gj = self.map.to_global(sb, j);
                        pairs.push(JoinPair {
                            a: gi.min(gj),
                            b: gi.max(gj),
                            distance,
                        });
                    }
                    None => exec.false_hits += 1,
                }
            }
        }
        Ok(())
    }

    /// Index-probing cross stage: every series of shard `sa` runs one
    /// transformed range probe against shard `sb`'s index (the paper's
    /// join method (d), pointed across shards). Directed mode emits
    /// `(probe, partner)`; undirected emits each pair oriented `a < b`.
    #[allow(clippy::too_many_arguments)]
    fn cross_probe(
        &self,
        sa: usize,
        sb: usize,
        eps: f64,
        t: &LinearTransform,
        directed: bool,
        pairs: &mut Vec<JoinPair>,
        exec: &mut ExecStats,
    ) -> Result<()> {
        let pa = &self.parts[sa];
        let pb = &self.parts[sb];
        let window = QueryWindow::default();
        for i in 0..pa.len() {
            let qf = pa.transformed_features(i, t)?;
            let gi = self.map.to_global(sa, i);
            let (mut ids, fstats) = pb.filter_candidates(&qf, eps, t, &window)?;
            ids.sort_unstable();
            exec.nodes_visited += fstats.nodes_visited;
            exec.pool_hits += fstats.pool_hits;
            exec.pool_misses += fstats.pool_misses;
            exec.disk_accesses += fstats.nodes_visited + ids.len() as u64;
            exec.candidates += ids.len();
            for j in ids {
                exec.refined += 1;
                match pb.exact_distance_bounded(j, t, &qf, eps) {
                    Some(distance) => {
                        let gj = self.map.to_global(sb, j);
                        let (a, b) = if directed {
                            (gi, gj)
                        } else {
                            (gi.min(gj), gi.max(gj))
                        };
                        pairs.push(JoinPair { a, b, distance });
                    }
                    None => exec.false_hits += 1,
                }
            }
        }
        Ok(())
    }

    /// Folds raw scatter results into a partially-built outcome: first
    /// error (in shard order) wins, counters and plans line up by shard.
    fn collect(
        &self,
        ran: Vec<Option<Result<(PlanChoice, PlanRows, ExecStats)>>>,
    ) -> Result<PartialOutcome> {
        let mut per_shard = vec![ExecStats::default(); self.parts.len()];
        let mut per_shard_rows = vec![0usize; self.parts.len()];
        let mut plans: Vec<Option<PlanChoice>> = vec![None; self.parts.len()];
        let mut shard_rows: Vec<Option<PlanRows>> = Vec::with_capacity(self.parts.len());
        for (s, slot) in ran.into_iter().enumerate() {
            match slot {
                None => shard_rows.push(None),
                Some(Err(e)) => return Err(e),
                Some(Ok((choice, rows, exec))) => {
                    per_shard[s] = exec;
                    per_shard_rows[s] = rows.len();
                    plans[s] = Some(choice);
                    shard_rows.push(Some(rows));
                }
            }
        }
        Ok(PartialOutcome {
            per_shard,
            per_shard_rows,
            plans,
            shard_rows,
        })
    }
}

/// Scatter results before the typed merge.
struct PartialOutcome {
    per_shard: Vec<ExecStats>,
    per_shard_rows: Vec<usize>,
    plans: Vec<Option<PlanChoice>>,
    shard_rows: Vec<Option<PlanRows>>,
}

impl PartialOutcome {
    fn finish(self, rows: PlanRows) -> Result<ShardedOutcome> {
        let merged = ExecStats::sum(&self.per_shard);
        Ok(ShardedOutcome {
            rows,
            merged,
            per_shard: self.per_shard,
            per_shard_rows: self.per_shard_rows,
            plans: self.plans,
        })
    }
}

/// Renders a sharded `EXPLAIN` tree: the logical header, the sharding
/// layout, then each shard's relation line, chosen operator, and
/// considered alternatives (skipped empty shards are marked).
pub fn render_sharded_plan(
    logical: &LogicalPlan,
    sharded: &ShardedIndex,
    plans: &[Option<PlanChoice>],
) -> String {
    let mut out = String::new();
    let mut header_done = false;
    for (s, slot) in plans.iter().enumerate() {
        let Some(choice) = slot else {
            continue;
        };
        let body = render_plan(logical, choice, &sharded.shard_stats()[s]);
        let mut lines = body.splitn(2, '\n');
        let header = lines.next().unwrap_or("");
        let rest = lines.next().unwrap_or("");
        if !header_done {
            out.push_str(header);
            out.push('\n');
            let spec = sharded.map().spec();
            out.push_str(&format!(
                "  sharded: {} shard(s) by {}, scatter-gather merge\n",
                spec.count(),
                spec.by().name()
            ));
            header_done = true;
        }
        out.push_str(&format!("  shard {s}:\n"));
        for line in rest.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    for (s, slot) in plans.iter().enumerate() {
        if slot.is_none() {
            out.push_str(&format!("  shard {s}: empty, skipped\n"));
        }
    }
    out
}

/// Appends the sharded `EXPLAIN ANALYZE` counters: one per-shard actual
/// line each, then the exact-sum total.
pub fn render_sharded_analyze(rendered: &mut String, rows: usize, outcome: &ShardedOutcome) {
    for (s, exec) in outcome.per_shard.iter().enumerate() {
        rendered.push_str(&format!(
            "     shard {s} actual: rows={}, nodes={}, candidates={}, refined={}, false_hits={}, disk={}\n",
            outcome.per_shard_rows[s],
            exec.nodes_visited,
            exec.candidates,
            exec.refined,
            exec.false_hits,
            exec.disk_accesses,
        ));
        if exec.pool_hits + exec.pool_misses > 0 {
            rendered.push_str(&format!(
                "     shard {s} measured: pool_hits={}, pool_misses={}\n",
                exec.pool_hits, exec.pool_misses,
            ));
        }
    }
    let total = &outcome.merged;
    rendered.push_str(&format!(
        "     total actual: rows={rows}, nodes={}, candidates={}, refined={}, false_hits={}, disk={}\n",
        total.nodes_visited, total.candidates, total.refined, total.false_hits, total.disk_accesses,
    ));
    if total.pool_hits + total.pool_misses > 0 {
        rendered.push_str(&format!(
            "     total measured: pool_hits={}, pool_misses={}\n",
            total.pool_hits, total.pool_misses,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPreference;
    use tsq_series::generate::RandomWalkGenerator;

    fn relation(count: usize, len: usize, seed: u64) -> SeriesRelation {
        let series = RandomWalkGenerator::new(seed).relation(count, len);
        SeriesRelation::from_series("r", series).unwrap()
    }

    fn whole_index(rel: &SeriesRelation) -> SimilarityIndex {
        rel.index(IndexConfig::default()).unwrap()
    }

    fn range_logical(rel: &SeriesRelation, qid: usize, eps: f64) -> LogicalPlan {
        LogicalPlan::Range {
            relation: "r".into(),
            query: rel.get(qid).unwrap().clone(),
            eps,
            transform: LinearTransform::identity(rel.get(qid).unwrap().len()),
            window: QueryWindow::default(),
        }
    }

    #[test]
    fn hash_assignment_is_stable() {
        let spec = ShardSpec::hash(4).unwrap();
        for label in ["AAPL", "MSFT", "s17", ""] {
            assert_eq!(spec.assign(label), spec.assign(label));
            assert!(spec.assign(label) < 4);
        }
        assert!(ShardSpec::hash(0).is_err());
    }

    #[test]
    fn range_boundaries_partition_lexicographically() {
        let labels = ["a", "b", "c", "d", "e", "f"];
        let spec = ShardSpec::range(3, &labels).unwrap();
        let shards: Vec<usize> = labels.iter().map(|l| spec.assign(l)).collect();
        // Contiguous, non-decreasing assignment over sorted labels.
        for w in shards.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(shards[0], 0);
        assert_eq!(*shards.last().unwrap(), 2);
        // New labels route deterministically into the fixed boundaries.
        assert_eq!(spec.assign("aa"), 0);
        assert_eq!(spec.assign("zz"), 2);
    }

    #[test]
    fn shard_map_round_trips_members() {
        let labels: Vec<String> = (0..17).map(|i| format!("s{i}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let map = ShardMap::build(ShardSpec::hash(3).unwrap(), &refs);
        let members: Vec<Vec<usize>> = (0..3).map(|s| map.members(s).to_vec()).collect();
        let rebuilt = ShardMap::from_members(map.spec().clone(), members).unwrap();
        assert_eq!(map, rebuilt);
        for g in 0..17 {
            let (s, l) = map.owner(g).unwrap();
            assert_eq!(map.to_global(s, l), g);
        }
    }

    #[test]
    fn sharded_range_matches_unsharded() {
        let rel = relation(60, 32, 5);
        let whole = whole_index(&rel);
        let stats = RelationStats::from_index(&whole);
        for count in [1usize, 2, 3, 5] {
            let sharded = ShardedIndex::build(
                IndexConfig::default(),
                &rel,
                ShardSpec::hash(count).unwrap(),
            )
            .unwrap();
            for eps in [0.5, 2.0, 8.0] {
                let logical = range_logical(&rel, 7, eps);
                let choice = Planner::new(&whole, &stats).plan(&logical, None).unwrap();
                let (want, _) = execute_plan(&logical, &choice.plan, &whole, None).unwrap();
                let got = sharded
                    .execute(&logical, PlanPreference::Auto, 4, None)
                    .unwrap();
                assert_eq!(got.rows, want, "count={count} eps={eps}");
            }
        }
    }

    #[test]
    fn sharded_scan_stats_sum_exactly() {
        let rel = relation(50, 32, 9);
        let whole = whole_index(&rel);
        let stats = RelationStats::from_index(&whole);
        let sharded =
            ShardedIndex::build(IndexConfig::default(), &rel, ShardSpec::hash(4).unwrap()).unwrap();
        let logical = range_logical(&rel, 3, 2.5);
        let choice = Planner::new(&whole, &stats)
            .with_preference(PlanPreference::ForceScan)
            .plan(&logical, None)
            .unwrap();
        let (want_rows, want_exec) = execute_plan(&logical, &choice.plan, &whole, None).unwrap();
        let got = sharded
            .execute(&logical, PlanPreference::ForceScan, 4, None)
            .unwrap();
        assert_eq!(got.rows, want_rows);
        assert_eq!(got.merged, want_exec, "scan counters sum exactly");
        assert_eq!(ExecStats::sum(&got.per_shard), got.merged);
    }

    #[test]
    fn sharded_knn_breaks_ties_like_unsharded() {
        // Duplicate series force exact distance ties across shards.
        let base = RandomWalkGenerator::new(11).relation(6, 32);
        let mut items = Vec::new();
        for (i, s) in base.iter().enumerate() {
            items.push((format!("a{i}"), s.clone()));
            items.push((format!("b{i}"), s.clone()));
        }
        let rel = SeriesRelation::from_labeled("r", items).unwrap();
        let whole = whole_index(&rel);
        let stats = RelationStats::from_index(&whole);
        let logical = LogicalPlan::Knn {
            relation: "r".into(),
            query: rel.get(0).unwrap().clone(),
            k: 5,
            transform: LinearTransform::identity(32),
        };
        let choice = Planner::new(&whole, &stats).plan(&logical, None).unwrap();
        let (want, _) = execute_plan(&logical, &choice.plan, &whole, None).unwrap();
        for count in [2usize, 3, 4] {
            let sharded = ShardedIndex::build(
                IndexConfig::default(),
                &rel,
                ShardSpec::hash(count).unwrap(),
            )
            .unwrap();
            let got = sharded
                .execute(&logical, PlanPreference::Auto, 2, None)
                .unwrap();
            assert_eq!(got.rows, want, "count={count}");
        }
    }

    #[test]
    fn sharded_join_matches_canonical_and_directed() {
        let rel = relation(40, 32, 13);
        let whole = whole_index(&rel);
        let stats = RelationStats::from_index(&whole);
        let t = LinearTransform::moving_average(32, 4);
        let sharded =
            ShardedIndex::build(IndexConfig::default(), &rel, ShardSpec::hash(3).unwrap()).unwrap();
        for hint in [None, Some(JoinHint::Scan), Some(JoinHint::Index)] {
            let logical = LogicalPlan::Join {
                relation: "r".into(),
                eps: 1.6,
                transform: t.clone(),
                hint,
            };
            let choice = Planner::new(&whole, &stats).plan(&logical, None).unwrap();
            let (want, want_exec) = execute_plan(&logical, &choice.plan, &whole, None).unwrap();
            let got = sharded
                .execute(&logical, PlanPreference::Auto, 3, None)
                .unwrap();
            assert_eq!(got.rows, want, "hint={hint:?}");
            if matches!(hint, Some(JoinHint::Scan)) {
                assert_eq!(got.merged, want_exec, "scan join counters sum exactly");
            }
        }
    }

    #[test]
    fn globally_ragged_relation_rejected() {
        // Each shard uniform at a different length: the per-shard gate
        // passes, only the global gate catches it.
        let items = vec![
            ("a0".to_string(), TimeSeries::from(vec![1.0; 16])),
            ("a1".to_string(), TimeSeries::from(vec![1.0; 32])),
        ];
        let rel = SeriesRelation::from_labeled("r", items).unwrap();
        let spec = ShardSpec::range(2, &["a0", "a1"]).unwrap();
        let sharded = ShardedIndex::build(IndexConfig::default(), &rel, spec).unwrap();
        assert_eq!(sharded.parts()[0].len(), 1);
        assert_eq!(sharded.parts()[1].len(), 1);
        let logical = LogicalPlan::Range {
            relation: "r".into(),
            query: TimeSeries::from(vec![0.0; 16]),
            eps: 1.0,
            transform: LinearTransform::identity(16),
            window: QueryWindow::default(),
        };
        assert!(matches!(
            sharded.execute(&logical, PlanPreference::Auto, 2, None),
            Err(Error::Ragged { min: 16, max: 32 })
        ));
    }

    #[test]
    fn appends_route_to_owning_shard() {
        let rel = relation(12, 16, 21);
        let mut sharded =
            ShardedIndex::build(IndexConfig::default(), &rel, ShardSpec::hash(3).unwrap()).unwrap();
        let before: Vec<usize> = sharded.parts().iter().map(SimilarityIndex::len).collect();
        // Extend an existing series through its global id.
        let (shard, local) = sharded.map().owner(5).unwrap();
        let old_len = sharded.parts()[shard].series(local).unwrap().len();
        sharded.extend_series_batch(&[(5, &[1.0, 2.0])]).unwrap();
        assert_eq!(
            sharded.parts()[shard].series(local).unwrap().len(),
            old_len + 2
        );
        // Push a brand-new series: exactly one shard grows.
        let (global, shard) = sharded
            .push_series("fresh", TimeSeries::from(vec![0.5; 16]))
            .unwrap();
        assert_eq!(global, 12);
        let after: Vec<usize> = sharded.parts().iter().map(SimilarityIndex::len).collect();
        for s in 0..3 {
            assert_eq!(after[s], before[s] + usize::from(s == shard));
        }
        assert_eq!(sharded.map().owner(global).unwrap().0, shard);
    }
}
