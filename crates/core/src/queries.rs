//! All-pairs (spatial join) queries — the paper's Table 1 experiment.
//!
//! Four strategies, mirroring methods (a)–(d) of Section 5, plus a
//! synchronized tree↔tree join as an extension:
//!
//! | method | strategy |
//! |--------|----------|
//! | (a) | [`SimilarityIndex::join_scan`] with [`ScanMode::Naive`] — scan all pairs, full distances |
//! | (b) | [`SimilarityIndex::join_scan`] with [`ScanMode::EarlyAbandon`] |
//! | (c) | [`SimilarityIndex::join_index`] with the identity transformation |
//! | (d) | [`SimilarityIndex::join_index`] with the transformation — a range query per sequence against the on-the-fly transformed index |
//! | (e) | [`SimilarityIndex::join_tree`] — synchronized R-tree join (extension) |
//!
//! Scan joins report each unordered pair **once**; index joins report each
//! pair **twice** (once per direction), exactly as the paper tabulates
//! (`12` for methods a/b vs `12 x 2 = 24` for method d).

use tsq_rtree::{spatial_join_with, SearchStats};

use crate::error::{Error, Result};
use crate::features::Features;
use crate::index::SimilarityIndex;
use crate::scan::ScanMode;
use crate::space::QueryWindow;
use crate::transform::LinearTransform;

/// One join answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// First series id.
    pub a: usize,
    /// Second series id.
    pub b: usize,
    /// Exact distance between the transformed representations.
    pub distance: f64,
}

/// Counters for a join run.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinStats {
    /// Exact distance computations.
    pub exact_checks: usize,
    /// Early-abandoned distance computations.
    pub abandoned: usize,
    /// Index traversal counters summed over sub-queries (zero for scans).
    pub index: SearchStats,
    /// Index-level candidates before exact checking.
    pub candidates: usize,
}

/// Join answer set plus statistics.
#[derive(Debug, Clone, Default)]
pub struct JoinOutcome {
    /// Qualifying pairs.
    pub pairs: Vec<JoinPair>,
    /// Counters.
    pub stats: JoinStats,
}

impl SimilarityIndex {
    /// Transformed feature point of a stored series (query side of join
    /// method (d): both the index *and* the search rectangle are
    /// transformed).
    pub fn transformed_features(&self, id: usize, t: &LinearTransform) -> Result<Features> {
        let f = self.features(id).ok_or(Error::UnknownSeries(id))?;
        let (ma, mb) = t.mean_map();
        let (sa, sb) = t.std_map();
        Ok(Features {
            mean: ma * f.mean + mb,
            std: sa * f.std + sb,
            spectrum: t.apply_spectrum(&f.spectrum),
        })
    }

    /// Table 1 methods (a)/(b): sequential-scan self-join. Every unordered
    /// pair `{i, j}` with `D(T(x_i), T(x_j)) <= eps` is reported once, with
    /// `a < b`.
    ///
    /// # Errors
    /// Warping transformations are rejected (a self-join between
    /// different-length representations is undefined).
    pub fn join_scan(&self, eps: f64, t: &LinearTransform, mode: ScanMode) -> Result<JoinOutcome> {
        if t.warp() > 1 {
            return Err(Error::Unsupported("self-join under time warp".to_string()));
        }
        self.check_uniform()?;
        if !self.is_empty() && t.n() != self.series_len() {
            return Err(Error::TransformArity {
                expected: self.series_len(),
                got: t.n(),
            });
        }
        // Transform every spectrum once; the quadratic pair loop dominates.
        let transformed: Vec<Vec<tsq_dft::Complex64>> = (0..self.len())
            .map(|id| t.apply_spectrum(&self.features(id).expect("valid id").spectrum))
            .collect();
        let mut out = JoinOutcome::default();
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                out.stats.exact_checks += 1;
                match mode {
                    ScanMode::Naive => {
                        let d =
                            tsq_dft::energy::euclidean_complex(&transformed[i], &transformed[j]);
                        if d <= eps {
                            out.pairs.push(JoinPair {
                                a: i,
                                b: j,
                                distance: d,
                            });
                        }
                    }
                    ScanMode::EarlyAbandon => {
                        match tsq_dft::energy::euclidean_complex_early_abandon(
                            &transformed[i],
                            &transformed[j],
                            eps,
                        ) {
                            Some(d) => out.pairs.push(JoinPair {
                                a: i,
                                b: j,
                                distance: d,
                            }),
                            None => out.stats.abandoned += 1,
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The single filter-and-refine back end shared by the index-nested-
    /// loop and synchronized tree joins: for one probe group `(i,
    /// partners)` the probe's transformed features are computed once, and
    /// every partner's exact distance is checked with early abandoning at
    /// `eps`. Every check counts toward `exact_checks`, abandoned checks
    /// toward `abandoned`, and self-pairs are refined (they are index
    /// candidates) but never emitted. Callers invoke it per probe, so
    /// candidate memory stays bounded by one probe's answer.
    fn refine_group(
        &self,
        eps: f64,
        t: &LinearTransform,
        probe: usize,
        partners: &[usize],
        out: &mut JoinOutcome,
    ) -> Result<()> {
        let qf = self.transformed_features(probe, t)?;
        for &j in partners {
            out.stats.exact_checks += 1;
            match self.exact_distance_bounded(j, t, &qf, eps) {
                Some(d) if j != probe => out.pairs.push(JoinPair {
                    a: probe,
                    b: j,
                    distance: d,
                }),
                Some(_) => {}
                None => out.stats.abandoned += 1,
            }
        }
        Ok(())
    }

    /// Table 1 methods (c)/(d): index-nested-loop self-join. For every
    /// sequence a search rectangle is built (around its *transformed*
    /// feature point) and posed to the on-the-fly transformed index as a
    /// range query. Pass the identity transformation for method (c).
    ///
    /// Each qualifying unordered pair appears twice (`(i, j)` and
    /// `(j, i)`), matching the paper's `12 x 2 = 24` accounting.
    pub fn join_index(&self, eps: f64, t: &LinearTransform) -> Result<JoinOutcome> {
        if t.warp() > 1 {
            return Err(Error::Unsupported("self-join under time warp".to_string()));
        }
        Error::check_threshold(eps)?;
        self.check_transform(t)?;
        let mut out = JoinOutcome::default();
        let window = QueryWindow::default();
        for i in 0..self.len() {
            let qf = self.transformed_features(i, t)?;
            let (mut ids, fstats) = self.filter_candidates(&qf, eps, t, &window)?;
            ids.sort_unstable();
            out.stats.index.absorb(&fstats);
            out.stats.candidates += ids.len();
            self.refine_group(eps, t, i, &ids, &mut out)?;
        }
        Ok(out)
    }

    /// Synchronized tree↔tree self-join (extension beyond the paper's
    /// index-nested-loop): both subtrees are pruned simultaneously using
    /// transformed-MBR distance bounds (annular-sector geometry in
    /// `S_pol`). Answer semantics match [`SimilarityIndex::join_index`].
    pub fn join_tree(&self, eps: f64, t: &LinearTransform) -> Result<JoinOutcome> {
        if t.warp() > 1 {
            return Err(Error::Unsupported("self-join under time warp".to_string()));
        }
        Error::check_threshold(eps)?;
        self.check_transform(t)?;
        let schema = self.config().schema;
        let space = self.config().space;
        let mut out = JoinOutcome::default();
        let mut candidate_pairs: Vec<(usize, usize)> = Vec::new();
        let stats = match self.paged() {
            // Paged traversal: node memory is recycled by the buffer pool,
            // so rectangle addresses are not stable keys — transform each
            // MBR on use. The bound values (and therefore the pruning and
            // the counters) are identical to the memoized in-memory path.
            Some(paged) => paged.self_join_with(
                |ra, rb| {
                    space.pair_lower_bound_pretransformed(
                        &space.transform_mbr(ra, t, schema),
                        &space.transform_mbr(rb, t, schema),
                        schema,
                    )
                },
                eps,
                |_, ia, _, ib| candidate_pairs.push((ia as usize, ib as usize)),
            )?,
            None => {
                // The synchronized join revisits the same node MBRs many
                // times (once per pairing); memoize their transformed
                // images by address. Stored rectangles are pinned for the
                // duration of the traversal, so the address is a stable
                // key.
                let mut cache: std::collections::HashMap<usize, tsq_rtree::Rect> =
                    std::collections::HashMap::new();
                let mut transformed = |r: &tsq_rtree::Rect| -> tsq_rtree::Rect {
                    cache
                        .entry(r as *const tsq_rtree::Rect as usize)
                        .or_insert_with(|| space.transform_mbr(r, t, schema))
                        .clone()
                };
                spatial_join_with(
                    self.tree(),
                    self.tree(),
                    |ra, rb| {
                        space.pair_lower_bound_pretransformed(
                            &transformed(ra),
                            &transformed(rb),
                            schema,
                        )
                    },
                    eps,
                    |_, &ia, _, &ib| candidate_pairs.push((ia, ib)),
                )
            }
        };
        out.stats.index = stats;
        out.stats.candidates = candidate_pairs.len();
        // Feed runs of same-probe candidates to the shared refine path
        // (one transformed-feature computation per probe).
        candidate_pairs.sort_unstable();
        let mut at = 0;
        while at < candidate_pairs.len() {
            let probe = candidate_pairs[at].0;
            let end = at + candidate_pairs[at..].partition_point(|&(i, _)| i == probe);
            let partners: Vec<usize> = candidate_pairs[at..end].iter().map(|&(_, j)| j).collect();
            self.refine_group(eps, t, probe, &partners, &mut out)?;
            at = end;
        }
        out.pairs.sort_by_key(|p| (p.a, p.b));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::space::SpaceKind;
    use tsq_series::generate::{RandomWalkGenerator, StockGenerator};

    fn index(count: usize, len: usize, seed: u64) -> SimilarityIndex {
        let rel = RandomWalkGenerator::new(seed).relation(count, len);
        SimilarityIndex::build(IndexConfig::default(), rel).unwrap()
    }

    fn key_once(pairs: &[JoinPair]) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        v.sort_unstable();
        v
    }

    fn key_undirected(pairs: &[JoinPair]) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> =
            pairs.iter().map(|p| (p.a.min(p.b), p.a.max(p.b))).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn scan_modes_agree_on_pairs() {
        let idx = index(40, 32, 31);
        let t = LinearTransform::moving_average(32, 4);
        let a = idx.join_scan(1.5, &t, ScanMode::Naive).unwrap();
        let b = idx.join_scan(1.5, &t, ScanMode::EarlyAbandon).unwrap();
        assert_eq!(key_once(&a.pairs), key_once(&b.pairs));
        assert!(b.stats.abandoned > 0);
    }

    #[test]
    fn index_join_doubles_scan_answer() {
        // The paper's accounting: method (d) reports each pair twice.
        let idx = index(60, 32, 32);
        let t = LinearTransform::moving_average(32, 4);
        let eps = 1.8;
        let scan = idx.join_scan(eps, &t, ScanMode::Naive).unwrap();
        let via_index = idx.join_index(eps, &t).unwrap();
        assert_eq!(via_index.pairs.len(), 2 * scan.pairs.len());
        assert_eq!(key_undirected(&via_index.pairs), key_once(&scan.pairs));
    }

    #[test]
    fn tree_join_matches_index_join() {
        let idx = index(70, 32, 33);
        let t = LinearTransform::moving_average(32, 5);
        let eps = 1.6;
        let a = idx.join_index(eps, &t).unwrap();
        let b = idx.join_tree(eps, &t).unwrap();
        assert_eq!(key_once(&a.pairs), key_once(&b.pairs));
    }

    #[test]
    fn tree_join_rectangular_space() {
        let rel = RandomWalkGenerator::new(34).relation(50, 32);
        let cfg = IndexConfig {
            space: SpaceKind::Rectangular,
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, rel).unwrap();
        let t = LinearTransform::reverse(32);
        let eps = 2.5;
        let a = idx.join_index(eps, &t).unwrap();
        let b = idx.join_tree(eps, &t).unwrap();
        assert_eq!(key_once(&a.pairs), key_once(&b.pairs));
        let scan = idx.join_scan(eps, &t, ScanMode::EarlyAbandon).unwrap();
        assert_eq!(key_undirected(&a.pairs), key_once(&scan.pairs));
    }

    #[test]
    fn identity_join_is_method_c() {
        // Method (c) finds *untransformed* close pairs — typically fewer
        // than the smoothed (d) answer on stock-like data.
        let rel = StockGenerator::new(35).relation(80, 64);
        let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
        let eps = 2.0;
        let c = idx.join_index(eps, &LinearTransform::identity(64)).unwrap();
        let d = idx
            .join_index(eps, &LinearTransform::moving_average(64, 20))
            .unwrap();
        assert!(
            d.pairs.len() >= c.pairs.len(),
            "smoothing admits at least as many pairs ({} vs {})",
            d.pairs.len(),
            c.pairs.len()
        );
    }

    #[test]
    fn warp_join_rejected() {
        let idx = index(10, 16, 36);
        let t = LinearTransform::time_warp(16, 2);
        assert!(matches!(
            idx.join_scan(1.0, &t, ScanMode::Naive),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            idx.join_index(1.0, &t),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(idx.join_tree(1.0, &t), Err(Error::Unsupported(_))));
    }

    #[test]
    fn ragged_join_rejected() {
        let mut idx = index(10, 32, 37);
        idx.insert(RandomWalkGenerator::new(38).series(16)).unwrap();
        let t = LinearTransform::identity(32);
        for result in [
            idx.join_scan(1.0, &t, ScanMode::Naive).map(|_| ()),
            idx.join_index(1.0, &t).map(|_| ()),
            idx.join_tree(1.0, &t).map(|_| ()),
        ] {
            assert!(matches!(result, Err(Error::Ragged { min: 16, max: 32 })));
        }
    }

    #[test]
    fn empty_join() {
        let idx = SimilarityIndex::build(IndexConfig::default(), Vec::new()).unwrap();
        let t = LinearTransform::identity(0);
        let out = idx.join_scan(1.0, &t, ScanMode::Naive).unwrap();
        assert!(out.pairs.is_empty());
    }
}
