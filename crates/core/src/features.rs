//! Feature extraction: time series → point in a low-dimensional feature
//! space (Section 3.1 / Section 5 of the paper).
//!
//! Two schemas are supported:
//!
//! - [`FeatureSchema::NormalForm`] — the paper's Section-5 layout: the mean
//!   and standard deviation of the original series occupy the first two
//!   index dimensions, and the first `k` non-trivial DFT coefficients of
//!   the **normal form** (whose `X_0` is always zero and is dropped) occupy
//!   the rest, two dimensions per coefficient.
//! - [`FeatureSchema::Raw`] — the original AFS93 layout: the first `k` DFT
//!   coefficients of the raw series.

use tsq_dft::{Complex64, FftPlanner};
use tsq_series::{NormalForm, TimeSeries};

use crate::error::{Error, Result};

/// Which representation the index stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSchema {
    /// `[mean, std]` + coefficients `X_1..X_k` of the normal form
    /// (the paper's experimental layout; `k = 2` gives the paper's
    /// 6-dimensional index).
    NormalForm {
        /// Number of normal-form coefficients kept (`X_1..X_k`).
        k: usize,
    },
    /// Coefficients `X_0..X_{k-1}` of the raw series (AFS93).
    Raw {
        /// Number of coefficients kept.
        k: usize,
    },
}

impl FeatureSchema {
    /// Number of complex coefficients kept in the index.
    pub fn k(&self) -> usize {
        match self {
            FeatureSchema::NormalForm { k } | FeatureSchema::Raw { k } => *k,
        }
    }

    /// Number of real index dimensions.
    pub fn dims(&self) -> usize {
        match self {
            FeatureSchema::NormalForm { k } => 2 + 2 * k,
            FeatureSchema::Raw { k } => 2 * k,
        }
    }

    /// Number of auxiliary (mean/std) dimensions preceding the coefficient
    /// blocks.
    pub fn aux_dims(&self) -> usize {
        match self {
            FeatureSchema::NormalForm { .. } => 2,
            FeatureSchema::Raw { .. } => 0,
        }
    }

    /// Spectrum indices of the kept coefficients, in index order.
    pub fn coeff_indices(&self) -> std::ops::Range<usize> {
        match self {
            FeatureSchema::NormalForm { k } => 1..(k + 1),
            FeatureSchema::Raw { k } => 0..*k,
        }
    }

    /// Validates the cut-off against a series length.
    pub fn validate(&self, n: usize) -> Result<()> {
        let k = self.k();
        let max = match self {
            FeatureSchema::NormalForm { .. } => n.saturating_sub(1),
            FeatureSchema::Raw { .. } => n,
        };
        if k == 0 || k > max {
            return Err(Error::InvalidCutoff { k, n });
        }
        Ok(())
    }
}

/// The extracted features of one series: summary statistics plus the *full*
/// spectrum of the indexed representation. The index uses only the first
/// `k` coefficients; post-processing (Algorithm 2, step 3) uses the rest to
/// compute exact distances.
#[derive(Debug, Clone, PartialEq)]
pub struct Features {
    /// Mean of the original series.
    pub mean: f64,
    /// Population standard deviation of the original series.
    pub std: f64,
    /// Unitary DFT of the indexed representation (normal form or raw).
    pub spectrum: Vec<Complex64>,
}

impl Features {
    /// Extracts features according to `schema`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidCutoff`] when the schema's `k` does not fit
    /// the series length.
    pub fn extract(
        series: &TimeSeries,
        schema: FeatureSchema,
        planner: &mut FftPlanner,
    ) -> Result<Features> {
        schema.validate(series.len())?;
        match schema {
            FeatureSchema::NormalForm { .. } => {
                let nf = NormalForm::of(series);
                let spectrum = planner.dft_real(nf.series.values());
                Ok(Features {
                    mean: nf.mean,
                    std: nf.std,
                    spectrum,
                })
            }
            FeatureSchema::Raw { .. } => {
                let spectrum = planner.dft_real(series.values());
                Ok(Features {
                    mean: series.mean(),
                    std: series.std(),
                    spectrum,
                })
            }
        }
    }

    /// The indexed coefficients (a slice of the spectrum).
    pub fn indexed_coeffs(&self, schema: FeatureSchema) -> &[Complex64] {
        let r = schema.coeff_indices();
        &self.spectrum[r]
    }

    /// Series length this feature vector came from.
    pub fn n(&self) -> usize {
        self.spectrum.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::from([36.0, 38.0, 40.0, 38.0, 42.0, 38.0, 36.0, 36.0])
    }

    #[test]
    fn schema_dimensions() {
        let nf = FeatureSchema::NormalForm { k: 2 };
        assert_eq!(nf.dims(), 6, "the paper's 6-d index");
        assert_eq!(nf.aux_dims(), 2);
        assert_eq!(nf.coeff_indices(), 1..3);
        let raw = FeatureSchema::Raw { k: 3 };
        assert_eq!(raw.dims(), 6);
        assert_eq!(raw.aux_dims(), 0);
        assert_eq!(raw.coeff_indices(), 0..3);
    }

    #[test]
    fn normal_form_features() {
        let mut planner = FftPlanner::new();
        let s = series();
        let f = Features::extract(&s, FeatureSchema::NormalForm { k: 2 }, &mut planner).unwrap();
        assert!((f.mean - s.mean()).abs() < 1e-12);
        assert!((f.std - s.std()).abs() < 1e-12);
        // X_0 of a normal form is zero.
        assert!(f.spectrum[0].abs() < 1e-10);
        assert_eq!(
            f.indexed_coeffs(FeatureSchema::NormalForm { k: 2 }).len(),
            2
        );
    }

    #[test]
    fn raw_features_keep_dc() {
        let mut planner = FftPlanner::new();
        let s = series();
        let f = Features::extract(&s, FeatureSchema::Raw { k: 2 }, &mut planner).unwrap();
        // X_0 = sqrt(n) * mean.
        let expect = (8f64).sqrt() * s.mean();
        assert!((f.spectrum[0].re - expect).abs() < 1e-9);
        assert!(f.spectrum[0].im.abs() < 1e-9);
    }

    #[test]
    fn cutoff_validation() {
        let mut planner = FftPlanner::new();
        let s = TimeSeries::from([1.0, 2.0, 3.0]);
        assert!(Features::extract(&s, FeatureSchema::NormalForm { k: 2 }, &mut planner).is_ok());
        assert!(matches!(
            Features::extract(&s, FeatureSchema::NormalForm { k: 3 }, &mut planner),
            Err(Error::InvalidCutoff { .. })
        ));
        assert!(Features::extract(&s, FeatureSchema::Raw { k: 3 }, &mut planner).is_ok());
        assert!(matches!(
            Features::extract(&s, FeatureSchema::Raw { k: 0 }, &mut planner),
            Err(Error::InvalidCutoff { .. })
        ));
    }

    #[test]
    fn constant_series_features() {
        let mut planner = FftPlanner::new();
        let s = TimeSeries::from([5.0, 5.0, 5.0, 5.0]);
        let f = Features::extract(&s, FeatureSchema::NormalForm { k: 2 }, &mut planner).unwrap();
        assert_eq!(f.std, 0.0);
        for c in &f.spectrum {
            assert!(c.abs() < 1e-12);
        }
    }
}
