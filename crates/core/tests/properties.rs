//! Property-based tests of the query engine's central guarantees.

use proptest::prelude::*;
use tsq_core::{
    FeatureSchema, IndexConfig, LinearTransform, QueryWindow, ScanMode, SimilarityIndex, SpaceKind,
    SubseqConfig, SubseqIndex,
};
use tsq_series::TimeSeries;

/// A relation of bounded random series plus a query index.
fn relation_strategy() -> impl Strategy<Value = (Vec<TimeSeries>, usize)> {
    (4usize..40, 8usize..33).prop_flat_map(|(count, len)| {
        (
            prop::collection::vec(
                prop::collection::vec(-100.0f64..100.0, len..=len).prop_map(TimeSeries::new),
                count..=count,
            ),
            0..count,
        )
    })
}

/// An arbitrary polar-safe transformation for length `n`.
fn polar_transform(n: usize, pick: u8, param: usize, scale: f64) -> LinearTransform {
    match pick % 6 {
        0 => LinearTransform::identity(n),
        1 => LinearTransform::moving_average(n, 1 + param % (n / 2).max(1)),
        2 => LinearTransform::reverse(n),
        3 => LinearTransform::scale(n, scale),
        4 => LinearTransform::difference(n),
        _ => LinearTransform::moving_average(n, 1 + param % (n / 2).max(1))
            .then(&LinearTransform::reverse(n))
            .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 1 end-to-end: indexed answers equal scan answers for random
    /// data, random transformations and random thresholds (polar space).
    #[test]
    fn no_false_dismissals_polar((rel, qid) in relation_strategy(),
                                 pick in 0u8..6,
                                 param in 0usize..32,
                                 scale in -3.0f64..3.0,
                                 eps in 0.0f64..50.0) {
        let n = rel[0].len();
        let idx = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let t = polar_transform(n, pick, param, scale);
        let q = rel[qid].clone();
        let (scan, _) = idx.scan_range(&q, eps, &t, ScanMode::Naive).unwrap();
        let (indexed, _) = idx.range_query(&q, eps, &t, &QueryWindow::default()).unwrap();
        prop_assert_eq!(scan, indexed);
    }

    /// Same property in the rectangular space with rect-safe transforms.
    #[test]
    fn no_false_dismissals_rect((rel, qid) in relation_strategy(),
                                pick in 0u8..3,
                                c in -3.0f64..3.0,
                                eps in 0.0f64..50.0) {
        let n = rel[0].len();
        let cfg = IndexConfig { space: SpaceKind::Rectangular, ..IndexConfig::default() };
        let idx = SimilarityIndex::build(cfg, rel.clone()).unwrap();
        let t = match pick % 3 {
            0 => LinearTransform::identity(n),
            1 => LinearTransform::reverse(n),
            _ => LinearTransform::scale(n, c),
        };
        let q = rel[qid].clone();
        let (scan, _) = idx.scan_range(&q, eps, &t, ScanMode::Naive).unwrap();
        let (indexed, _) = idx.range_query(&q, eps, &t, &QueryWindow::default()).unwrap();
        prop_assert_eq!(scan, indexed);
    }

    /// KNN distances equal brute-force distances under random transforms.
    #[test]
    fn knn_equals_scan((rel, qid) in relation_strategy(),
                       pick in 0u8..6,
                       param in 0usize..32,
                       k in 1usize..10) {
        let n = rel[0].len();
        let idx = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let t = polar_transform(n, pick, param, 1.5);
        let q = rel[qid].clone();
        let (got, _) = idx.knn_query(&q, k, &t).unwrap();
        let want = idx.scan_knn(&q, k, &t).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.distance - w.distance).abs() < 1e-6);
        }
    }

    /// Raw schema: prefix distances are true lower bounds, so indexed
    /// queries match scans there too.
    #[test]
    fn no_false_dismissals_raw_schema((rel, qid) in relation_strategy(),
                                      eps in 0.0f64..100.0) {
        let n = rel[0].len();
        let cfg = IndexConfig {
            schema: FeatureSchema::Raw { k: 3.min(n) },
            ..IndexConfig::default()
        };
        let idx = SimilarityIndex::build(cfg, rel.clone()).unwrap();
        let t = LinearTransform::identity(n);
        let q = rel[qid].clone();
        let (scan, _) = idx.scan_range(&q, eps, &t, ScanMode::Naive).unwrap();
        let (indexed, _) = idx.range_query(&q, eps, &t, &QueryWindow::default()).unwrap();
        prop_assert_eq!(scan, indexed);
    }

    /// Join symmetry: the index join reports (i, j) iff it reports (j, i),
    /// and the undirected pair set equals the scan join's.
    #[test]
    fn join_symmetry((rel, _) in relation_strategy(),
                     param in 0usize..16,
                     eps in 0.0f64..10.0) {
        let n = rel[0].len();
        let idx = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
        let t = LinearTransform::moving_average(n, 1 + param % (n / 2).max(1));
        let via_index = idx.join_index(eps, &t).unwrap();
        let mut directed: Vec<(usize, usize)> =
            via_index.pairs.iter().map(|p| (p.a, p.b)).collect();
        directed.sort_unstable();
        for &(a, b) in &directed {
            prop_assert!(directed.binary_search(&(b, a)).is_ok(),
                "pair ({a},{b}) present but ({b},{a}) missing");
        }
        let scan = idx.join_scan(eps, &t, ScanMode::EarlyAbandon).unwrap();
        let mut undirected: Vec<(usize, usize)> = directed
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        undirected.sort_unstable();
        undirected.dedup();
        let mut want: Vec<(usize, usize)> = scan.pairs.iter().map(|p| (p.a, p.b)).collect();
        want.sort_unstable();
        prop_assert_eq!(undirected, want);
    }

    /// Transform composition is associative in its action on spectra.
    #[test]
    fn composition_associative(xs in prop::collection::vec(-50.0f64..50.0, 8..24),
                               w1 in 1usize..4, w2 in 1usize..4) {
        let n = xs.len();
        let t1 = LinearTransform::moving_average(n, w1.min(n));
        let t2 = LinearTransform::reverse(n);
        let t3 = LinearTransform::moving_average(n, w2.min(n));
        let left = t1.then(&t2).unwrap().then(&t3).unwrap();
        let right = t1.then(&t2.then(&t3).unwrap()).unwrap();
        let mut planner = tsq_dft::FftPlanner::new();
        let spec = planner.dft_real(&xs);
        let a = left.apply_spectrum(&spec);
        let b = right.apply_spectrum(&spec);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((*x - *y).abs() < 1e-8);
        }
    }

    /// The exact engine distance under a transformation agrees with the
    /// literal definition: transform in the frequency domain, invert,
    /// measure in the time domain.
    #[test]
    fn engine_distance_matches_definition((rel, qid) in relation_strategy(),
                                          param in 0usize..16) {
        let n = rel[0].len();
        let idx = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let t = LinearTransform::moving_average(n, 1 + param % (n / 2).max(1));
        let q = rel[qid].clone();
        let qf = idx.query_features(&q, &t).unwrap();
        let mut planner = tsq_dft::FftPlanner::new();
        for id in 0..idx.len().min(5) {
            let engine = idx.exact_distance(id, &t, &qf);
            // Definition: circular moving average of the normal form of x,
            // compared to the normal form of q, in the time domain.
            let nf_x = tsq_series::normal::normal_form(idx.series(id).unwrap());
            let nf_q = tsq_series::normal::normal_form(&q);
            let smoothed = t.apply_time_domain(&mut planner, nf_x.values());
            let d: f64 = smoothed
                .iter()
                .zip(nf_q.values())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            prop_assert!((engine - d).abs() < 1e-6, "id {id}: {engine} vs {d}");
        }
    }

    /// Negative thresholds are rejected with the typed error — never a
    /// silently empty result — across both the whole-sequence and the
    /// subsequence query paths.
    #[test]
    fn negative_threshold_is_typed_error((rel, qid) in relation_strategy(),
                                         eps in -100.0f64..-1e-9) {
        let n = rel[0].len();
        let idx = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let t = LinearTransform::identity(n);
        let q = rel[qid].clone();
        prop_assert!(matches!(
            idx.range_query(&q, eps, &t, &QueryWindow::default()),
            Err(tsq_core::Error::NegativeThreshold { .. })
        ));
        let w = (n / 2).max(2);
        let sub = SubseqIndex::build(SubseqConfig::new(w), rel.clone()).unwrap();
        let sq = TimeSeries::new(q.values()[..w].to_vec());
        prop_assert!(matches!(
            sub.subseq_range(&sq, eps),
            Err(tsq_core::Error::NegativeThreshold { .. })
        ));
        prop_assert!(matches!(
            sub.scan_subseq_range(&sq, eps, ScanMode::Naive),
            Err(tsq_core::Error::NegativeThreshold { .. })
        ));
    }

    /// Degenerate windows are rejected at construction with the typed
    /// error, for every window below 2.
    #[test]
    fn degenerate_window_is_typed_error((rel, _) in relation_strategy(),
                                        window in 0usize..2) {
        prop_assert!(matches!(
            SubseqIndex::build(SubseqConfig::new(window), rel),
            Err(tsq_core::Error::InvalidWindow { .. })
        ));
    }

    /// Lemma 1 for subsequences: the ST-index range answer equals the
    /// naive sliding scan's on random relations and thresholds.
    #[test]
    fn subseq_no_false_dismissals((rel, qid) in relation_strategy(),
                                  offset in 0usize..16,
                                  eps in 0.0f64..80.0) {
        let n = rel[0].len();
        let w = (n / 2).max(2);
        let idx = SubseqIndex::build(SubseqConfig::new(w), rel.clone()).unwrap();
        let start = offset.min(n - w);
        let q = TimeSeries::new(rel[qid].values()[start..start + w].to_vec());
        let (indexed, _) = idx.subseq_range(&q, eps).unwrap();
        let (scan, _) = idx.scan_subseq_range(&q, eps, ScanMode::Naive).unwrap();
        prop_assert_eq!(indexed, scan);
    }
}
