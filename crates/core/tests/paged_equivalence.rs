//! Paged storage is an execution detail, never a semantic one: every
//! query on a paged [`SimilarityIndex`] answers byte-identically to the
//! in-memory index it was attached from — at a 1-page pool and an
//! unbounded pool — and the pool counters reported per query are exactly
//! the buffer pool's own.

use proptest::prelude::*;
use tsq_core::plan::{execute_plan, LogicalPlan, Planner, RelationStats};
use tsq_core::{IndexConfig, LinearTransform, QueryWindow, ScanMode, SimilarityIndex};
use tsq_series::generate::RandomWalkGenerator;

fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tsq-core-paged-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.pages"))
}

fn paged_copy(mem: &SimilarityIndex, tag: &str, capacity: usize) -> SimilarityIndex {
    let mut paged = mem.clone();
    paged.attach_paged(&temp_path(tag), capacity).unwrap();
    paged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Range, kNN and tree-join answers (and their traversal counters)
    /// are identical between memory and paged storage.
    #[test]
    fn queries_are_identical_across_storage_modes(
        count in 20usize..90,
        seed in 0u64..500,
        eps in 0.2f64..4.0,
        k in 1usize..8,
    ) {
        let rel = RandomWalkGenerator::new(seed).relation(count, 32);
        let mem = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
        let window = QueryWindow::default();
        for (ti, t) in [
            LinearTransform::identity(32),
            LinearTransform::moving_average(32, 4),
        ]
        .iter()
        .enumerate()
        {
            let (mem_range, mem_rs) = mem.range_query(&rel[0], eps, t, &window).unwrap();
            let (mem_knn, mem_ks) = mem.knn_query(&rel[1], k, t).unwrap();
            let mem_join = mem.join_tree(eps, t).unwrap();
            for capacity in [1usize, usize::MAX] {
                let paged = paged_copy(&mem, &format!("pq-{seed}-{ti}-{capacity}"), capacity);
                let (range, rs) = paged.range_query(&rel[0], eps, t, &window).unwrap();
                prop_assert_eq!(&range, &mem_range, "range capacity {}", capacity);
                prop_assert_eq!(rs.index.nodes_visited, mem_rs.index.nodes_visited);
                prop_assert_eq!(rs.candidates, mem_rs.candidates);
                prop_assert_eq!(rs.false_hits, mem_rs.false_hits);
                let (knn, ks) = paged.knn_query(&rel[1], k, t).unwrap();
                prop_assert_eq!(&knn, &mem_knn, "knn capacity {}", capacity);
                prop_assert_eq!(ks.index.nodes_visited, mem_ks.index.nodes_visited);
                prop_assert_eq!(ks.exact_checks, mem_ks.exact_checks);
                let join = paged.join_tree(eps, t).unwrap();
                prop_assert_eq!(&join.pairs, &mem_join.pairs, "join capacity {}", capacity);
                prop_assert_eq!(
                    join.stats.index.nodes_visited,
                    mem_join.stats.index.nodes_visited
                );
                prop_assert_eq!(join.stats.candidates, mem_join.stats.candidates);
                prop_assert_eq!(join.stats.exact_checks, mem_join.stats.exact_checks);
            }
        }
    }
}

/// The acceptance criterion: `EXPLAIN ANALYZE`'s measured `pool_misses`
/// equals the buffer pool's own counters exactly on index plans.
#[test]
fn plan_pool_counters_equal_the_pools_own_exactly() {
    let rel = RandomWalkGenerator::new(7).relation(400, 64);
    let mem = SimilarityIndex::build(IndexConfig::default(), rel.clone()).unwrap();
    // Planner statistics come from the in-memory tree, before attaching.
    let stats = RelationStats::from_index(&mem);
    let paged = paged_copy(&mem, "plan-exact", usize::MAX);
    let logical = LogicalPlan::Range {
        relation: "r".into(),
        query: rel[3].clone(),
        eps: 1.2,
        transform: LinearTransform::identity(64),
        window: QueryWindow::default(),
    };
    let choice = Planner::new(&paged, &stats).plan(&logical, None).unwrap();
    assert_eq!(choice.plan.op.name(), "IndexRange", "must be an index plan");
    let pool = paged.paged().unwrap().pool();

    // Cold run: every reported miss is a page actually read.
    let (h0, m0) = (pool.hits(), pool.misses());
    let (_, exec) = execute_plan(&logical, &choice.plan, &paged, None).unwrap();
    assert_eq!(exec.pool_misses, pool.misses() - m0);
    assert_eq!(exec.pool_hits, pool.hits() - h0);
    assert!(exec.pool_misses > 0, "cold pool must fault pages in");

    // Warm run: zero misses, and still exactly the pool's own counters.
    let (h1, m1) = (pool.hits(), pool.misses());
    let (_, warm) = execute_plan(&logical, &choice.plan, &paged, None).unwrap();
    assert_eq!(warm.pool_misses, pool.misses() - m1);
    assert_eq!(warm.pool_hits, pool.hits() - h1);
    assert_eq!(warm.pool_misses, 0, "fully warm pool must not fault");
    assert_eq!(warm.pool_hits, warm.nodes_visited);
}

/// Paged mode round-trips through snapshots: `write_to` reconstructs the
/// node structure from the page file byte-identically.
#[test]
fn paged_snapshot_is_byte_identical_to_memory_snapshot() {
    let rel = RandomWalkGenerator::new(21).relation(120, 32);
    let mem = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let mut enc_mem = tsq_store::Encoder::new();
    mem.write_to(&mut enc_mem).unwrap();
    let paged = paged_copy(&mem, "snapshot", 2);
    let mut enc_paged = tsq_store::Encoder::new();
    paged.write_to(&mut enc_paged).unwrap();
    assert_eq!(enc_mem.into_bytes(), enc_paged.into_bytes());
}

/// A paged relation is immutable: inserts are rejected with a typed
/// error, and scan strategies still work (they never touch the tree).
#[test]
fn paged_relation_rejects_inserts_but_scans_fine() {
    let rel = RandomWalkGenerator::new(3).relation(40, 32);
    let mem = SimilarityIndex::build(IndexConfig::default(), rel).unwrap();
    let mut paged = paged_copy(&mem, "readonly", 4);
    let extra = RandomWalkGenerator::new(99).series(32);
    assert!(matches!(
        paged.insert(extra),
        Err(tsq_core::Error::Unsupported(_))
    ));
    let t = LinearTransform::identity(32);
    let a = mem.join_scan(2.0, &t, ScanMode::EarlyAbandon).unwrap();
    let b = paged.join_scan(2.0, &t, ScanMode::EarlyAbandon).unwrap();
    assert_eq!(a.pairs, b.pairs);
}
