//! # tsq-store — durable snapshots for similarity-query catalogs
//!
//! A small, std-only binary format used to persist everything the engine
//! builds at registration time: relations (`TimeSeries` data), whole-match
//! R\*-trees (node structure preserved byte-identically, never rebuilt on
//! restore), and subsequence ST-index caches. Higher layers (`tsq-rtree`,
//! `tsq-core`, `tsq-lang`) encode their own types with the primitives here;
//! this crate owns only the three things every layer must agree on:
//!
//! 1. **Framing** ([`seal`] / [`unseal`]): a fixed header (magic, format
//!    version, endianness marker), a length-prefixed payload, and a CRC-32
//!    trailer over the payload. Corrupt, truncated, wrong-version and
//!    wrong-endian inputs are rejected with typed [`StoreError`]s — never a
//!    panic.
//! 2. **Primitive encoding** ([`Encoder`] / [`Decoder`]): little-endian
//!    fixed-width integers and IEEE-754 bit patterns (`f64` round-trips are
//!    bit-exact), length-prefixed byte strings, and allocation-guarded
//!    sequence headers (a corrupted length can never cause an outsized
//!    allocation, because declared lengths are validated against the bytes
//!    actually present before any reservation).
//! 3. **The error taxonomy** ([`StoreError`]): one typed vocabulary reused
//!    by every layer, convertible into `tsq_core::Error::Store` and the
//!    language-level error.
//!
//! The format is deliberately writer-canonical: encoding the same logical
//! value always produces the same bytes, so `save → open → save` is
//! byte-identical and snapshots diff cleanly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod error;
pub mod frame;

pub use codec::{Decoder, Encoder};
pub use crc::crc32;
pub use error::{StoreError, StoreResult};
pub use frame::{
    parse_header, read_payload, seal, unseal, write_file, FORMAT_VERSION, HEADER_LEN, MAGIC,
    TRAILER_LEN,
};
