//! The typed failure vocabulary of the snapshot format.

use std::fmt;

/// Why a snapshot could not be written or restored.
///
/// Restoration is *total*: every malformed input maps to one of these
/// variants. Reader code never indexes, slices, or allocates based on
/// unvalidated file contents, so corrupt bytes cannot panic or abort the
/// process — the fuzz suites flip arbitrary bits and assert exactly this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure (message preserved; the error is
    /// stringified so `StoreError` stays `Clone + PartialEq` like every
    /// other error in the workspace).
    Io(String),
    /// The file does not start with the snapshot magic bytes.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    /// The policy is strict: version `n` readers open version `<= n` files
    /// (today only version 1 exists), and never guess at future layouts.
    UnsupportedVersion {
        /// Version recorded in the file.
        got: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// The endianness marker is byte-swapped: the file was produced by a
    /// writer that emitted native big-endian words instead of the
    /// little-endian encoding the format mandates.
    WrongEndian,
    /// The payload's CRC-32 does not match the stored trailer — some bytes
    /// were altered between write and read.
    ChecksumMismatch {
        /// CRC recorded in the file trailer.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// The input ended before a declared field or length could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// The bytes were present but structurally invalid (impossible counts,
    /// non-finite geometry, dangling ids, invariant violations).
    Corrupt {
        /// What was invalid.
        context: String,
    },
    /// A restored relation's name is already registered in the target
    /// catalog. Restoration is atomic: nothing is merged when any name
    /// collides.
    DuplicateRelation {
        /// The colliding relation name.
        name: String,
    },
}

impl StoreError {
    /// Shorthand for a [`StoreError::Corrupt`] with formatted context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        StoreError::Corrupt {
            context: context.into(),
        }
    }

    /// Shorthand for a [`StoreError::Truncated`] with formatted context.
    pub fn truncated(context: impl Into<String>) -> Self {
        StoreError::Truncated {
            context: context.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "snapshot i/o error: {m}"),
            StoreError::BadMagic => write!(f, "not a tsq snapshot (bad magic bytes)"),
            StoreError::UnsupportedVersion { got, supported } => write!(
                f,
                "unsupported snapshot format version {got} (this build reads <= {supported})"
            ),
            StoreError::WrongEndian => {
                write!(f, "snapshot written with the wrong byte order (endianness marker mismatch)")
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: file says {stored:#010x}, payload hashes to {computed:#010x}"
            ),
            StoreError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            StoreError::Corrupt { context } => write!(f, "snapshot corrupt: {context}"),
            StoreError::DuplicateRelation { name } => write!(
                f,
                "snapshot relation {name:?} is already registered in this catalog"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Convenient result alias.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        let e = StoreError::UnsupportedVersion {
            got: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(StoreError::WrongEndian.to_string().contains("byte order"));
        let e = StoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(StoreError::truncated("tree node")
            .to_string()
            .contains("tree node"));
        assert!(StoreError::corrupt("bad rect")
            .to_string()
            .contains("bad rect"));
        let e = StoreError::DuplicateRelation {
            name: "walks".into(),
        };
        assert!(e.to_string().contains("walks"));
        let e: StoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StoreError::Io(ref m) if m.contains("gone")));
    }
}
