//! File framing: header, length-prefixed payload, CRC-32 trailer.
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------------------
//!      0     8  magic  "TSQSNAP\0"
//!      8     4  format version (u32, little-endian) — currently 3
//!     12     4  endianness marker 0x01020304 (little-endian on disk:
//!               bytes 04 03 02 01; a byte-swapped marker means the
//!               writer used the wrong byte order)
//!     16     8  payload length (u64, little-endian)
//!     24     n  payload (see the layer-specific layouts)
//!   24+n     4  chunked CRC-32 of the payload (see `chunked_crc32`)
//! ```
//!
//! [`unseal`] validates each field in order — magic, version, endianness,
//! length, checksum — and returns the payload slice; every failure is a
//! typed [`StoreError`]. Readers therefore never look at payload bytes
//! that have not already passed the checksum.
//!
//! The trailer is the *chunked* CRC-32 ([`chunked_crc32`]): per-1 MiB
//! digests combined with a final CRC, so sealing and unsealing large
//! snapshots hash on every available core without changing the stored
//! value.

use std::io::Write;
use std::path::Path;

use crate::crc::chunked_crc32;
use crate::error::{StoreError, StoreResult};

/// The snapshot magic bytes.
pub const MAGIC: &[u8; 8] = b"TSQSNAP\0";

/// Newest format version this build writes and reads. Version 3 added
/// the relation-kind byte (whole vs sharded) to catalog snapshots.
pub const FORMAT_VERSION: u32 = 3;

/// Endianness sentinel; on disk as little-endian bytes `04 03 02 01`.
const ENDIAN_MARKER: u32 = 0x0102_0304;

/// Header length in bytes (magic + version + endian marker + payload len).
/// Public so stream readers (the query service's wire protocol) can pull
/// exactly one header off a socket and validate it with [`parse_header`]
/// before allocating anything for the payload.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// Length of the CRC-32 trailer that follows every payload.
pub const TRAILER_LEN: usize = 4;

/// Validates a frame header (magic, version, endianness) and returns the
/// declared payload length — without touching any payload bytes.
///
/// This is the incremental half of [`unseal`] for readers that receive a
/// frame in pieces (e.g. off a socket): read [`HEADER_LEN`] bytes, call
/// `parse_header` to learn how many payload + trailer bytes follow, apply
/// an allocation cap, then hand the reassembled whole to [`unseal`] for
/// the checksum verdict.
///
/// # Errors
/// [`StoreError::Truncated`], [`StoreError::BadMagic`],
/// [`StoreError::UnsupportedVersion`], [`StoreError::WrongEndian`],
/// [`StoreError::Corrupt`] — the same validation order as [`unseal`].
pub fn parse_header(header: &[u8]) -> StoreResult<u64> {
    if header.len() < 8 {
        return Err(StoreError::truncated("frame header magic"));
    }
    if &header[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if header.len() < HEADER_LEN {
        return Err(StoreError::truncated("frame header"));
    }
    let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if version == 0 || version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            got: version,
            supported: FORMAT_VERSION,
        });
    }
    let endian = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    if endian != ENDIAN_MARKER {
        if endian == ENDIAN_MARKER.swap_bytes() {
            return Err(StoreError::WrongEndian);
        }
        return Err(StoreError::corrupt(format!(
            "endianness marker {endian:#010x} is neither little- nor big-endian"
        )));
    }
    Ok(u64::from_le_bytes([
        header[16], header[17], header[18], header[19], header[20], header[21], header[22],
        header[23],
    ]))
}

/// Wraps a payload in the snapshot frame: header + payload + CRC trailer.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&ENDIAN_MARKER.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&chunked_crc32(payload).to_le_bytes());
    out
}

/// Validates a framed snapshot and returns its payload slice.
///
/// # Errors
/// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
/// [`StoreError::WrongEndian`], [`StoreError::Truncated`],
/// [`StoreError::Corrupt`] (length overrun / trailing bytes) and
/// [`StoreError::ChecksumMismatch`], in validation order.
pub fn unseal(file: &[u8]) -> StoreResult<&[u8]> {
    let len = parse_header(&file[..file.len().min(HEADER_LEN)])?;
    let len = usize::try_from(len)
        .map_err(|_| StoreError::corrupt(format!("payload length {len} exceeds usize")))?;
    let body = &file[HEADER_LEN..];
    // Checked: a crafted length near usize::MAX must be a typed error,
    // not an arithmetic-overflow panic.
    let total = len.checked_add(4).ok_or_else(|| {
        StoreError::corrupt(format!(
            "payload length {len} overflows with its checksum trailer"
        ))
    })?;
    if body.len() < total {
        return Err(StoreError::truncated(format!(
            "snapshot payload (header claims {len} byte(s) + 4-byte checksum, {} left)",
            body.len()
        )));
    }
    if body.len() > total {
        return Err(StoreError::corrupt(format!(
            "{} byte(s) after the checksum trailer",
            body.len() - len - 4
        )));
    }
    let payload = &body[..len];
    let stored = u32::from_le_bytes([body[len], body[len + 1], body[len + 2], body[len + 3]]);
    let computed = chunked_crc32(payload);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Seals `payload` and writes it to `path` atomically-enough for a
/// snapshot: the bytes go to a `.tmp` sibling first and are renamed into
/// place, so a crash mid-write never leaves a half-written file under the
/// final name. Returns the total file size in bytes.
pub fn write_file(path: &Path, payload: &[u8]) -> StoreResult<u64> {
    let framed = seal(payload);
    let tmp = tmp_sibling(path);
    let result = (|| -> StoreResult<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map(|()| framed.len() as u64)
}

/// Reads `path`, validates the frame, and returns the payload bytes.
pub fn read_payload(path: &Path) -> StoreResult<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    Ok(unseal(&bytes)?.to_vec())
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let payload = b"hello snapshot".to_vec();
        let framed = seal(&payload);
        assert_eq!(unseal(&framed).unwrap(), &payload[..]);
        // Empty payloads frame fine too.
        assert_eq!(unseal(&seal(&[])).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut framed = seal(b"x");
        framed[0] ^= 0xFF;
        assert_eq!(unseal(&framed).unwrap_err(), StoreError::BadMagic);
        assert!(matches!(unseal(b"TSQ"), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn future_version_rejected() {
        let mut framed = seal(b"x");
        framed[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            unseal(&framed).unwrap_err(),
            StoreError::UnsupportedVersion {
                got: 99,
                supported: FORMAT_VERSION
            }
        );
        // Version 0 never existed.
        framed[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            unseal(&framed),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn byte_swapped_endian_marker_rejected() {
        let mut framed = seal(b"x");
        framed[12..16].reverse();
        assert_eq!(unseal(&framed).unwrap_err(), StoreError::WrongEndian);
        // A garbage marker is corrupt, not wrong-endian.
        framed[12..16].copy_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(unseal(&framed), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let framed = seal(b"some payload bytes");
        for cut in 0..framed.len() {
            let err = unseal(&framed[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic
                        | StoreError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_payload_bit_flip_is_caught() {
        let framed = seal(b"payload under test");
        let payload_start = 24;
        let payload_end = framed.len() - 4;
        for byte in payload_start..payload_end {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(unseal(&bad), Err(StoreError::ChecksumMismatch { .. })),
                    "flip at byte {byte} bit {bit} escaped the checksum"
                );
            }
        }
        // Flipping the stored checksum itself is also a mismatch.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            unseal(&bad),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn parse_header_reports_payload_length_without_payload_bytes() {
        let framed = seal(b"streamed payload");
        // Only the header: the reader learns the length before any
        // payload byte exists.
        assert_eq!(
            parse_header(&framed[..HEADER_LEN]).unwrap(),
            b"streamed payload".len() as u64
        );
        // An absurd declared length parses fine — capping it is the
        // *caller's* allocation guard; the header itself is well-formed.
        let mut huge = framed[..HEADER_LEN].to_vec();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(parse_header(&huge).unwrap(), u64::MAX);
        // Validation order matches unseal.
        assert!(matches!(
            parse_header(&framed[..10]),
            Err(StoreError::Truncated { .. })
        ));
        let mut bad = framed[..HEADER_LEN].to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(parse_header(&bad).unwrap_err(), StoreError::BadMagic);
        let mut swapped = framed[..HEADER_LEN].to_vec();
        swapped[12..16].reverse();
        assert_eq!(parse_header(&swapped).unwrap_err(), StoreError::WrongEndian);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut framed = seal(b"x");
        framed.push(0);
        assert!(matches!(unseal(&framed), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn absurd_payload_length_is_typed_not_an_overflow_panic() {
        // A crafted header whose payload-length field sits just below
        // u64::MAX: `usize::try_from` succeeds on 64-bit targets, so the
        // `len + 4` bound computation must use checked arithmetic.
        let mut framed = seal(b"x");
        framed[16..24].copy_from_slice(&(u64::MAX - 3).to_le_bytes());
        let err = unseal(&framed).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::Corrupt { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("tsq-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.tsq");
        let written = write_file(&path, b"on disk").unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_payload(&path).unwrap(), b"on disk");
        assert!(matches!(
            read_payload(&dir.join("missing.tsq")),
            Err(StoreError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
