//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every snapshot payload.
//!
//! Implemented with the *slicing-by-16* technique (Kounavis & Berry,
//! Intel 2008): sixteen compile-time tables let each loop iteration
//! consume 16 input bytes with independent table lookups, putting the
//! throughput in the gigabytes-per-second range instead of the
//! ~300 MB/s of the classic byte-at-a-time loop. Snapshot restores hash
//! the whole payload before decoding anything, so checksum speed is
//! directly on the restart-latency path the `snapshot` bench asserts.
//! Std-only, no unsafe, byte-order independent.

/// Sixteen 256-entry tables: `TABLES[j][b]` is the CRC contribution of
/// byte `b` positioned `j` bytes before the end of a 16-byte block.
const TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

/// CRC-32 of `bytes` (initial value `!0`, final complement — the standard
/// zlib/PNG/Ethernet parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        crc = TABLES[15][(lo & 0xFF) as usize]
            ^ TABLES[14][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[13][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[12][(lo >> 24) as usize]
            ^ TABLES[11][c[4] as usize]
            ^ TABLES[10][c[5] as usize]
            ^ TABLES[9][c[6] as usize]
            ^ TABLES[8][c[7] as usize]
            ^ TABLES[7][c[8] as usize]
            ^ TABLES[6][c[9] as usize]
            ^ TABLES[5][c[10] as usize]
            ^ TABLES[4][c[11] as usize]
            ^ TABLES[3][c[12] as usize]
            ^ TABLES[2][c[13] as usize]
            ^ TABLES[1][c[14] as usize]
            ^ TABLES[0][c[15] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Chunk size of the combined snapshot checksum (1 MiB).
const CHUNK: usize = 1 << 20;

/// The snapshot trailer checksum: the payload is hashed in fixed 1 MiB
/// chunks and the trailer value is the CRC-32 of the concatenated
/// per-chunk digests (little-endian).
///
/// Two properties motivate this over a plain whole-payload CRC:
///
/// - **Parallelism.** A plain CRC is a strictly sequential recurrence; the
///   chunked form hashes independent ranges on as many cores as the
///   machine offers, taking the checksum off the restore-latency critical
///   path for multi-megabyte catalogs. The value is identical for every
///   thread count (chunk boundaries are fixed by the format, not by the
///   scheduler).
/// - **Same detection power.** Any bit flip changes its chunk's digest,
///   which changes the combined digest; the frame tests assert this for
///   every byte position.
pub fn chunked_crc32(bytes: &[u8]) -> u32 {
    let n_chunks = bytes.len().div_ceil(CHUNK).max(1);
    let mut digests = vec![0u32; n_chunks];
    let threads = if n_chunks >= 3 {
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(n_chunks)
    } else {
        1
    };
    let digest_of = |i: usize| -> u32 {
        let start = i * CHUNK;
        let end = ((i + 1) * CHUNK).min(bytes.len());
        crc32(&bytes[start..end])
    };
    if threads <= 1 {
        for (i, d) in digests.iter_mut().enumerate() {
            *d = digest_of(i);
        }
    } else {
        let per = n_chunks.div_ceil(threads);
        std::thread::scope(|scope| {
            for (group_idx, group) in digests.chunks_mut(per).enumerate() {
                let digest_of = &digest_of;
                scope.spawn(move || {
                    for (j, d) in group.iter_mut().enumerate() {
                        *d = digest_of(group_idx * per + j);
                    }
                });
            }
        });
    }
    let mut combined = Vec::with_capacity(4 * n_chunks);
    for d in &digests {
        combined.extend_from_slice(&d.to_le_bytes());
    }
    crc32(&combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation for cross-checking the
    /// sliced loop.
    fn crc32_simple(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_loop_matches_reference_at_every_length() {
        // Lengths straddling the 16-byte block boundary, so the sliced
        // body and the remainder loop are both exercised.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(97) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_simple(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn chunked_matches_itself_across_boundaries_and_catches_flips() {
        // Deterministic for empty and sub-chunk inputs.
        assert_eq!(chunked_crc32(b""), chunked_crc32(b""));
        assert_ne!(chunked_crc32(b"a"), chunked_crc32(b"b"));
        // Multi-chunk input: flips in *every* chunk are caught. 2.5 MiB
        // spans three chunks, so the parallel path runs too.
        let data: Vec<u8> = (0..(2 * CHUNK + CHUNK / 2))
            .map(|i| (i as u32).wrapping_mul(2_654_435_761) as u8)
            .collect();
        let want = chunked_crc32(&data);
        for &pos in &[0usize, CHUNK - 1, CHUNK, 2 * CHUNK + 7, data.len() - 1] {
            let mut bad = data.clone();
            bad[pos] ^= 0x40;
            assert_ne!(chunked_crc32(&bad), want, "flip at {pos}");
        }
        // Appending or truncating changes the value as well.
        assert_ne!(chunked_crc32(&data[..data.len() - 1]), want);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = b"similarity-based queries for time series data".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
