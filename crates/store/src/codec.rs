//! Primitive binary encoding: little-endian fixed-width scalars,
//! length-prefixed strings, and allocation-guarded sequence headers.
//!
//! [`Encoder`] appends to a growable buffer; [`Decoder`] walks a borrowed
//! byte slice with a cursor. Every `Decoder` read is bounds-checked and
//! returns a typed [`StoreError`] on shortfall; no read trusts a declared
//! length until it has been proven against the bytes actually remaining,
//! so a corrupted count can neither overshoot the buffer nor trigger a
//! pathological allocation.

use crate::error::{StoreError, StoreResult};

/// Appends primitives to an in-memory payload buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit everywhere,
    /// regardless of the writing machine's word size).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    /// Round-trips are bit-exact (including signed zeros and subnormals).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a slice of `f64`s (no length prefix — pair with
    /// [`Encoder::usize`] or a known count).
    pub fn f64_slice(&mut self, vs: &[f64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends pre-encoded bytes verbatim (for section framing: encode a
    /// section into its own `Encoder`, then append `usize(len)` + `raw`).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Reads primitives back out of a payload slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`StoreError::Corrupt`] unless every byte was consumed —
    /// trailing garbage means the writer and reader disagree about the
    /// schema, which must never pass silently.
    pub fn finish(&self) -> StoreResult<()> {
        if self.remaining() != 0 {
            return Err(StoreError::corrupt(format!(
                "{} trailing byte(s) after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> StoreResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::truncated(format!(
                "{what} (need {n} byte(s), {} left)",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads exactly `n` raw bytes (for callers that decode fixed-width
    /// records themselves; the read is bounds-checked as one block).
    pub fn bytes(&mut self, n: usize, what: &str) -> StoreResult<&'a [u8]> {
        self.take(n, what)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> StoreResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self, what: &str) -> StoreResult<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::corrupt(format!(
                "{what}: invalid bool byte {other}"
            ))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> StoreResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> StoreResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that do
    /// not fit the reading machine's word size.
    pub fn usize(&mut self, what: &str) -> StoreResult<usize> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .map_err(|_| StoreError::corrupt(format!("{what}: {v} exceeds this platform's usize")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, what: &str) -> StoreResult<f64> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` that must be finite (series samples, rectangle
    /// bounds, distances — NaN/∞ would poison downstream geometry).
    pub fn f64_finite(&mut self, what: &str) -> StoreResult<f64> {
        let v = self.f64(what)?;
        if !v.is_finite() {
            return Err(StoreError::corrupt(format!("{what}: non-finite value {v}")));
        }
        Ok(v)
    }

    /// Reads a sequence header: a `u64` element count validated against
    /// the bytes remaining, given that every element occupies at least
    /// `min_elem_bytes`. This is the allocation guard — after this check,
    /// `Vec::with_capacity(count)` is safe because a buffer holding
    /// `count` elements must physically exist.
    pub fn seq(&mut self, min_elem_bytes: usize, what: &str) -> StoreResult<usize> {
        let count = self.usize(what)?;
        let need = count
            .checked_mul(min_elem_bytes.max(1))
            .ok_or_else(|| StoreError::corrupt(format!("{what}: count {count} overflows")))?;
        if need > self.remaining() {
            return Err(StoreError::truncated(format!(
                "{what} (claims {count} element(s) = {need} byte(s), {} left)",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Reads exactly `n` `f64`s into a vector (hot path: one unaligned
    /// load per value, no per-value bounds checks beyond the single
    /// up-front `take`).
    pub fn f64_vec(&mut self, n: usize, what: &str) -> StoreResult<Vec<f64>> {
        let need = n
            .checked_mul(8)
            .ok_or_else(|| StoreError::corrupt(format!("{what}: count {n} overflows")))?;
        let bytes = self.take(need, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|chunk| f64::from_le_bytes(chunk.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> StoreResult<String> {
        let len = self.seq(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{what}: invalid UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.bool(true);
        enc.bool(false);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.usize(12345);
        enc.f64(-0.0);
        enc.f64(f64::MIN_POSITIVE / 2.0); // subnormal
        enc.str("tsq — snapshot");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8("a").unwrap(), 7);
        assert!(dec.bool("b").unwrap());
        assert!(!dec.bool("c").unwrap());
        assert_eq!(dec.u32("d").unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64("e").unwrap(), u64::MAX - 1);
        assert_eq!(dec.usize("f").unwrap(), 12345);
        assert_eq!(dec.f64("g").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            dec.f64("h").unwrap().to_bits(),
            (f64::MIN_POSITIVE / 2.0).to_bits()
        );
        assert_eq!(dec.str("i").unwrap(), "tsq — snapshot");
        dec.finish().unwrap();
    }

    #[test]
    fn f64_slices_round_trip_bit_exact() {
        let vals = [1.5, -2.25, 0.0, -0.0, 1e-308, 9.99e307];
        let mut enc = Encoder::new();
        enc.f64_slice(&vals);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let got = dec.f64_vec(vals.len(), "vals").unwrap();
        for (a, b) in vals.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_is_typed() {
        let mut enc = Encoder::new();
        enc.u64(42);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert!(matches!(
            dec.u64("field"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_sequence_count_is_rejected_before_allocation() {
        let mut enc = Encoder::new();
        enc.u64(u64::MAX); // absurd element count
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let err = dec.seq(8, "series").unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::Corrupt { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn invalid_bool_and_utf8_are_corrupt() {
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(dec.bool("flag"), Err(StoreError::Corrupt { .. })));
        let mut enc = Encoder::new();
        enc.usize(2);
        let mut bytes = enc.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.str("name"), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn non_finite_reads_are_corrupt() {
        let mut enc = Encoder::new();
        enc.f64(f64::NAN);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            dec.f64_finite("sample"),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut enc = Encoder::new();
        enc.u8(1);
        enc.u8(2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        dec.u8("only").unwrap();
        assert!(matches!(dec.finish(), Err(StoreError::Corrupt { .. })));
    }
}
