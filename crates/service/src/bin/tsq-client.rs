//! `tsq-client` — a small CLI for the binary wire protocol.
//!
//! ```text
//! tsq-client <addr> ping
//! tsq-client <addr> query <text...>
//! tsq-client <addr> batch <file> [threads]
//! tsq-client <addr> append <relation> <label> <v1> [v2 ...]
//! tsq-client <addr> append-file <relation> <file>
//! tsq-client <addr> stats
//! tsq-client <addr> shutdown
//! ```
//!
//! Exit status 0 on success, 1 on any client or server error (the error
//! is printed to stderr). Query answers print one row per line plus a
//! summary; `stats` prints the server's metrics JSON verbatim.
//! `append-file` reads `label, v1, v2, ...` lines (blank lines and `#`
//! comments skipped) and ships them as ONE atomic APPEND.

use std::process::ExitCode;
use std::time::Duration;

use tsq_service::{Client, IngestRow, QueryReply};

const USAGE: &str = "usage: tsq-client <addr> <ping|query <text...>|batch <file> [threads]|\
     append <relation> <label> <v1> [v2 ...]|append-file <relation> <file>|stats|shutdown>";

fn print_reply(reply: &QueryReply) {
    for row in &reply.rows {
        match (&row.b, row.offset) {
            (Some(b), _) => println!("{}\t{}\t{:.6}", row.a, b, row.distance),
            (None, Some(off)) => println!("{}\t@{}\t{:.6}", row.a, off, row.distance),
            (None, None) => println!("{}\t{:.6}", row.a, row.distance),
        }
    }
    println!(
        "# {} row(s)  plan={}  candidates={} refined={} false_hits={} nodes={} disk={}",
        reply.rows.len(),
        reply.plan,
        reply.stats.candidates,
        reply.stats.refined,
        reply.stats.false_hits,
        reply.stats.nodes_visited,
        reply.stats.disk_accesses
    );
    for (shard, stats) in reply.shard_stats.iter().enumerate() {
        println!(
            "#   shard {shard}: candidates={} refined={} false_hits={} nodes={} disk={}",
            stats.candidates,
            stats.refined,
            stats.false_hits,
            stats.nodes_visited,
            stats.disk_accesses
        );
    }
}

fn print_append(reply: &QueryReply) {
    let mut points = 0.0;
    for row in &reply.rows {
        let len = row.offset.unwrap_or(0);
        println!("{}\tlen={}\t+{}", row.a, len, row.distance);
        points += row.distance;
    }
    println!(
        "# appended {points} point(s) across {} series",
        reply.rows.len()
    );
}

/// Parses `label, v1, v2, ...` lines; blank lines and `#` comments skip.
fn parse_append_rows(text: &str) -> Result<Vec<IngestRow>, String> {
    let mut rows = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let label = fields.next().unwrap_or("").to_string();
        if label.is_empty() {
            return Err(format!("line {}: missing label", no + 1));
        }
        let mut values = Vec::new();
        for field in fields {
            values.push(
                field
                    .parse()
                    .map_err(|_| format!("line {}: bad value {field:?}", no + 1))?,
            );
        }
        if values.is_empty() {
            return Err(format!("line {}: no values for {label:?}", no + 1));
        }
        rows.push(IngestRow { label, values });
    }
    Ok(rows)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, cmd) = match args.split_first() {
        Some((addr, rest)) if !rest.is_empty() => (addr.clone(), rest.to_vec()),
        _ => return Err(USAGE.to_string()),
    };
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    match cmd[0].as_str() {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
        }
        "query" => {
            let text = cmd[1..].join(" ");
            if text.trim().is_empty() {
                return Err(USAGE.to_string());
            }
            let reply = client.query(&text).map_err(|e| e.to_string())?;
            print_reply(&reply);
        }
        "batch" => {
            let Some(file) = cmd.get(1) else {
                return Err(USAGE.to_string());
            };
            let threads: u32 = match cmd.get(2) {
                Some(t) => t.parse().map_err(|_| format!("bad thread count {t:?}"))?,
                None => 0,
            };
            let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
            let queries: Vec<String> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect();
            if queries.is_empty() {
                return Err(format!("{file}: no queries"));
            }
            let slots = client.batch(&queries, threads).map_err(|e| e.to_string())?;
            let mut failures = 0usize;
            for (query, slot) in queries.iter().zip(&slots) {
                match slot {
                    Ok(reply) => {
                        println!("{query} => {} row(s) [{}]", reply.rows.len(), reply.plan)
                    }
                    Err(e) => {
                        failures += 1;
                        eprintln!("{query} => error [{}] {}", e.code.name(), e.message);
                    }
                }
            }
            println!("# {} quer(ies), {failures} failed", queries.len());
            if failures > 0 {
                return Err(format!("{failures} quer(ies) failed"));
            }
        }
        "append" => {
            let (Some(relation), Some(label)) = (cmd.get(1), cmd.get(2)) else {
                return Err(USAGE.to_string());
            };
            let values: Vec<f64> = cmd[3..]
                .iter()
                .map(|v| v.parse().map_err(|_| format!("bad value {v:?}")))
                .collect::<Result<_, _>>()?;
            if values.is_empty() {
                return Err(USAGE.to_string());
            }
            let rows = vec![IngestRow {
                label: label.clone(),
                values,
            }];
            let reply = client.append(relation, rows).map_err(|e| e.to_string())?;
            print_append(&reply);
        }
        "append-file" => {
            let (Some(relation), Some(file)) = (cmd.get(1), cmd.get(2)) else {
                return Err(USAGE.to_string());
            };
            let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
            let rows = parse_append_rows(&text)?;
            if rows.is_empty() {
                return Err(format!("{file}: no rows"));
            }
            let reply = client.append(relation, rows).map_err(|e| e.to_string())?;
            print_append(&reply);
        }
        "stats" => {
            let json = client.stats_json().map_err(|e| e.to_string())?;
            println!("{json}");
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server draining");
        }
        other => return Err(format!("unknown command {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tsq-client: {e}");
            ExitCode::FAILURE
        }
    }
}
