//! `tsq-client` — a small CLI for the binary wire protocol.
//!
//! ```text
//! tsq-client <addr> ping
//! tsq-client <addr> query <text...>
//! tsq-client <addr> batch <file> [threads]
//! tsq-client <addr> stats
//! tsq-client <addr> shutdown
//! ```
//!
//! Exit status 0 on success, 1 on any client or server error (the error
//! is printed to stderr). Query answers print one row per line plus a
//! summary; `stats` prints the server's metrics JSON verbatim.

use std::process::ExitCode;
use std::time::Duration;

use tsq_service::{Client, QueryReply};

const USAGE: &str =
    "usage: tsq-client <addr> <ping|query <text...>|batch <file> [threads]|stats|shutdown>";

fn print_reply(reply: &QueryReply) {
    for row in &reply.rows {
        match (&row.b, row.offset) {
            (Some(b), _) => println!("{}\t{}\t{:.6}", row.a, b, row.distance),
            (None, Some(off)) => println!("{}\t@{}\t{:.6}", row.a, off, row.distance),
            (None, None) => println!("{}\t{:.6}", row.a, row.distance),
        }
    }
    println!(
        "# {} row(s)  plan={}  candidates={} refined={} false_hits={} nodes={} disk={}",
        reply.rows.len(),
        reply.plan,
        reply.stats.candidates,
        reply.stats.refined,
        reply.stats.false_hits,
        reply.stats.nodes_visited,
        reply.stats.disk_accesses
    );
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, cmd) = match args.split_first() {
        Some((addr, rest)) if !rest.is_empty() => (addr.clone(), rest.to_vec()),
        _ => return Err(USAGE.to_string()),
    };
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    match cmd[0].as_str() {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
        }
        "query" => {
            let text = cmd[1..].join(" ");
            if text.trim().is_empty() {
                return Err(USAGE.to_string());
            }
            let reply = client.query(&text).map_err(|e| e.to_string())?;
            print_reply(&reply);
        }
        "batch" => {
            let Some(file) = cmd.get(1) else {
                return Err(USAGE.to_string());
            };
            let threads: u32 = match cmd.get(2) {
                Some(t) => t.parse().map_err(|_| format!("bad thread count {t:?}"))?,
                None => 0,
            };
            let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
            let queries: Vec<String> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect();
            if queries.is_empty() {
                return Err(format!("{file}: no queries"));
            }
            let slots = client.batch(&queries, threads).map_err(|e| e.to_string())?;
            let mut failures = 0usize;
            for (query, slot) in queries.iter().zip(&slots) {
                match slot {
                    Ok(reply) => {
                        println!("{query} => {} row(s) [{}]", reply.rows.len(), reply.plan)
                    }
                    Err(e) => {
                        failures += 1;
                        eprintln!("{query} => error [{}] {}", e.code.name(), e.message);
                    }
                }
            }
            println!("# {} quer(ies), {failures} failed", queries.len());
            if failures > 0 {
                return Err(format!("{failures} quer(ies) failed"));
            }
        }
        "stats" => {
            let json = client.stats_json().map_err(|e| e.to_string())?;
            println!("{json}");
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server draining");
        }
        other => return Err(format!("unknown command {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tsq-client: {e}");
            ExitCode::FAILURE
        }
    }
}
