//! The binary wire protocol: one `tsq-store` frame per message.
//!
//! Every message — request or response — is a payload wrapped by
//! [`tsq_store::seal`]: magic, format version, endianness marker,
//! length prefix, payload, CRC-32 trailer. The service therefore inherits
//! the snapshot format's versioning, corruption detection, and typed
//! error taxonomy for free; what this module adds is *incremental* frame
//! reading off a socket (header first, allocation cap enforced before a
//! single payload byte is buffered) and the request/response payload
//! schemas.
//!
//! ```text
//! frame   := store frame (see tsq_store::frame): 24-byte header,
//!            payload, 4-byte CRC-32 trailer
//! request := 0x01 QUERY    str(query)
//!          | 0x02 BATCH    u32(threads) seq(str(query))
//!          | 0x03 STATS
//!          | 0x04 PING
//!          | 0x05 SHUTDOWN
//!          | 0x06 APPEND   str(relation) seq(str(label) seq(f64(value)))
//! reply   := 0x00 ERROR    u8(code) str(message)
//!          | 0x01 ROWS     reply-body
//!          | 0x02 BATCH    seq(u8(tag) (reply-body | u8(code) str(msg)))
//!          | 0x03 STATS    str(metrics json)
//!          | 0x04 PONG
//!          | 0x05 BYE      (shutdown acknowledged)
//!          | 0x06 APPEND   reply-body (one row per appended label)
//! reply-body := str(plan) counters
//!               seq(counters)                   per-shard breakdown;
//!                                               empty when unsharded
//!               seq(str(a) opt(str(b)) opt(u64(offset)) f64(distance))
//! counters   := u64(candidates) u64(refined) u64(false_hits)
//!               u64(nodes_visited) u64(disk_accesses)
//!               u64(pool_hits) u64(pool_misses)
//! ```
//!
//! A reader never trusts a declared length: the frame header's payload
//! length is capped by the caller's `max_frame_len` *before* any
//! allocation, and every in-payload sequence count goes through the
//! allocation-guarded [`Decoder::seq`].

use std::io::{self, Read, Write};

use tsq_core::plan::ExecStats;
use tsq_store::{
    parse_header, seal, unseal, Decoder, Encoder, StoreError, HEADER_LEN, TRAILER_LEN,
};

use crate::engine::{EngineError, IngestRow, QueryReply, WireRow};

/// Default cap on a single frame's payload (requests and responses).
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Why a frame could not be read off a socket.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary — the normal
    /// end of a session, not an error.
    Closed,
    /// The stream died mid-frame (reset, mid-frame EOF, timeout).
    Io(io::Error),
    /// The header declared a payload larger than the reader's cap; the
    /// oversized payload was never buffered.
    TooLarge {
        /// Declared payload length.
        len: u64,
        /// The reader's cap.
        max: usize,
    },
    /// The bytes were readable but not a valid frame (bad magic or
    /// version, checksum mismatch, malformed payload).
    Malformed(StoreError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame declares {len} payload byte(s), cap is {max}")
            }
            FrameError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<StoreError> for FrameError {
    fn from(e: StoreError) -> Self {
        FrameError::Malformed(e)
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads until `buf` is full or EOF; returns the number of bytes read.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    Ok(filled)
}

/// Writes one sealed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&seal(payload))?;
    w.flush()
}

/// Reads one frame whose first `prefix` bytes were already consumed
/// (e.g. by protocol sniffing), enforcing `max_len` on the declared
/// payload length *before* allocating for it.
///
/// # Errors
/// [`FrameError::Closed`] on EOF at the frame boundary (only possible
/// when `prefix` is empty), [`FrameError::Io`] mid-frame,
/// [`FrameError::TooLarge`] past the cap, [`FrameError::Malformed`] for
/// anything `tsq-store` rejects (magic, version, endianness, CRC).
pub fn read_frame_prefixed(
    r: &mut impl Read,
    prefix: &[u8],
    max_len: usize,
) -> Result<Vec<u8>, FrameError> {
    debug_assert!(prefix.len() <= HEADER_LEN);
    let mut header = [0u8; HEADER_LEN];
    header[..prefix.len()].copy_from_slice(prefix);
    let got = read_full(r, &mut header[prefix.len()..])?;
    if prefix.is_empty() && got == 0 {
        return Err(FrameError::Closed);
    }
    if prefix.len() + got < HEADER_LEN {
        return Err(FrameError::Malformed(StoreError::truncated(format!(
            "frame header ({} of {HEADER_LEN} byte(s))",
            prefix.len() + got
        ))));
    }
    let len = parse_header(&header)?;
    if len > max_len as u64 {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let body_len = len as usize + TRAILER_LEN;
    let mut frame = Vec::with_capacity(HEADER_LEN + body_len);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + body_len, 0);
    let got = read_full(r, &mut frame[HEADER_LEN..])?;
    if got < body_len {
        return Err(FrameError::Malformed(StoreError::truncated(format!(
            "frame body ({got} of {body_len} byte(s))"
        ))));
    }
    Ok(unseal(&frame)?.to_vec())
}

/// Reads one frame from the start (no sniffed prefix).
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Vec<u8>, FrameError> {
    read_frame_prefixed(r, &[], max_len)
}

/// Typed request-level failure codes carried in `ERROR` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The query did not lex/parse/resolve (client error).
    BadQuery = 1,
    /// The engine failed executing an accepted query.
    Engine = 2,
    /// The query exceeded the server's per-query timeout (it may still
    /// complete server-side; its answer is discarded).
    Timeout = 3,
    /// Admission control refused the query: too many in flight.
    Overloaded = 4,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown = 5,
    /// The request frame decoded but its contents were invalid.
    Malformed = 6,
    /// The request frame declared a payload above the server's cap.
    TooLarge = 7,
    /// The request named an operation the engine (or the target
    /// relation) cannot perform — e.g. APPEND to a paged relation.
    Unsupported = 8,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadQuery,
            2 => ErrorCode::Engine,
            3 => ErrorCode::Timeout,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Malformed,
            7 => ErrorCode::TooLarge,
            8 => ErrorCode::Unsupported,
            _ => return None,
        })
    }

    /// Stable lowercase name (used in JSON and logs).
    pub fn name(&self) -> &'static str {
        match self {
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::Engine => "engine",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Malformed => "malformed",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Unsupported => "unsupported",
        }
    }
}

/// A typed request-level error: the code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong, as a stable code.
    pub code: ErrorCode,
    /// Details for humans; never required for dispatch.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for WireError {}

impl From<EngineError> for WireError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::BadQuery(m) => WireError::new(ErrorCode::BadQuery, m),
            EngineError::Failed(m) => WireError::new(ErrorCode::Engine, m),
            EngineError::Unsupported(m) => WireError::new(ErrorCode::Unsupported, m),
        }
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute one query string.
    Query(String),
    /// Execute a batch of query strings with a worker-thread hint.
    Batch {
        /// Query strings, answered in order.
        queries: Vec<String>,
        /// Parallelism hint (the engine clamps it).
        threads: u32,
    },
    /// Fetch the server's cumulative metrics as JSON.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain in-flight work and stop.
    Shutdown,
    /// Atomically append rows of values to series of one relation.
    Append {
        /// Relation receiving the points.
        relation: String,
        /// Appended rows, in statement order.
        rows: Vec<IngestRow>,
    },
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed before/instead of producing rows.
    Error(WireError),
    /// Answer to [`Request::Query`].
    Rows(QueryReply),
    /// Answer to [`Request::Batch`]: one slot per query.
    Batch(Vec<Result<QueryReply, WireError>>),
    /// Answer to [`Request::Stats`].
    Stats(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Shutdown`]: drain has begun.
    Bye,
    /// Answer to [`Request::Append`]: one row per appended label (`a` =
    /// label, `offset` = new series length, `distance` = points added).
    Append(QueryReply),
}

const REQ_QUERY: u8 = 1;
const REQ_BATCH: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_PING: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;
const REQ_APPEND: u8 = 6;

const RESP_ERROR: u8 = 0;
const RESP_ROWS: u8 = 1;
const RESP_BATCH: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_PONG: u8 = 4;
const RESP_BYE: u8 = 5;
const RESP_APPEND: u8 = 6;

/// Encodes a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut enc = Encoder::new();
    match req {
        Request::Query(q) => {
            enc.u8(REQ_QUERY);
            enc.str(q);
        }
        Request::Batch { queries, threads } => {
            enc.u8(REQ_BATCH);
            enc.u32(*threads);
            enc.usize(queries.len());
            for q in queries {
                enc.str(q);
            }
        }
        Request::Stats => enc.u8(REQ_STATS),
        Request::Ping => enc.u8(REQ_PING),
        Request::Shutdown => enc.u8(REQ_SHUTDOWN),
        Request::Append { relation, rows } => {
            enc.u8(REQ_APPEND);
            enc.str(relation);
            enc.usize(rows.len());
            for row in rows {
                enc.str(&row.label);
                enc.usize(row.values.len());
                for v in &row.values {
                    enc.f64(*v);
                }
            }
        }
    }
    enc.into_bytes()
}

/// Decodes a request payload.
///
/// # Errors
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`] on any shortfall,
/// bad tag, or trailing garbage — all allocation-guarded.
pub fn decode_request(payload: &[u8]) -> Result<Request, StoreError> {
    let mut dec = Decoder::new(payload);
    let req = match dec.u8("request tag")? {
        REQ_QUERY => Request::Query(dec.str("query")?),
        REQ_BATCH => {
            let threads = dec.u32("batch threads")?;
            let count = dec.seq(8, "batch queries")?;
            let mut queries = Vec::with_capacity(count);
            for i in 0..count {
                queries.push(dec.str(&format!("batch query {i}"))?);
            }
            Request::Batch { queries, threads }
        }
        REQ_STATS => Request::Stats,
        REQ_PING => Request::Ping,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_APPEND => {
            let relation = dec.str("append relation")?;
            // Minimum row wire size: 8 (label length) + 8 (value count).
            let count = dec.seq(16, "append rows")?;
            let mut rows = Vec::with_capacity(count);
            for i in 0..count {
                let label = dec.str(&format!("append row {i} label"))?;
                let n = dec.seq(8, &format!("append row {i} values"))?;
                let mut values = Vec::with_capacity(n);
                for j in 0..n {
                    values.push(dec.f64_finite(&format!("append row {i} value {j}"))?);
                }
                rows.push(IngestRow { label, values });
            }
            Request::Append { relation, rows }
        }
        other => return Err(StoreError::corrupt(format!("unknown request tag {other}"))),
    };
    dec.finish()?;
    Ok(req)
}

fn encode_counters(enc: &mut Encoder, stats: &ExecStats) {
    enc.u64(stats.candidates as u64);
    enc.u64(stats.refined as u64);
    enc.u64(stats.false_hits as u64);
    enc.u64(stats.nodes_visited);
    enc.u64(stats.disk_accesses);
    enc.u64(stats.pool_hits);
    enc.u64(stats.pool_misses);
}

fn decode_counters(dec: &mut Decoder<'_>) -> Result<ExecStats, StoreError> {
    let narrow = |v: u64, what: &str| -> Result<usize, StoreError> {
        usize::try_from(v).map_err(|_| StoreError::corrupt(format!("{what} {v} exceeds usize")))
    };
    Ok(ExecStats {
        candidates: narrow(dec.u64("candidates")?, "candidates")?,
        refined: narrow(dec.u64("refined")?, "refined")?,
        false_hits: narrow(dec.u64("false hits")?, "false hits")?,
        nodes_visited: dec.u64("nodes visited")?,
        disk_accesses: dec.u64("disk accesses")?,
        pool_hits: dec.u64("pool hits")?,
        pool_misses: dec.u64("pool misses")?,
    })
}

fn encode_reply_body(enc: &mut Encoder, reply: &QueryReply) {
    enc.str(&reply.plan);
    encode_counters(enc, &reply.stats);
    enc.usize(reply.shard_stats.len());
    for shard in &reply.shard_stats {
        encode_counters(enc, shard);
    }
    enc.usize(reply.rows.len());
    for row in &reply.rows {
        enc.str(&row.a);
        match &row.b {
            Some(b) => {
                enc.bool(true);
                enc.str(b);
            }
            None => enc.bool(false),
        }
        match row.offset {
            Some(off) => {
                enc.bool(true);
                enc.u64(off);
            }
            None => enc.bool(false),
        }
        enc.f64(row.distance);
    }
}

fn decode_reply_body(dec: &mut Decoder<'_>) -> Result<QueryReply, StoreError> {
    let plan = dec.str("plan name")?;
    let stats = decode_counters(dec)?;
    // Per-shard counter blocks are 7 u64s each.
    let shard_count = dec.seq(56, "shard stats")?;
    let mut shard_stats = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shard_stats.push(decode_counters(dec)?);
    }
    // Minimum row wire size: 8 (label length) + 1 + 1 + 8 (distance).
    let count = dec.seq(18, "rows")?;
    let mut rows = Vec::with_capacity(count);
    for i in 0..count {
        let a = dec.str(&format!("row {i} label"))?;
        let b = if dec.bool(&format!("row {i} join flag"))? {
            Some(dec.str(&format!("row {i} second label"))?)
        } else {
            None
        };
        let offset = if dec.bool(&format!("row {i} offset flag"))? {
            Some(dec.u64(&format!("row {i} offset"))?)
        } else {
            None
        };
        let distance = dec.f64_finite(&format!("row {i} distance"))?;
        rows.push(WireRow {
            a,
            b,
            offset,
            distance,
        });
    }
    Ok(QueryReply {
        rows,
        plan,
        stats,
        shard_stats,
    })
}

fn encode_wire_error(enc: &mut Encoder, err: &WireError) {
    enc.u8(err.code as u8);
    enc.str(&err.message);
}

fn decode_wire_error(dec: &mut Decoder<'_>) -> Result<WireError, StoreError> {
    let raw = dec.u8("error code")?;
    let code = ErrorCode::from_u8(raw)
        .ok_or_else(|| StoreError::corrupt(format!("unknown error code {raw}")))?;
    let message = dec.str("error message")?;
    Ok(WireError { code, message })
}

/// Encodes a response payload (frame it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut enc = Encoder::new();
    match resp {
        Response::Error(err) => {
            enc.u8(RESP_ERROR);
            encode_wire_error(&mut enc, err);
        }
        Response::Rows(reply) => {
            enc.u8(RESP_ROWS);
            encode_reply_body(&mut enc, reply);
        }
        Response::Batch(slots) => {
            enc.u8(RESP_BATCH);
            enc.usize(slots.len());
            for slot in slots {
                match slot {
                    Ok(reply) => {
                        enc.u8(1);
                        encode_reply_body(&mut enc, reply);
                    }
                    Err(err) => {
                        enc.u8(0);
                        encode_wire_error(&mut enc, err);
                    }
                }
            }
        }
        Response::Stats(json) => {
            enc.u8(RESP_STATS);
            enc.str(json);
        }
        Response::Pong => enc.u8(RESP_PONG),
        Response::Bye => enc.u8(RESP_BYE),
        Response::Append(reply) => {
            enc.u8(RESP_APPEND);
            encode_reply_body(&mut enc, reply);
        }
    }
    enc.into_bytes()
}

/// Decodes a response payload.
///
/// # Errors
/// Same typed taxonomy as [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, StoreError> {
    let mut dec = Decoder::new(payload);
    let resp = match dec.u8("response tag")? {
        RESP_ERROR => Response::Error(decode_wire_error(&mut dec)?),
        RESP_ROWS => Response::Rows(decode_reply_body(&mut dec)?),
        RESP_BATCH => {
            let count = dec.seq(1, "batch slots")?;
            let mut slots = Vec::with_capacity(count);
            for i in 0..count {
                match dec.u8(&format!("batch slot {i} tag"))? {
                    1 => slots.push(Ok(decode_reply_body(&mut dec)?)),
                    0 => slots.push(Err(decode_wire_error(&mut dec)?)),
                    other => {
                        return Err(StoreError::corrupt(format!(
                            "batch slot {i}: unknown tag {other}"
                        )))
                    }
                }
            }
            Response::Batch(slots)
        }
        RESP_STATS => Response::Stats(dec.str("stats json")?),
        RESP_PONG => Response::Pong,
        RESP_BYE => Response::Bye,
        RESP_APPEND => Response::Append(decode_reply_body(&mut dec)?),
        other => return Err(StoreError::corrupt(format!("unknown response tag {other}"))),
    };
    dec.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reply() -> QueryReply {
        QueryReply {
            rows: vec![
                WireRow {
                    a: "s0".into(),
                    b: None,
                    offset: None,
                    distance: 0.25,
                },
                WireRow {
                    a: "s1".into(),
                    b: Some("s2".into()),
                    offset: None,
                    distance: 1.5,
                },
                WireRow {
                    a: "s3".into(),
                    b: None,
                    offset: Some(17),
                    distance: 0.125,
                },
            ],
            plan: "IndexRange".into(),
            stats: ExecStats {
                candidates: 9,
                refined: 5,
                false_hits: 2,
                nodes_visited: 4,
                disk_accesses: 13,
                pool_hits: 3,
                pool_misses: 1,
            },
            shard_stats: Vec::new(),
        }
    }

    fn sharded_reply() -> QueryReply {
        let mut reply = sample_reply();
        reply.plan = "Sharded(2):IndexRange".into();
        reply.shard_stats = vec![
            ExecStats {
                candidates: 4,
                refined: 2,
                false_hits: 1,
                nodes_visited: 3,
                disk_accesses: 7,
                pool_hits: 3,
                pool_misses: 0,
            },
            ExecStats {
                candidates: 5,
                refined: 3,
                false_hits: 1,
                nodes_visited: 1,
                disk_accesses: 6,
                pool_hits: 0,
                pool_misses: 1,
            },
        ];
        reply
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query("FIND 3 NEAREST TO walks.s0 IN walks".into()),
            Request::Batch {
                queries: vec!["a".into(), "b".into()],
                threads: 4,
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
            Request::Append {
                relation: "walks".into(),
                rows: vec![
                    IngestRow {
                        label: "s0".into(),
                        values: vec![1.5, -0.25],
                    },
                    IngestRow {
                        label: "fresh".into(),
                        values: vec![0.0],
                    },
                ],
            },
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Error(WireError::new(ErrorCode::Timeout, "10s elapsed")),
            Response::Rows(sample_reply()),
            Response::Rows(sharded_reply()),
            Response::Batch(vec![
                Ok(sample_reply()),
                Ok(sharded_reply()),
                Err(WireError::new(ErrorCode::BadQuery, "nope")),
            ]),
            Response::Stats("{\"queries\":1}".into()),
            Response::Pong,
            Response::Bye,
            Response::Append(sample_reply()),
            Response::Error(WireError::new(ErrorCode::Unsupported, "paged relation")),
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn framed_round_trip_through_a_buffer() {
        let req = Request::Query("JOIN walks WITHIN 1".into());
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(&req)).unwrap();
        let payload = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    #[test]
    fn clean_close_truncation_and_cap_are_typed() {
        // EOF at the boundary: clean close.
        assert!(matches!(
            read_frame(&mut (&[] as &[u8]), 1024),
            Err(FrameError::Closed)
        ));
        // Truncated header.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        assert!(matches!(
            read_frame(&mut &buf[..10], 1024),
            Err(FrameError::Malformed(StoreError::Truncated { .. }))
        ));
        // Mid-body EOF.
        assert!(matches!(
            read_frame(&mut &buf[..HEADER_LEN + 3], 1024),
            Err(FrameError::Malformed(StoreError::Truncated { .. }))
        ));
        // Oversized declared length is refused before allocation.
        let mut huge = buf.clone();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut huge.as_slice(), 1024),
            Err(FrameError::TooLarge { max: 1024, .. })
        ));
        // A payload bit flip is a checksum mismatch.
        let mut flipped = buf.clone();
        flipped[HEADER_LEN] ^= 0x10;
        assert!(matches!(
            read_frame(&mut flipped.as_slice(), 1024),
            Err(FrameError::Malformed(StoreError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn hostile_payloads_decode_to_typed_errors() {
        // Unknown tags.
        assert!(decode_request(&[99]).is_err());
        assert!(decode_response(&[99]).is_err());
        // Empty payloads.
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
        // A batch declaring u64::MAX queries must die in the allocation
        // guard, not in an allocation.
        let mut enc = Encoder::new();
        enc.u8(REQ_BATCH);
        enc.u32(2);
        enc.u64(u64::MAX);
        assert!(matches!(
            decode_request(&enc.into_bytes()),
            Err(StoreError::Truncated { .. } | StoreError::Corrupt { .. })
        ));
        // Trailing garbage after a valid request is corrupt.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(matches!(
            decode_request(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        // An APPEND declaring u64::MAX rows dies in the allocation guard.
        let mut enc = Encoder::new();
        enc.u8(REQ_APPEND);
        enc.str("walks");
        enc.u64(u64::MAX);
        assert!(matches!(
            decode_request(&enc.into_bytes()),
            Err(StoreError::Truncated { .. } | StoreError::Corrupt { .. })
        ));
        // A non-finite APPEND value is refused at decode time — it can
        // never reach the engine through the binary protocol.
        let req = Request::Append {
            relation: "walks".into(),
            rows: vec![IngestRow {
                label: "s0".into(),
                values: vec![1.0],
            }],
        };
        let mut bytes = encode_request(&req);
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert!(decode_request(&bytes).is_err());
        // A non-finite distance in a response is corrupt.
        let mut reply = sample_reply();
        reply.rows[0].distance = 0.0;
        let mut bytes = encode_response(&Response::Rows(reply));
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn prefixed_read_matches_unprefixed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"sniffed").unwrap();
        let payload = read_frame_prefixed(&mut &buf[8..], &buf[..8], 1024).unwrap();
        assert_eq!(payload, b"sniffed");
    }
}
