//! The engine boundary: what the server needs from a query engine.
//!
//! `tsq-service` sits *below* `tsq-lang` in the crate DAG (so the `tsq`
//! shell can embed a server), which means it cannot name `SharedCatalog`
//! directly. Instead the server is generic over this small object-safe
//! trait; `tsq-lang` implements it for `SharedCatalog`, and tests
//! implement it with mock engines (slow queries, gated queries) to
//! exercise timeouts and admission control deterministically.

use tsq_core::plan::ExecStats;

/// One answer row as it crosses the wire: labels, the optional
/// subsequence offset, and the exact distance. The mirror of
/// `tsq_lang::Row` without the crate dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// First (or only) series label.
    pub a: String,
    /// Second label for join rows.
    pub b: Option<String>,
    /// Window offset for subsequence rows.
    pub offset: Option<u64>,
    /// Exact distance.
    pub distance: f64,
}

/// One `APPEND` row as it crosses the wire: a series label and the
/// values appended to its tail. The mirror of `tsq_lang::AppendRow`
/// without the crate dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRow {
    /// Series label; an unknown label starts a new series.
    pub label: String,
    /// Values appended to that series, in order.
    pub values: Vec<f64>,
}

/// A successful query answer: rows, the physical operator the planner
/// chose, and the full execution counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryReply {
    /// Answer rows.
    pub rows: Vec<WireRow>,
    /// Name of the physical operator that ran (e.g. `IndexRange`, or
    /// `Sharded(4):IndexRange` for a scatter-gather run).
    pub plan: String,
    /// Execution counters (candidates, refines, disk accesses, ...).
    /// For a sharded relation this is the exact sum of
    /// [`QueryReply::shard_stats`].
    pub stats: ExecStats,
    /// Per-shard execution counters of a scatter-gather run, in shard
    /// order — empty for unsharded relations and mutations.
    pub shard_stats: Vec<ExecStats>,
}

/// Why the engine rejected or failed a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query text did not lex, parse, or resolve — the client's
    /// fault; maps to wire code `BadQuery` and HTTP 400.
    BadQuery(String),
    /// The engine accepted the query but execution failed — maps to wire
    /// code `Engine` and HTTP 500.
    Failed(String),
    /// The request named an operation this engine (or this relation)
    /// cannot perform — e.g. APPEND to a relation backed by an immutable
    /// page file. Maps to wire code `Unsupported` and HTTP 409.
    Unsupported(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadQuery(m) => write!(f, "bad query: {m}"),
            EngineError::Failed(m) => write!(f, "engine failure: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A query engine the server can put behind the wire.
///
/// Implementations must be safe to call from many threads at once — the
/// server fans requests over a worker pool. `execute_batch` exists so an
/// engine with a smarter batch path (per-query lock acquisition in
/// `SharedCatalog`, so writers interleave with a served batch) can
/// provide it; the default runs the queries sequentially.
pub trait Engine: Send + Sync + 'static {
    /// Parses and executes one query.
    fn execute(&self, query: &str) -> Result<QueryReply, EngineError>;

    /// Executes a batch; `threads` is a parallelism hint the
    /// implementation may clamp or ignore. Slot `i` of the result always
    /// answers `queries[i]`.
    fn execute_batch(
        &self,
        queries: Vec<String>,
        threads: usize,
    ) -> Vec<Result<QueryReply, EngineError>> {
        let _ = threads;
        queries.iter().map(|q| self.execute(q)).collect()
    }

    /// Applies one atomic `APPEND`: every row lands (and every index is
    /// maintained incrementally) or none does. The reply carries one row
    /// per distinct label — `a` is the label, `offset` the series' new
    /// length, `distance` the number of points appended — and `plan` is
    /// `"Append"`. The default refuses with
    /// [`EngineError::Unsupported`], so read-only engines need not
    /// override anything.
    fn append(&self, relation: &str, rows: Vec<IngestRow>) -> Result<QueryReply, EngineError> {
        let _ = rows;
        Err(EngineError::Unsupported(format!(
            "this engine cannot APPEND to {relation:?}: it serves a read-only catalog"
        )))
    }
}
