//! A deliberately minimal HTTP/1.1 facade: enough of the protocol for
//! `curl`, load generators, and metric scrapers — not a web framework.
//!
//! The server sniffs the first bytes of each connection: frames starting
//! with the `tsq-store` magic take the binary path, anything starting
//! with an HTTP method token lands here. One request per connection
//! (`Connection: close`), bounded header and body sizes, and every
//! malformed input is a typed [`HttpError`] answered with a 4xx — the
//! hostile-input guarantees of the binary protocol apply here too.

use std::io::Read;

/// Cap on the request head (request line + headers).
const MAX_HEAD_LEN: usize = 16 * 1024;

/// A parsed HTTP request: method, path, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (e.g. `/metrics`).
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why an HTTP request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Not parseable as HTTP/1.1 (bad request line, header overflow,
    /// bad `Content-Length`).
    Malformed(String),
    /// The declared body exceeds the server's cap.
    TooLarge {
        /// Declared `Content-Length`.
        len: u64,
        /// The cap.
        max: usize,
    },
    /// The connection died mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed http request: {m}"),
            HttpError::TooLarge { len, max } => {
                write!(f, "http body declares {len} byte(s), cap is {max}")
            }
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// True when the sniffed first bytes look like an HTTP request line.
pub fn looks_like_http(prefix: &[u8]) -> bool {
    const METHODS: [&[u8]; 7] = [
        b"GET ", b"POST", b"PUT ", b"HEAD", b"DELE", b"OPTI", b"PATC",
    ];
    METHODS.iter().any(|m| prefix.starts_with(m))
}

/// Reads one HTTP/1.1 request whose first `prefix` bytes were already
/// consumed by protocol sniffing. The head is capped at 16 KiB, the body
/// at `max_body` — a hostile `Content-Length` is refused before any
/// allocation.
///
/// # Errors
/// [`HttpError::Malformed`], [`HttpError::TooLarge`], [`HttpError::Io`].
pub fn read_request(
    r: &mut impl Read,
    prefix: &[u8],
    max_body: usize,
) -> Result<HttpRequest, HttpError> {
    // Accumulate until the blank line ending the head.
    let mut head: Vec<u8> = prefix.to_vec();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_LEN {
            return Err(HttpError::Malformed(format!(
                "request head exceeds {MAX_HEAD_LEN} bytes"
            )));
        }
        match r.read(&mut byte)? {
            0 => return Err(HttpError::Malformed("eof before end of headers".into())),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-utf8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }
    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let len: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
                if len > max_body as u64 {
                    return Err(HttpError::TooLarge { len, max: max_body });
                }
                content_length = len as usize;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(HttpRequest {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

/// Renders a complete HTTP/1.1 response with a JSON (or plain) body.
pub fn response(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Renders a JSON error body `{"error": code, "message": ...}`.
pub fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"error\":\"{}\",\"message\":\"{}\"}}",
        json_escape(code),
        json_escape(message)
    )
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_and_post() {
        let raw = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut &raw[8..], &raw[..8], 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());

        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 11\r\n\r\nJOIN walks ";
        let req = read_request(&mut &raw[8..], &raw[..8], 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"JOIN walks ");
    }

    #[test]
    fn hostile_requests_are_typed_errors() {
        // Garbage request line.
        let raw = b"BLORP\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], &[], 1024),
            Err(HttpError::Malformed(_))
        ));
        // Oversized declared body refused before allocation.
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], &[], 1024),
            Err(HttpError::TooLarge { max: 1024, .. })
        ));
        // Bad content-length.
        let raw = b"POST /q HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], &[], 1024),
            Err(HttpError::Malformed(_))
        ));
        // EOF before the blank line.
        let raw = b"GET /half HTTP";
        assert!(matches!(
            read_request(&mut &raw[..], &[], 1024),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn sniffing_and_rendering() {
        assert!(looks_like_http(b"GET /a HT"));
        assert!(looks_like_http(b"POST /query"));
        assert!(!looks_like_http(b"TSQSNAP\0"));
        assert!(!looks_like_http(b"garbage!"));
        let resp = response(200, "OK", "application/json", "{\"a\":1}");
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
        assert!(text.contains("Content-Length: 7"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
