//! Cumulative service metrics: lock-free counters updated on every
//! request, snapshot-able at any time, rendered as JSON for both the
//! HTTP `/metrics` endpoint and the binary `STATS` request.
//!
//! Everything hot is an atomic; the only lock guards the per-plan
//! choice counts (a small map touched once per successful query) and it
//! recovers from poisoning like every other lock in the workspace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::engine::QueryReply;
use crate::wire::ErrorCode;

/// Live counters for one server. Shared behind an `Arc`; all methods
/// take `&self`.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    timeouts: AtomicU64,
    overloads: AtomicU64,
    shutdown_rejections: AtomicU64,
    malformed: AtomicU64,
    unsupported: AtomicU64,
    tcp_requests: AtomicU64,
    http_requests: AtomicU64,
    in_flight: AtomicU64,
    rows: AtomicU64,
    candidates: AtomicU64,
    refined: AtomicU64,
    false_hits: AtomicU64,
    nodes_visited: AtomicU64,
    disk_accesses: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    sharded_queries: AtomicU64,
    shards_probed: AtomicU64,
    /// Successful queries per physical operator the planner chose.
    plans: Mutex<BTreeMap<String, u64>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
            shutdown_rejections: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            unsupported: AtomicU64::new(0),
            tcp_requests: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            refined: AtomicU64::new(0),
            false_hits: AtomicU64::new(0),
            nodes_visited: AtomicU64::new(0),
            disk_accesses: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            sharded_queries: AtomicU64::new(0),
            shards_probed: AtomicU64::new(0),
            plans: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one request arriving over the binary protocol.
    pub fn tcp_request(&self) {
        self.tcp_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request arriving over the HTTP facade.
    pub fn http_request(&self) {
        self.http_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query entering execution; pair with
    /// [`Metrics::query_done`]. Returns the previous in-flight count so
    /// admission control can bound the gauge exactly.
    pub fn query_started(&self) -> u64 {
        self.in_flight.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a query leaving execution (success or failure).
    pub fn query_done(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a successful query: its row count, execution counters,
    /// and the planner's operator choice.
    pub fn record_ok(&self, reply: &QueryReply) {
        self.queries_ok.fetch_add(1, Ordering::Relaxed);
        self.rows
            .fetch_add(reply.rows.len() as u64, Ordering::Relaxed);
        self.candidates
            .fetch_add(reply.stats.candidates as u64, Ordering::Relaxed);
        self.refined
            .fetch_add(reply.stats.refined as u64, Ordering::Relaxed);
        self.false_hits
            .fetch_add(reply.stats.false_hits as u64, Ordering::Relaxed);
        self.nodes_visited
            .fetch_add(reply.stats.nodes_visited, Ordering::Relaxed);
        self.disk_accesses
            .fetch_add(reply.stats.disk_accesses, Ordering::Relaxed);
        self.pool_hits
            .fetch_add(reply.stats.pool_hits, Ordering::Relaxed);
        self.pool_misses
            .fetch_add(reply.stats.pool_misses, Ordering::Relaxed);
        if !reply.shard_stats.is_empty() {
            self.sharded_queries.fetch_add(1, Ordering::Relaxed);
            self.shards_probed
                .fetch_add(reply.shard_stats.len() as u64, Ordering::Relaxed);
        }
        let mut plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        *plans.entry(reply.plan.clone()).or_insert(0) += 1;
    }

    /// Records a failed request under its wire-level error code.
    pub fn record_err(&self, code: ErrorCode) {
        match code {
            ErrorCode::Timeout => self.timeouts.fetch_add(1, Ordering::Relaxed),
            ErrorCode::Overloaded => self.overloads.fetch_add(1, Ordering::Relaxed),
            ErrorCode::ShuttingDown => self.shutdown_rejections.fetch_add(1, Ordering::Relaxed),
            ErrorCode::Malformed | ErrorCode::TooLarge => {
                self.malformed.fetch_add(1, Ordering::Relaxed)
            }
            ErrorCode::Unsupported => self.unsupported.fetch_add(1, Ordering::Relaxed),
            ErrorCode::BadQuery | ErrorCode::Engine => {
                self.queries_err.fetch_add(1, Ordering::Relaxed)
            }
        };
    }

    /// A point-in-time copy of every counter, plus the executor's
    /// process-wide work-stealing pool counters sampled live (the pool
    /// is shared by every relation and request, so the numbers are
    /// service-level by construction).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let pool = tsq_core::executor::pool_stats();
        let plans = self
            .plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs_f64(),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            shutdown_rejections: self.shutdown_rejections.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            unsupported: self.unsupported.load(Ordering::Relaxed),
            tcp_requests: self.tcp_requests.load(Ordering::Relaxed),
            http_requests: self.http_requests.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
            false_hits: self.false_hits.load(Ordering::Relaxed),
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
            disk_accesses: self.disk_accesses.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            sharded_queries: self.sharded_queries.load(Ordering::Relaxed),
            shards_probed: self.shards_probed.load(Ordering::Relaxed),
            pool_tasks: pool.tasks,
            pool_steals: pool.steals,
            plans,
        }
    }

    /// Current in-flight query count (the admission-control gauge).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }
}

/// A frozen copy of [`Metrics`], plain data for rendering and asserting.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Queries answered successfully.
    pub queries_ok: u64,
    /// Queries rejected by the engine (bad query text or execution
    /// failure).
    pub queries_err: u64,
    /// Queries that exceeded the per-query timeout.
    pub timeouts: u64,
    /// Queries refused by admission control.
    pub overloads: u64,
    /// Queries refused because the server was draining.
    pub shutdown_rejections: u64,
    /// Malformed or oversized frames/requests.
    pub malformed: u64,
    /// Requests refused as unsupported (e.g. APPEND to a paged
    /// relation).
    pub unsupported: u64,
    /// Requests over the binary protocol.
    pub tcp_requests: u64,
    /// Requests over the HTTP facade.
    pub http_requests: u64,
    /// Queries executing right now.
    pub in_flight: u64,
    /// Total answer rows returned.
    pub rows: u64,
    /// Summed index-level candidates.
    pub candidates: u64,
    /// Summed exact distance refinements.
    pub refined: u64,
    /// Summed refine rejections.
    pub false_hits: u64,
    /// Summed R\*-tree node visits.
    pub nodes_visited: u64,
    /// Summed paper-accounting disk accesses (nodes visited +
    /// candidates).
    pub disk_accesses: u64,
    /// Summed measured buffer-pool hits (paged relations only).
    pub pool_hits: u64,
    /// Summed measured buffer-pool misses — actual page reads.
    pub pool_misses: u64,
    /// Successful queries answered by scatter-gather over a sharded
    /// relation.
    pub sharded_queries: u64,
    /// Total shards carrying counters across those queries.
    pub shards_probed: u64,
    /// Tasks executed by the process-wide work-stealing pool since
    /// process start (sampled at snapshot time, not per query).
    pub pool_tasks: u64,
    /// Tasks a pool worker stole from a sibling's deque.
    pub pool_steals: u64,
    /// Successful queries per chosen physical operator.
    pub plans: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut plans = String::from("{");
        for (i, (plan, count)) in self.plans.iter().enumerate() {
            if i > 0 {
                plans.push(',');
            }
            plans.push_str(&format!("\"{}\":{}", crate::http::json_escape(plan), count));
        }
        plans.push('}');
        format!(
            concat!(
                "{{\"uptime_secs\":{:.3},",
                "\"queries_ok\":{},\"queries_err\":{},",
                "\"timeouts\":{},\"overloads\":{},\"shutdown_rejections\":{},",
                "\"malformed\":{},\"unsupported\":{},",
                "\"tcp_requests\":{},\"http_requests\":{},\"in_flight\":{},",
                "\"rows\":{},\"candidates\":{},\"refined\":{},\"false_hits\":{},",
                "\"nodes_visited\":{},\"disk_accesses\":{},",
                "\"pool_hits\":{},\"pool_misses\":{},",
                "\"sharded_queries\":{},\"shards_probed\":{},",
                "\"pool_tasks\":{},\"pool_steals\":{},",
                "\"plans\":{}}}"
            ),
            self.uptime_secs,
            self.queries_ok,
            self.queries_err,
            self.timeouts,
            self.overloads,
            self.shutdown_rejections,
            self.malformed,
            self.unsupported,
            self.tcp_requests,
            self.http_requests,
            self.in_flight,
            self.rows,
            self.candidates,
            self.refined,
            self.false_hits,
            self.nodes_visited,
            self.disk_accesses,
            self.pool_hits,
            self.pool_misses,
            self.sharded_queries,
            self.shards_probed,
            self.pool_tasks,
            self.pool_steals,
            plans
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsq_core::plan::ExecStats;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.tcp_request();
        m.http_request();
        assert_eq!(m.query_started(), 0);
        assert_eq!(m.in_flight(), 1);
        m.record_ok(&QueryReply {
            rows: vec![],
            plan: "SeqScan".into(),
            stats: ExecStats {
                candidates: 3,
                refined: 2,
                false_hits: 1,
                nodes_visited: 0,
                disk_accesses: 10,
                pool_hits: 7,
                pool_misses: 4,
            },
            shard_stats: Vec::new(),
        });
        m.query_done();
        m.record_err(ErrorCode::Timeout);
        m.record_err(ErrorCode::Overloaded);
        m.record_err(ErrorCode::BadQuery);
        m.record_err(ErrorCode::Malformed);
        m.record_err(ErrorCode::Unsupported);
        let snap = m.snapshot();
        assert_eq!(snap.queries_ok, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.overloads, 1);
        assert_eq!(snap.queries_err, 1);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.unsupported, 1);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.disk_accesses, 10);
        assert_eq!(snap.pool_hits, 7);
        assert_eq!(snap.pool_misses, 4);
        assert_eq!(snap.plans.get("SeqScan"), Some(&1));
        let json = snap.to_json();
        assert!(json.contains("\"queries_ok\":1"));
        assert!(json.contains("\"pool_hits\":7,\"pool_misses\":4"));
        assert!(json.contains("\"pool_tasks\":"));
        assert!(json.contains("\"pool_steals\":"));
        assert!(json.contains("\"plans\":{\"SeqScan\":1}"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
