//! # tsq-service — network front end for the similarity query engine
//!
//! Puts the query engine of Rafiei & Mendelzon's *Similarity-Based
//! Queries for Time Series Data* (SIGMOD 1997) behind a socket. One TCP
//! port speaks two protocols, told apart by sniffing the first bytes of
//! each connection:
//!
//! * **binary frames** — every message is a `tsq-store` frame (magic,
//!   format version, endianness marker, length prefix, CRC-32 trailer),
//!   so the wire inherits the snapshot format's versioning and
//!   corruption detection ([`wire`]);
//! * **HTTP/1.1 JSON** — a minimal facade for `curl` and scrapers:
//!   `POST /query`, `POST /append`, `GET /metrics`, `GET /health`,
//!   `POST /shutdown` ([`http`]).
//!
//! The server ([`server`]) is generic over the object-safe
//! [`engine::Engine`] trait — `tsq-lang` implements it for its shared
//! catalog — and provides per-query timeouts, admission control with
//! typed `Overloaded`/`Timeout` errors, cumulative metrics
//! ([`metrics`]), and graceful shutdown that drains admitted work. A
//! blocking [`client::Client`] and the `tsq-client` binary speak the
//! binary protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod http;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use engine::{Engine, EngineError, IngestRow, QueryReply, WireRow};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{reply_json, Server, ServerHandle, ServiceConfig};
pub use wire::{ErrorCode, FrameError, Request, Response, WireError, DEFAULT_MAX_FRAME_LEN};
