//! The TCP server: protocol sniffing, a connection-per-worker accept
//! pool, a bounded execution pool with admission control and per-query
//! timeouts, and graceful drain-then-stop shutdown.
//!
//! ```text
//!        clients                        server
//!   ┌── binary frames ──┐      ┌─ acceptor workers ─┐     ┌─ exec pool ─┐
//!   │ tsq-client, bench │ ───► │ sniff first bytes  │ ──► │ engine.run  │
//!   └── HTTP/1.1 JSON ──┘      │ frame/HTTP session │ ◄── │ (bounded)   │
//!                              └────────────────────┘     └─────────────┘
//! ```
//!
//! **Admission control.** Every query (or batch) becomes a job on a
//! bounded queue feeding the execution pool. When `max_inflight` jobs
//! are queued or running, new requests are answered with a typed
//! `Overloaded` error immediately — the queue never grows without bound
//! and latency stays measurable instead of collapsing.
//!
//! **Timeouts.** The connection worker waits `query_timeout` (scaled by
//! batch size for batches) for its job's answer; past that the client
//! gets a typed `Timeout` error. The job itself runs to completion on
//! the pool — answers are discarded, not interrupted — so admission
//! accounting stays exact.
//!
//! **Graceful shutdown.** A [`tsq_core::executor::CancelToken`] flips
//! once: acceptors stop admitting work (typed `ShuttingDown` errors),
//! drain their current connections, and exit; then the job queue is
//! closed and the exec pool finishes everything already admitted before
//! joining. In-flight work is never dropped.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tsq_core::executor::{clamp_threads, CancelToken};

use crate::engine::{Engine, EngineError, IngestRow, QueryReply};
use crate::http::{self, HttpError, HttpRequest};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::wire::{
    self, ErrorCode, FrameError, Request, Response, WireError, DEFAULT_MAX_FRAME_LEN,
};

/// Tuning knobs for one server. `Default` is sized for tests and small
/// deployments; every field is public.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Acceptor/connection worker threads (connection-per-worker).
    /// Clamped by [`clamp_threads`].
    pub workers: usize,
    /// Query-execution pool threads. Clamped by [`clamp_threads`].
    pub exec_threads: usize,
    /// Most jobs queued + running before admission control answers
    /// `Overloaded` (at least 1).
    pub max_inflight: usize,
    /// Per-query answer deadline; batches get `timeout × batch len`.
    pub query_timeout: Duration,
    /// Cap on a single wire frame's payload and an HTTP body.
    pub max_frame_len: usize,
    /// Socket read-timeout granularity: how often blocked reads check
    /// for shutdown.
    pub poll_interval: Duration,
    /// How long a started frame / HTTP request may dribble before the
    /// connection is dropped (slow-loris bound).
    pub frame_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            exec_threads: 0, // let the machine decide
            max_inflight: 64,
            query_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(25),
            frame_timeout: Duration::from_secs(10),
        }
    }
}

enum JobKind {
    One(String),
    Batch {
        queries: Vec<String>,
        threads: usize,
    },
    Append {
        relation: String,
        rows: Vec<IngestRow>,
    },
}

enum JobReply {
    One(Result<QueryReply, EngineError>),
    Batch(Vec<Result<QueryReply, EngineError>>),
}

struct Job {
    kind: JobKind,
    reply_tx: SyncSender<JobReply>,
}

struct Shared {
    engine: Arc<dyn Engine>,
    metrics: Metrics,
    cancel: CancelToken,
    config: ServiceConfig,
    addr: SocketAddr,
    /// Senders for new jobs; `None` once the queue is closed for drain.
    job_tx: Mutex<Option<SyncSender<Job>>>,
}

impl Shared {
    fn job_sender(&self) -> Option<SyncSender<Job>> {
        self.job_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A running server. Obtain with [`Server::start`]; stop with
/// [`ServerHandle::shutdown`] (or let a remote `SHUTDOWN` / `POST
/// /shutdown` trigger the same drain and observe it via
/// [`ServerHandle::wait`]).
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `engine` with `config`.
    ///
    /// # Errors
    /// Propagates socket bind failures.
    pub fn start<E: Engine>(
        addr: impl ToSocketAddrs,
        engine: E,
        config: ServiceConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = clamp_threads(config.workers.max(1));
        let exec_threads = clamp_threads(config.exec_threads);
        let max_inflight = config.max_inflight.max(1);
        let config = ServiceConfig {
            workers,
            exec_threads,
            max_inflight,
            ..config
        };
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(max_inflight);
        let shared = Arc::new(Shared {
            engine: Arc::new(engine),
            metrics: Metrics::new(),
            cancel: CancelToken::new(),
            config,
            addr: local,
            job_tx: Mutex::new(Some(job_tx)),
        });
        let job_rx = Arc::new(Mutex::new(job_rx));
        let exec_workers: Vec<JoinHandle<()>> = (0..exec_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("tsq-exec-{i}"))
                    .spawn(move || exec_loop(&shared, &rx))
                    .expect("spawn exec worker")
            })
            .collect();
        let listener = Arc::new(listener);
        let acceptors: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let listener = Arc::clone(&listener);
                std::thread::Builder::new()
                    .name(format!("tsq-conn-{i}"))
                    .spawn(move || accept_loop(&shared, &listener))
                    .expect("spawn acceptor")
            })
            .collect();
        Ok(ServerHandle {
            shared,
            acceptors,
            exec_workers,
        })
    }
}

/// Owner handle of a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    exec_workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A point-in-time copy of the server's cumulative metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// True once shutdown has been initiated (locally or remotely).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.cancel.is_cancelled()
    }

    /// Initiates graceful shutdown and blocks until the drain completes:
    /// acceptors finish their current connections, the job queue closes,
    /// and the exec pool finishes every admitted job. Returns the final
    /// metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        initiate_shutdown(&self.shared);
        self.wait()
    }

    /// Blocks until the server stops (e.g. a remote `SHUTDOWN` request
    /// or `POST /shutdown`), draining exactly like
    /// [`ServerHandle::shutdown`]. Returns the final metrics.
    pub fn wait(mut self) -> MetricsSnapshot {
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        // No acceptors → no new submissions. Close the queue so the exec
        // pool drains what was admitted and exits.
        self.shared
            .job_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        for h in self.exec_workers.drain(..) {
            let _ = h.join();
        }
        self.shared.metrics.snapshot()
    }
}

/// Flips the cancel token and unblocks every acceptor with wake
/// connections. Idempotent; callable from a handler thread (remote
/// shutdown) or the handle.
fn initiate_shutdown(shared: &Shared) {
    if shared.cancel.is_cancelled() {
        return;
    }
    shared.cancel.cancel();
    for _ in 0..shared.config.workers {
        // Each throwaway connection unblocks at most one accept(); an
        // acceptor that is busy with a real connection re-checks the
        // token before its next accept instead.
        let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
    }
}

fn exec_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    /// Releases the admission slot when dropped — including during a
    /// panic unwind. The slot was claimed in `submit`, and the waiter
    /// there may already have timed out and left, so nobody else will
    /// ever decrement it: without this guard a panicking engine leaks
    /// the slot and permanently shrinks the server's capacity.
    struct SlotGuard<'a>(&'a Metrics);
    impl Drop for SlotGuard<'_> {
        fn drop(&mut self) {
            self.0.query_done();
        }
    }
    loop {
        // Hold the lock only to dequeue — workers run jobs concurrently.
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else { break };
        let _slot = SlotGuard(&shared.metrics);
        let reply = match job.kind {
            JobKind::One(q) => JobReply::One(shared.engine.execute(&q)),
            JobKind::Batch { queries, threads } => {
                JobReply::Batch(shared.engine.execute_batch(queries, threads))
            }
            JobKind::Append { relation, rows } => {
                JobReply::One(shared.engine.append(&relation, rows))
            }
        };
        // The waiter may have timed out and gone; that is its problem.
        let _ = job.reply_tx.try_send(reply);
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.cancel.is_cancelled() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.cancel.is_cancelled() {
                    break; // a shutdown wake-up, not a client
                }
                handle_connection(shared, &stream);
            }
            Err(_) => {
                if shared.cancel.is_cancelled() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// A `Read` over a socket that retries its read-timeout ticks until data
/// arrives, the optional deadline passes, or the server is cancelled.
struct TimedReader<'a> {
    stream: &'a TcpStream,
    cancel: &'a CancelToken,
    deadline: Option<Instant>,
}

impl Read for TimedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.cancel.is_cancelled() {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "server shutting down",
                ));
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "frame read deadline exceeded",
                    ));
                }
            }
            let mut s = self.stream;
            match s.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                r => return r,
            }
        }
    }
}

/// Reads the 8 protocol-sniffing bytes. `None` means "close quietly":
/// clean EOF, a mid-prefix stall past the frame timeout, cancellation
/// while idle, or a socket error.
fn read_prefix(shared: &Shared, stream: &TcpStream) -> Option<[u8; 8]> {
    let mut buf = [0u8; 8];
    let mut filled = 0;
    let mut started: Option<Instant> = None;
    loop {
        if shared.cancel.is_cancelled() {
            return None;
        }
        if let Some(t) = started {
            if t.elapsed() > shared.config.frame_timeout {
                return None; // slow-loris: a dribbled prefix
            }
        }
        let mut s = stream;
        match s.read(&mut buf[filled..]) {
            Ok(0) => return None,
            Ok(n) => {
                if started.is_none() {
                    started = Some(Instant::now());
                }
                filled += n;
                if filled == 8 {
                    return Some(buf);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => return None,
        }
    }
}

fn handle_connection(shared: &Shared, stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.frame_timeout));
    let Some(prefix) = read_prefix(shared, stream) else {
        return;
    };
    if prefix == *tsq_store::MAGIC {
        binary_session(shared, stream, prefix);
    } else if http::looks_like_http(&prefix) {
        http_session(shared, stream, &prefix);
    }
    // Anything else: an unknown protocol; close without a word.
}

fn respond(stream: &TcpStream, resp: &Response) -> io::Result<()> {
    let mut s = stream;
    wire::write_frame(&mut s, &wire::encode_response(resp))
}

fn binary_session(shared: &Shared, stream: &TcpStream, first_prefix: [u8; 8]) {
    let mut prefix = Some(first_prefix);
    loop {
        let head = match prefix.take() {
            Some(p) => p,
            None => {
                if shared.cancel.is_cancelled() {
                    return; // drained our last answer; stop serving
                }
                match read_prefix(shared, stream) {
                    Some(p) => p,
                    None => return,
                }
            }
        };
        if head != *tsq_store::MAGIC {
            return; // the client lost frame sync; nothing sane to say
        }
        let mut reader = TimedReader {
            stream,
            cancel: &shared.cancel,
            deadline: Some(Instant::now() + shared.config.frame_timeout),
        };
        let payload =
            match wire::read_frame_prefixed(&mut reader, &head, shared.config.max_frame_len) {
                Ok(p) => p,
                Err(FrameError::TooLarge { len, max }) => {
                    // Refused before allocation; the unread payload makes
                    // the stream unusable, so answer typed and close.
                    shared.metrics.record_err(ErrorCode::TooLarge);
                    let err = WireError::new(
                        ErrorCode::TooLarge,
                        format!("frame declares {len} byte(s), cap is {max}"),
                    );
                    let _ = respond(stream, &Response::Error(err));
                    return;
                }
                Err(FrameError::Malformed(e)) => {
                    // The bytes arrived but failed validation (version,
                    // endianness, CRC): typed error, then close — the
                    // stream position is untrustworthy.
                    shared.metrics.record_err(ErrorCode::Malformed);
                    let err = WireError::new(ErrorCode::Malformed, e.to_string());
                    let _ = respond(stream, &Response::Error(err));
                    return;
                }
                Err(_) => return, // disconnect / timeout mid-frame
            };
        shared.metrics.tcp_request();
        let req = match wire::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame passed its checksum, so we are still in sync:
                // answer typed and keep the session.
                shared.metrics.record_err(ErrorCode::Malformed);
                let err = WireError::new(ErrorCode::Malformed, e.to_string());
                if respond(stream, &Response::Error(err)).is_err() {
                    return;
                }
                continue;
            }
        };
        let resp = dispatch(shared, req);
        let done = matches!(resp, Response::Bye);
        if respond(stream, &resp).is_err() || done {
            return;
        }
    }
}

fn dispatch(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.metrics.snapshot().to_json()),
        Request::Shutdown => {
            initiate_shutdown(shared);
            Response::Bye
        }
        Request::Query(q) => match submit(shared, JobKind::One(q), shared.config.query_timeout) {
            Ok(JobReply::One(Ok(reply))) => {
                shared.metrics.record_ok(&reply);
                Response::Rows(reply)
            }
            Ok(JobReply::One(Err(e))) => {
                let err = WireError::from(e);
                shared.metrics.record_err(err.code);
                Response::Error(err)
            }
            Ok(JobReply::Batch(_)) => Response::Error(WireError::new(
                ErrorCode::Engine,
                "engine answered a query with a batch reply",
            )),
            Err(err) => {
                shared.metrics.record_err(err.code);
                Response::Error(err)
            }
        },
        Request::Append { relation, rows } => {
            let kind = JobKind::Append { relation, rows };
            match submit(shared, kind, shared.config.query_timeout) {
                Ok(JobReply::One(Ok(reply))) => {
                    shared.metrics.record_ok(&reply);
                    Response::Append(reply)
                }
                Ok(JobReply::One(Err(e))) => {
                    let err = WireError::from(e);
                    shared.metrics.record_err(err.code);
                    Response::Error(err)
                }
                Ok(JobReply::Batch(_)) => Response::Error(WireError::new(
                    ErrorCode::Engine,
                    "engine answered an append with a batch reply",
                )),
                Err(err) => {
                    shared.metrics.record_err(err.code);
                    Response::Error(err)
                }
            }
        }
        Request::Batch { queries, threads } => {
            let n = queries.len().max(1) as u32;
            let timeout = shared
                .config
                .query_timeout
                .checked_mul(n)
                .unwrap_or(Duration::MAX);
            let kind = JobKind::Batch {
                queries,
                threads: threads as usize,
            };
            match submit(shared, kind, timeout) {
                Ok(JobReply::Batch(slots)) => {
                    let out = slots
                        .into_iter()
                        .map(|slot| match slot {
                            Ok(reply) => {
                                shared.metrics.record_ok(&reply);
                                Ok(reply)
                            }
                            Err(e) => {
                                let err = WireError::from(e);
                                shared.metrics.record_err(err.code);
                                Err(err)
                            }
                        })
                        .collect();
                    Response::Batch(out)
                }
                Ok(JobReply::One(_)) => Response::Error(WireError::new(
                    ErrorCode::Engine,
                    "engine answered a batch with a query reply",
                )),
                Err(err) => {
                    shared.metrics.record_err(err.code);
                    Response::Error(err)
                }
            }
        }
    }
}

/// Admission control + execution + timeout: the one path every query
/// and batch takes, over either protocol.
fn submit(shared: &Shared, kind: JobKind, timeout: Duration) -> Result<JobReply, WireError> {
    if shared.cancel.is_cancelled() {
        return Err(WireError::new(
            ErrorCode::ShuttingDown,
            "server is draining; no new queries",
        ));
    }
    let Some(tx) = shared.job_sender() else {
        return Err(WireError::new(
            ErrorCode::ShuttingDown,
            "server is draining; no new queries",
        ));
    };
    // Exact admission: the gauge is bumped optimistically and rolled
    // back, so `max_inflight` genuinely bounds queued + running jobs.
    let prev = shared.metrics.query_started();
    if prev >= shared.config.max_inflight as u64 {
        shared.metrics.query_done();
        return Err(WireError::new(
            ErrorCode::Overloaded,
            format!(
                "{} queries in flight, cap is {}",
                prev, shared.config.max_inflight
            ),
        ));
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    match tx.try_send(Job { kind, reply_tx }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.metrics.query_done();
            return Err(WireError::new(
                ErrorCode::Overloaded,
                "execution queue is full",
            ));
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.metrics.query_done();
            return Err(WireError::new(
                ErrorCode::ShuttingDown,
                "execution pool has stopped",
            ));
        }
    }
    match reply_rx.recv_timeout(timeout) {
        Ok(reply) => Ok(reply),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(WireError::new(
            ErrorCode::Timeout,
            format!("no answer within {timeout:?} (query still completes server-side)"),
        )),
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(WireError::new(
            ErrorCode::Engine,
            "execution worker dropped the reply",
        )),
    }
}

// ---------------------------------------------------------------------
// HTTP facade
// ---------------------------------------------------------------------

fn http_session(shared: &Shared, stream: &TcpStream, prefix: &[u8]) {
    let mut reader = TimedReader {
        stream,
        cancel: &shared.cancel,
        deadline: Some(Instant::now() + shared.config.frame_timeout),
    };
    let bytes = match http::read_request(&mut reader, prefix, shared.config.max_frame_len) {
        Ok(req) => {
            shared.metrics.http_request();
            http_dispatch(shared, &req)
        }
        Err(HttpError::TooLarge { len, max }) => {
            shared.metrics.record_err(ErrorCode::TooLarge);
            http::response(
                413,
                "Payload Too Large",
                "application/json",
                &http::error_body(
                    ErrorCode::TooLarge.name(),
                    &format!("body declares {len} byte(s), cap is {max}"),
                ),
            )
        }
        Err(HttpError::Malformed(m)) => {
            shared.metrics.record_err(ErrorCode::Malformed);
            http::response(
                400,
                "Bad Request",
                "application/json",
                &http::error_body(ErrorCode::Malformed.name(), &m),
            )
        }
        Err(HttpError::Io(_)) => return,
    };
    let mut s = stream;
    let _ = s.write_all(&bytes);
    let _ = s.flush();
}

fn http_dispatch(shared: &Shared, req: &HttpRequest) -> Vec<u8> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let status = if shared.cancel.is_cancelled() {
                "draining"
            } else {
                "ok"
            };
            http::response(
                200,
                "OK",
                "application/json",
                &format!(
                    "{{\"status\":\"{status}\",\"in_flight\":{}}}",
                    shared.metrics.in_flight()
                ),
            )
        }
        ("GET", "/metrics") => http::response(
            200,
            "OK",
            "application/json",
            &shared.metrics.snapshot().to_json(),
        ),
        ("POST", "/shutdown") => {
            initiate_shutdown(shared);
            http::response(200, "OK", "application/json", "{\"status\":\"draining\"}")
        }
        ("POST", "/query") => {
            let Ok(query) = std::str::from_utf8(&req.body) else {
                shared.metrics.record_err(ErrorCode::Malformed);
                return http::response(
                    400,
                    "Bad Request",
                    "application/json",
                    &http::error_body(ErrorCode::Malformed.name(), "body is not utf-8"),
                );
            };
            let query = query.trim();
            if query.is_empty() {
                shared.metrics.record_err(ErrorCode::BadQuery);
                return http::response(
                    400,
                    "Bad Request",
                    "application/json",
                    &http::error_body(ErrorCode::BadQuery.name(), "empty query body"),
                );
            }
            match submit(
                shared,
                JobKind::One(query.to_string()),
                shared.config.query_timeout,
            ) {
                Ok(JobReply::One(Ok(reply))) => {
                    shared.metrics.record_ok(&reply);
                    http::response(200, "OK", "application/json", &reply_json(&reply))
                }
                Ok(JobReply::One(Err(e))) => {
                    let err = WireError::from(e);
                    shared.metrics.record_err(err.code);
                    http_error_response(&err)
                }
                Ok(JobReply::Batch(_)) => http_error_response(&WireError::new(
                    ErrorCode::Engine,
                    "engine answered a query with a batch reply",
                )),
                Err(err) => {
                    shared.metrics.record_err(err.code);
                    http_error_response(&err)
                }
            }
        }
        ("POST", "/append") => {
            let Ok(body) = std::str::from_utf8(&req.body) else {
                shared.metrics.record_err(ErrorCode::Malformed);
                return http::response(
                    400,
                    "Bad Request",
                    "application/json",
                    &http::error_body(ErrorCode::Malformed.name(), "body is not utf-8"),
                );
            };
            let (relation, rows) = match parse_append_body(body) {
                Ok(parsed) => parsed,
                Err(m) => {
                    shared.metrics.record_err(ErrorCode::BadQuery);
                    return http::response(
                        400,
                        "Bad Request",
                        "application/json",
                        &http::error_body(ErrorCode::BadQuery.name(), &m),
                    );
                }
            };
            let kind = JobKind::Append { relation, rows };
            match submit(shared, kind, shared.config.query_timeout) {
                Ok(JobReply::One(Ok(reply))) => {
                    shared.metrics.record_ok(&reply);
                    http::response(200, "OK", "application/json", &reply_json(&reply))
                }
                Ok(JobReply::One(Err(e))) => {
                    let err = WireError::from(e);
                    shared.metrics.record_err(err.code);
                    http_error_response(&err)
                }
                Ok(JobReply::Batch(_)) => http_error_response(&WireError::new(
                    ErrorCode::Engine,
                    "engine answered an append with a batch reply",
                )),
                Err(err) => {
                    shared.metrics.record_err(err.code);
                    http_error_response(&err)
                }
            }
        }
        _ => http::response(
            404,
            "Not Found",
            "application/json",
            &http::error_body("not-found", &format!("{} {}", req.method, req.path)),
        ),
    }
}

/// Parses a `POST /append` body: the first non-blank line names the
/// relation, every following line is `label, v1, v2, ...` (blank lines
/// and `#` comments skipped). Values must be finite — the engine's
/// atomicity guarantee starts at "no row is half-parsed".
fn parse_append_body(body: &str) -> Result<(String, Vec<IngestRow>), String> {
    let mut lines = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let relation = lines
        .next()
        .ok_or_else(|| "empty append body (want: relation, then label,v1,... lines)".to_string())?
        .to_string();
    let mut rows = Vec::new();
    for line in lines {
        let mut fields = line.split(',').map(str::trim);
        let label = fields.next().unwrap_or("").to_string();
        if label.is_empty() {
            return Err(format!("append line {:?} has no label", line));
        }
        let mut values = Vec::new();
        for field in fields {
            let v: f64 = field
                .parse()
                .map_err(|_| format!("append value {field:?} for {label:?} is not a number"))?;
            if !v.is_finite() {
                return Err(format!(
                    "append value {field:?} for {label:?} is not finite"
                ));
            }
            values.push(v);
        }
        if values.is_empty() {
            return Err(format!("append row for {label:?} carries no values"));
        }
        rows.push(IngestRow { label, values });
    }
    if rows.is_empty() {
        return Err(format!("append body for {relation:?} carries no rows"));
    }
    Ok((relation, rows))
}

fn http_error_response(err: &WireError) -> Vec<u8> {
    let (status, reason) = match err.code {
        ErrorCode::BadQuery | ErrorCode::Malformed => (400, "Bad Request"),
        ErrorCode::TooLarge => (413, "Payload Too Large"),
        ErrorCode::Overloaded | ErrorCode::ShuttingDown => (503, "Service Unavailable"),
        ErrorCode::Timeout => (504, "Gateway Timeout"),
        ErrorCode::Engine => (500, "Internal Server Error"),
        // The request was well-formed but names a capability the target
        // cannot offer (e.g. APPEND to a paged relation): a conflict
        // with the resource's state, not a client syntax error.
        ErrorCode::Unsupported => (409, "Conflict"),
    };
    http::response(
        status,
        reason,
        "application/json",
        &http::error_body(err.code.name(), &err.message),
    )
}

/// Renders one counters object as JSON (shared by the merged `stats`
/// field and the per-shard `shards` array).
fn stats_json(stats: &tsq_core::plan::ExecStats) -> String {
    format!(
        "{{\"candidates\":{},\"refined\":{},\"false_hits\":{},\
         \"nodes_visited\":{},\"disk_accesses\":{},\
         \"pool_hits\":{},\"pool_misses\":{}}}",
        stats.candidates,
        stats.refined,
        stats.false_hits,
        stats.nodes_visited,
        stats.disk_accesses,
        stats.pool_hits,
        stats.pool_misses
    )
}

/// Renders a [`QueryReply`] as the HTTP facade's JSON answer. A
/// scatter-gather reply carries a `shards` array with one counters
/// object per shard; `stats` is always their exact sum.
pub fn reply_json(reply: &QueryReply) -> String {
    let mut rows = String::from("[");
    for (i, row) in reply.rows.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!("{{\"a\":\"{}\"", http::json_escape(&row.a)));
        match &row.b {
            Some(b) => rows.push_str(&format!(",\"b\":\"{}\"", http::json_escape(b))),
            None => rows.push_str(",\"b\":null"),
        }
        match row.offset {
            Some(off) => rows.push_str(&format!(",\"offset\":{off}")),
            None => rows.push_str(",\"offset\":null"),
        }
        rows.push_str(&format!(",\"distance\":{}}}", row.distance));
    }
    rows.push(']');
    let mut shards = String::from("[");
    for (i, shard) in reply.shard_stats.iter().enumerate() {
        if i > 0 {
            shards.push(',');
        }
        shards.push_str(&stats_json(shard));
    }
    shards.push(']');
    format!(
        "{{\"plan\":\"{}\",\"row_count\":{},\"rows\":{},\
         \"stats\":{},\"shards\":{}}}",
        http::json_escape(&reply.plan),
        reply.rows.len(),
        rows,
        stats_json(&reply.stats),
        shards
    )
}
