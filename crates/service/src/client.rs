//! A blocking client for the binary wire protocol — used by the shell,
//! the load bench, the CI smoke test, and anyone scripting the server
//! without HTTP.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::engine::{IngestRow, QueryReply};
use crate::wire::{self, FrameError, Request, Response, WireError, DEFAULT_MAX_FRAME_LEN};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(io::Error),
    /// The server's bytes did not frame or decode.
    Frame(FrameError),
    /// The server answered with a response the request does not admit
    /// (e.g. `Pong` to a query).
    Protocol(String),
    /// The server answered with a typed error frame.
    Remote(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "bad server frame: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Remote(e) => write!(f, "server error [{}]: {}", e.code.name(), e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other),
        }
    }
}

impl From<tsq_store::StoreError> for ClientError {
    fn from(e: tsq_store::StoreError) -> Self {
        ClientError::Frame(FrameError::Malformed(e))
    }
}

/// A connected binary-protocol session. One request in flight at a time;
/// the connection is reusable until an error or [`Client::shutdown`].
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Caps how large a server response this client will accept.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Sets a read timeout so a dead server cannot hang the client.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, &wire::encode_request(req))?;
        let payload = wire::read_frame(&mut self.stream, self.max_frame)?;
        Ok(wire::decode_response(&payload)?)
    }

    /// Executes one query; a typed server error becomes
    /// [`ClientError::Remote`].
    ///
    /// # Errors
    /// [`ClientError`] in all its variants.
    pub fn query(&mut self, query: &str) -> Result<QueryReply, ClientError> {
        match self.round_trip(&Request::Query(query.to_string()))? {
            Response::Rows(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Protocol(format!(
                "expected rows or error, got {}",
                response_kind(&other)
            ))),
        }
    }

    /// Executes a batch; slot `i` answers `queries[i]`. A whole-batch
    /// rejection (overload, shutdown) is [`ClientError::Remote`].
    ///
    /// # Errors
    /// [`ClientError`] in all its variants.
    pub fn batch(
        &mut self,
        queries: &[String],
        threads: u32,
    ) -> Result<Vec<Result<QueryReply, WireError>>, ClientError> {
        let req = Request::Batch {
            queries: queries.to_vec(),
            threads,
        };
        match self.round_trip(&req)? {
            Response::Batch(slots) => Ok(slots),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Protocol(format!(
                "expected batch or error, got {}",
                response_kind(&other)
            ))),
        }
    }

    /// Atomically appends rows of points to series of one relation. The
    /// reply carries one row per distinct label (`a` = label, `offset` =
    /// the series' new length, `distance` = points appended). An APPEND
    /// the relation cannot take (e.g. paged storage attached) is a typed
    /// [`ClientError::Remote`] with code `unsupported`.
    ///
    /// # Errors
    /// [`ClientError`] in all its variants.
    pub fn append(
        &mut self,
        relation: &str,
        rows: Vec<IngestRow>,
    ) -> Result<QueryReply, ClientError> {
        let req = Request::Append {
            relation: relation.to_string(),
            rows,
        };
        match self.round_trip(&req)? {
            Response::Append(reply) => Ok(reply),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Protocol(format!(
                "expected append or error, got {}",
                response_kind(&other)
            ))),
        }
    }

    /// Fetches the server's metrics snapshot as JSON.
    ///
    /// # Errors
    /// [`ClientError`] in all its variants.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Protocol(format!(
                "expected stats or error, got {}",
                response_kind(&other)
            ))),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    /// [`ClientError`] in all its variants.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Protocol(format!(
                "expected pong or error, got {}",
                response_kind(&other)
            ))),
        }
    }

    /// Asks the server to drain and stop; consumes the connection (the
    /// server closes it after saying goodbye).
    ///
    /// # Errors
    /// [`ClientError`] in all its variants.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Protocol(format!(
                "expected bye or error, got {}",
                response_kind(&other)
            ))),
        }
    }

    /// Sends raw bytes on the underlying socket — for hostile-input
    /// tests that need to speak broken protocol on purpose.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one response frame without sending anything — pairs with
    /// [`Client::send_raw`].
    ///
    /// # Errors
    /// [`ClientError`] in all its variants.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = wire::read_frame(&mut self.stream, self.max_frame)?;
        Ok(wire::decode_response(&payload)?)
    }

    /// Reads until the server closes the connection; returns how many
    /// bytes arrived. For tests asserting a clean close.
    ///
    /// # Errors
    /// Propagates socket failures other than a clean close.
    pub fn drain_to_eof(&mut self) -> Result<usize, ClientError> {
        let mut sink = [0u8; 4096];
        let mut total = 0;
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => return Ok(total),
                Ok(n) => total += n,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

fn response_kind(resp: &Response) -> &'static str {
    match resp {
        Response::Error(_) => "error",
        Response::Rows(_) => "rows",
        Response::Batch(_) => "batch",
        Response::Stats(_) => "stats",
        Response::Pong => "pong",
        Response::Bye => "bye",
        Response::Append(_) => "append",
    }
}
