//! Server behavior over a real socket, with mock engines so timeouts,
//! admission control, and shutdown draining are deterministic: the
//! engine decides when to be slow or stuck; the server must stay typed,
//! bounded, and drain-clean throughout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsq_service::engine::{Engine, EngineError, IngestRow, QueryReply, WireRow};
use tsq_service::wire::ErrorCode;
use tsq_service::{Client, ClientError, Server, ServerHandle, ServiceConfig};

/// Answers every query with one row echoing the query text; `bad ...`
/// and `boom ...` trigger the two engine error kinds.
struct EchoEngine;

impl Engine for EchoEngine {
    fn execute(&self, query: &str) -> Result<QueryReply, EngineError> {
        if let Some(rest) = query.strip_prefix("bad") {
            return Err(EngineError::BadQuery(format!("rejected{rest}")));
        }
        if let Some(rest) = query.strip_prefix("boom") {
            return Err(EngineError::Failed(format!("exploded{rest}")));
        }
        Ok(QueryReply {
            rows: vec![WireRow {
                a: query.to_string(),
                b: None,
                offset: None,
                distance: query.len() as f64,
            }],
            plan: "Echo".to_string(),
            stats: Default::default(),
            shard_stats: Vec::new(),
        })
    }
}

/// Blocks every query until the test releases the gate; counts entries
/// and exits so drain behavior is observable.
struct GatedEngine {
    entered: Arc<AtomicUsize>,
    finished: Arc<AtomicUsize>,
    release: Arc<AtomicBool>,
}

impl Engine for GatedEngine {
    fn execute(&self, query: &str) -> Result<QueryReply, EngineError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        while !self.release.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.finished.fetch_add(1, Ordering::SeqCst);
        Ok(QueryReply {
            rows: vec![],
            plan: format!("Gated({query})"),
            stats: Default::default(),
            shard_stats: Vec::new(),
        })
    }
}

/// Panics on `panic ...` queries, otherwise echoes. Exercises the
/// exec-loop slot guard: a panicking engine must not leak its admission
/// slot.
struct FragileEngine;

impl Engine for FragileEngine {
    fn execute(&self, query: &str) -> Result<QueryReply, EngineError> {
        if query.starts_with("panic") {
            panic!("engine blew up on {query:?}");
        }
        EchoEngine.execute(query)
    }
}

/// Accepts appends into an in-memory ledger (relation `"paged"` refuses
/// with `Unsupported`, mirroring a page-file-backed relation); queries
/// echo like [`EchoEngine`].
struct LedgerEngine {
    lens: std::sync::Mutex<std::collections::BTreeMap<String, u64>>,
}

impl LedgerEngine {
    fn new() -> Self {
        LedgerEngine {
            lens: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }
}

impl Engine for LedgerEngine {
    fn execute(&self, query: &str) -> Result<QueryReply, EngineError> {
        EchoEngine.execute(query)
    }

    fn append(&self, relation: &str, rows: Vec<IngestRow>) -> Result<QueryReply, EngineError> {
        if relation == "paged" {
            return Err(EngineError::Unsupported(
                "APPEND to a relation with paged storage attached".into(),
            ));
        }
        let mut lens = self.lens.lock().unwrap();
        let mut out = Vec::new();
        for row in rows {
            let len = lens.entry(row.label.clone()).or_insert(0);
            *len += row.values.len() as u64;
            out.push(WireRow {
                a: row.label,
                b: None,
                offset: Some(*len),
                distance: row.values.len() as f64,
            });
        }
        Ok(QueryReply {
            rows: out,
            plan: "Append".to_string(),
            stats: Default::default(),
            shard_stats: Vec::new(),
        })
    }
}

fn quick_config() -> ServiceConfig {
    ServiceConfig {
        workers: 3,
        exec_threads: 2,
        query_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        frame_timeout: Duration::from_secs(2),
        ..ServiceConfig::default()
    }
}

fn connect(handle: &ServerHandle) -> Client {
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

#[test]
fn binary_protocol_round_trips_over_a_socket() {
    let handle = Server::start("127.0.0.1:0", EchoEngine, quick_config()).unwrap();
    let mut client = connect(&handle);
    client.ping().unwrap();
    let reply = client.query("hello wire").unwrap();
    assert_eq!(reply.rows.len(), 1);
    assert_eq!(reply.rows[0].a, "hello wire");
    assert_eq!(reply.plan, "Echo");

    // Typed engine errors, session intact afterwards.
    match client.query("bad grammar") {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::BadQuery);
            assert!(e.message.contains("rejected"));
        }
        other => panic!("expected remote BadQuery, got {other:?}"),
    }
    match client.query("boom today") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Engine),
        other => panic!("expected remote Engine error, got {other:?}"),
    }
    client.ping().unwrap();

    // Batches keep slot order, mixing successes and failures.
    let queries: Vec<String> = vec!["one".into(), "bad two".into(), "three".into()];
    let slots = client.batch(&queries, 2).unwrap();
    assert_eq!(slots.len(), 3);
    assert_eq!(slots[0].as_ref().unwrap().rows[0].a, "one");
    assert_eq!(slots[1].as_ref().unwrap_err().code, ErrorCode::BadQuery);
    assert_eq!(slots[2].as_ref().unwrap().rows[0].a, "three");

    // Metrics saw all of it.
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"queries_ok\":3"), "{stats}");
    assert!(stats.contains("\"plans\":{\"Echo\":3}"), "{stats}");

    let snap = handle.shutdown();
    assert_eq!(snap.queries_ok, 3);
    assert_eq!(snap.queries_err, 3);
    assert!(snap.tcp_requests >= 7);
}

#[test]
fn append_round_trips_and_unsupported_is_typed_end_to_end() {
    let handle = Server::start("127.0.0.1:0", LedgerEngine::new(), quick_config()).unwrap();
    let mut client = connect(&handle);

    // Appends accumulate across calls; the reply reports new lengths.
    let row = |label: &str, n: usize| IngestRow {
        label: label.into(),
        values: vec![0.5; n],
    };
    let reply = client
        .append("walks", vec![row("s0", 3), row("s1", 2)])
        .unwrap();
    assert_eq!(reply.plan, "Append");
    assert_eq!(reply.rows[0].offset, Some(3));
    assert_eq!(reply.rows[1].offset, Some(2));
    let reply = client.append("walks", vec![row("s0", 4)]).unwrap();
    assert_eq!(reply.rows[0].offset, Some(7));

    // A paged relation refuses with the stable typed code — and the
    // session survives to serve more work.
    match client.append("paged", vec![row("s0", 1)]) {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::Unsupported);
            assert_eq!(e.code.name(), "unsupported");
            assert!(e.message.contains("paged"));
        }
        other => panic!("expected remote Unsupported, got {other:?}"),
    }
    client.ping().unwrap();
    let reply = client.append("walks", vec![row("s2", 1)]).unwrap();
    assert_eq!(reply.rows[0].offset, Some(1));

    // The stats surface counts the refusal under its own key.
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"unsupported\":1"), "{stats}");

    let snap = handle.shutdown();
    assert_eq!(snap.unsupported, 1);
    assert_eq!(snap.queries_ok, 3);
    assert_eq!(snap.plans.get("Append"), Some(&3));
}

#[test]
fn default_engine_refuses_append_with_typed_unsupported() {
    // EchoEngine never overrides `append`: the trait's default must turn
    // the verb away typed, not panic or hang.
    let handle = Server::start("127.0.0.1:0", EchoEngine, quick_config()).unwrap();
    let mut client = connect(&handle);
    match client.append(
        "walks",
        vec![IngestRow {
            label: "s0".into(),
            values: vec![1.0],
        }],
    ) {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::Unsupported);
            assert!(e.message.contains("read-only"));
        }
        other => panic!("expected remote Unsupported, got {other:?}"),
    }
    // Queries still flow on the same connection.
    let reply = client.query("still here").unwrap();
    assert_eq!(reply.rows[0].a, "still here");
    handle.shutdown();
}

#[test]
fn per_query_timeout_returns_typed_error() {
    let entered = Arc::new(AtomicUsize::new(0));
    let finished = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let engine = GatedEngine {
        entered: Arc::clone(&entered),
        finished: Arc::clone(&finished),
        release: Arc::clone(&release),
    };
    let config = ServiceConfig {
        query_timeout: Duration::from_millis(80),
        ..quick_config()
    };
    let handle = Server::start("127.0.0.1:0", engine, config).unwrap();
    let mut client = connect(&handle);
    match client.query("stuck") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Timeout),
        other => panic!("expected timeout, got {other:?}"),
    }
    // The job was admitted and still completes server-side after release.
    let deadline = Instant::now() + Duration::from_secs(5);
    while entered.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "timed-out query never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    release.store(true, Ordering::SeqCst);
    let snap = handle.shutdown();
    assert_eq!(finished.load(Ordering::SeqCst), 1);
    assert_eq!(snap.timeouts, 1);
    assert_eq!(snap.in_flight, 0);
}

#[test]
fn admission_control_rejects_with_overloaded() {
    let entered = Arc::new(AtomicUsize::new(0));
    let finished = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let engine = GatedEngine {
        entered: Arc::clone(&entered),
        finished: Arc::clone(&finished),
        release: Arc::clone(&release),
    };
    let config = ServiceConfig {
        max_inflight: 1,
        exec_threads: 1,
        ..quick_config()
    };
    let handle = Server::start("127.0.0.1:0", engine, config).unwrap();

    let addr = handle.addr();
    let first = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();
        client.query("occupier")
    });
    // Wait until the first query holds the only in-flight slot.
    let deadline = Instant::now() + Duration::from_secs(5);
    while entered.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "first query never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut second = connect(&handle);
    match second.query("rejected") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }
    release.store(true, Ordering::SeqCst);
    let reply = first.join().unwrap().unwrap();
    assert_eq!(reply.plan, "Gated(occupier)");
    let snap = handle.shutdown();
    assert_eq!(snap.overloads, 1);
    assert_eq!(snap.queries_ok, 1);
    assert_eq!(finished.load(Ordering::SeqCst), 1);
}

#[test]
fn panicking_engine_releases_its_admission_slot() {
    let config = ServiceConfig {
        max_inflight: 1,
        exec_threads: 2,
        ..quick_config()
    };
    let handle = Server::start("127.0.0.1:0", FragileEngine, config).unwrap();
    let mut client = connect(&handle);
    match client.query("panic now") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Engine),
        other => panic!("expected engine error, got {other:?}"),
    }
    // Before the exec-loop slot guard, the panic skipped the gauge
    // decrement: with max_inflight = 1 every later query came back
    // Overloaded forever. Now the slot is released during unwind.
    let reply = client.query("still alive").unwrap();
    assert_eq!(reply.rows[0].a, "still alive");
    let snap = handle.shutdown();
    assert_eq!(snap.in_flight, 0, "admission slot leaked by the panic");
    assert_eq!(snap.queries_ok, 1);
    assert_eq!(snap.overloads, 0);
}

#[test]
fn timeout_storm_never_exhausts_admission_slots() {
    // Timed-out queries keep running server-side; their slots must come
    // back when the engine finishes (stale answers are discarded). After
    // a storm that saturates max_inflight with timeouts, fresh queries
    // are admitted again and the gauge reads exactly zero.
    let entered = Arc::new(AtomicUsize::new(0));
    let finished = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let engine = GatedEngine {
        entered: Arc::clone(&entered),
        finished: Arc::clone(&finished),
        release: Arc::clone(&release),
    };
    let config = ServiceConfig {
        max_inflight: 2,
        exec_threads: 2,
        query_timeout: Duration::from_millis(40),
        ..quick_config()
    };
    let handle = Server::start("127.0.0.1:0", engine, config).unwrap();
    let mut client = connect(&handle);
    for q in ["stuck one", "stuck two"] {
        match client.query(q) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Timeout),
            other => panic!("expected timeout, got {other:?}"),
        }
    }
    // Both slots are held by the still-running queries; a third is
    // correctly refused while they occupy the cap.
    match client.query("third") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }
    release.store(true, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(5);
    while finished.load(Ordering::SeqCst) < 2 {
        assert!(Instant::now() < deadline, "stuck queries never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Slots handed back: a fresh query is admitted, not Overloaded.
    let reply = client.query("after the storm").unwrap();
    assert_eq!(reply.plan, "Gated(after the storm)");
    let snap = handle.shutdown();
    assert_eq!(snap.timeouts, 2);
    assert_eq!(snap.overloads, 1);
    assert_eq!(snap.in_flight, 0, "timed-out queries leaked their slots");
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let entered = Arc::new(AtomicUsize::new(0));
    let finished = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let engine = GatedEngine {
        entered: Arc::clone(&entered),
        finished: Arc::clone(&finished),
        release: Arc::clone(&release),
    };
    let handle = Server::start("127.0.0.1:0", engine, quick_config()).unwrap();
    let addr = handle.addr();

    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();
        client.query("survivor")
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while entered.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "query never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Shutdown starts draining; it must block on the stuck query.
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(60));
    assert!(!shutdown.is_finished(), "shutdown dropped in-flight work");
    assert_eq!(finished.load(Ordering::SeqCst), 0);

    release.store(true, Ordering::SeqCst);
    let snap = shutdown.join().unwrap();
    // The in-flight query was answered, not dropped.
    let reply = inflight.join().unwrap().unwrap();
    assert_eq!(reply.plan, "Gated(survivor)");
    assert_eq!(finished.load(Ordering::SeqCst), 1);
    assert_eq!(snap.queries_ok, 1);
    assert_eq!(snap.in_flight, 0);

    // The port no longer serves new work.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_timeout(Some(Duration::from_secs(2))).ok();
            assert!(late.ping().is_err(), "server still answering after drain");
        }
    }
}

#[test]
fn remote_shutdown_request_stops_the_server() {
    let handle = Server::start("127.0.0.1:0", EchoEngine, quick_config()).unwrap();
    let addr = handle.addr();
    let mut client = connect(&handle);
    client.query("before").unwrap();
    client.shutdown().unwrap();
    // wait() observes the remote shutdown and returns final metrics.
    let snap = handle.wait();
    assert_eq!(snap.queries_ok, 1);
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_timeout(Some(Duration::from_secs(2))).ok();
            assert!(late.ping().is_err());
        }
    }
}

fn http_round_trip(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn http_facade_speaks_json_on_the_same_port() {
    let handle = Server::start("127.0.0.1:0", EchoEngine, quick_config()).unwrap();
    let addr = handle.addr();

    let health = http_round_trip(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let ok = http_round_trip(
        addr,
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\nhello web",
    );
    assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    assert!(ok.contains("\"a\":\"hello web\""), "{ok}");
    assert!(ok.contains("\"plan\":\"Echo\""), "{ok}");

    let bad = http_round_trip(
        addr,
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 7\r\n\r\nbad req",
    );
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    assert!(bad.contains("\"error\":\"bad-query\""), "{bad}");

    let boom = http_round_trip(
        addr,
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nboom",
    );
    assert!(boom.starts_with("HTTP/1.1 500"), "{boom}");

    let missing = http_round_trip(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    let metrics = http_round_trip(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(metrics.contains("\"queries_ok\":1"), "{metrics}");
    assert!(metrics.contains("\"http_requests\":"), "{metrics}");
    assert!(metrics.contains("\"plans\":{\"Echo\":1}"), "{metrics}");

    // Both protocols on one port: a binary client still works.
    let mut client = connect(&handle);
    client.ping().unwrap();
    let snap = handle.shutdown();
    assert_eq!(snap.queries_ok, 1);
    assert_eq!(snap.queries_err, 2);
    assert!(snap.http_requests >= 5);
}

#[test]
fn http_append_endpoint_is_typed_across_every_failure() {
    let handle = Server::start("127.0.0.1:0", LedgerEngine::new(), quick_config()).unwrap();
    let addr = handle.addr();

    // Happy path: first line names the relation, then CSV rows.
    let body = "walks\ns0, 1.5, 2.0\nfresh, 7\n";
    let ok = http_round_trip(
        addr,
        &format!(
            "POST /append HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    assert!(ok.contains("\"plan\":\"Append\""), "{ok}");
    assert!(ok.contains("\"a\":\"fresh\""), "{ok}");

    // A paged relation: HTTP 409 with the stable kebab-case code.
    let body = "paged\ns0, 1\n";
    let conflict = http_round_trip(
        addr,
        &format!(
            "POST /append HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(conflict.starts_with("HTTP/1.1 409"), "{conflict}");
    assert!(conflict.contains("\"error\":\"unsupported\""), "{conflict}");

    // Hostile bodies: empty, value-less row, non-numeric and non-finite
    // values — all 400, all typed, server keeps serving.
    for body in [
        "",
        "walks\n",
        "walks\ns0\n",
        "walks\ns0, soup\n",
        "walks\ns0, nan\n",
    ] {
        let bad = http_round_trip(
            addr,
            &format!(
                "POST /append HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(bad.starts_with("HTTP/1.1 400"), "{body:?}: {bad}");
        assert!(bad.contains("\"error\":\"bad-query\""), "{body:?}: {bad}");
    }
    let health = http_round_trip(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let snap = handle.shutdown();
    assert_eq!(snap.unsupported, 1);
    assert_eq!(snap.queries_ok, 1);
}

#[test]
fn http_shutdown_endpoint_drains_the_server() {
    let handle = Server::start("127.0.0.1:0", EchoEngine, quick_config()).unwrap();
    let addr = handle.addr();
    let bye = http_round_trip(addr, "POST /shutdown HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(bye.starts_with("HTTP/1.1 200 OK"), "{bye}");
    assert!(bye.contains("draining"), "{bye}");
    let snap = handle.wait();
    assert_eq!(snap.queries_ok, 0);
}
