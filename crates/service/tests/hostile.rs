//! Hostile wire-protocol inputs over a real socket: truncated length
//! prefixes, oversized declared lengths, mid-frame disconnects, and
//! post-checksum bit flips. The contract under attack is always the
//! same — a typed error frame or a clean connection close, never a
//! panic, a hang, or an unbounded allocation — and after every attack
//! the server must still serve a well-behaved client.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tsq_service::engine::{Engine, EngineError, QueryReply, WireRow};
use tsq_service::wire::{self, ErrorCode, Request, Response};
use tsq_service::{Client, Server, ServerHandle, ServiceConfig};

struct EchoEngine;

impl Engine for EchoEngine {
    fn execute(&self, query: &str) -> Result<QueryReply, EngineError> {
        Ok(QueryReply {
            rows: vec![WireRow {
                a: query.to_string(),
                b: None,
                offset: None,
                distance: 1.0,
            }],
            plan: "Echo".to_string(),
            stats: Default::default(),
            shard_stats: Vec::new(),
        })
    }
}

/// A small frame cap and a short stall timeout so attacks resolve fast.
fn hostile_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        exec_threads: 1,
        max_frame_len: 4 * 1024,
        poll_interval: Duration::from_millis(5),
        frame_timeout: Duration::from_millis(300),
        ..ServiceConfig::default()
    }
}

fn start() -> ServerHandle {
    Server::start("127.0.0.1:0", EchoEngine, hostile_config()).unwrap()
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads until the server closes; returns everything it sent.
fn read_until_close(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => return out,
        }
    }
}

/// Asserts the server is still fully alive: a fresh client pings and
/// queries successfully.
fn assert_still_serving(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    client.ping().unwrap();
    let reply = client.query("still alive").unwrap();
    assert_eq!(reply.rows[0].a, "still alive");
}

fn valid_ping_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, &wire::encode_request(&Request::Ping)).unwrap();
    buf
}

/// The hostile-input contract: the server either closed without a byte
/// or sent one well-formed typed error frame (with `expect` code) and
/// then closed. Anything else — garbage bytes, a non-error response, a
/// second frame — fails.
fn assert_clean_close_or_typed_error(answer: &[u8], expect: ErrorCode) {
    if answer.is_empty() {
        return;
    }
    let mut reader = answer;
    let payload = wire::read_frame(&mut reader, 1 << 20)
        .unwrap_or_else(|e| panic!("server sent a non-frame answer: {e}"));
    match wire::decode_response(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, expect, "{}", e.message),
        other => panic!("expected a typed error, got {other:?}"),
    }
    assert!(reader.is_empty(), "server sent bytes after the error frame");
}

#[test]
fn truncated_length_prefix_closes_cleanly() {
    let handle = start();
    // Only 10 of the 24 header bytes, then a clean client-side close.
    let frame = valid_ping_frame();
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame[..10]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let answer = read_until_close(&mut stream);
    assert_clean_close_or_typed_error(&answer, ErrorCode::Malformed);
    assert_still_serving(&handle);

    // Same, but stalling instead of closing: the frame timeout must
    // reclaim the connection (no hang).
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame[..10]).unwrap();
    let started = Instant::now();
    let answer = read_until_close(&mut stream);
    assert_clean_close_or_typed_error(&answer, ErrorCode::Malformed);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "slow-loris header held the connection open"
    );
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn oversized_declared_length_is_refused_before_allocation() {
    let handle = start();
    let mut frame = valid_ping_frame();
    // The length field lives in the last 8 header bytes: declare 2^63.
    frame[16..24].copy_from_slice(&(1u64 << 63).to_le_bytes());
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame).unwrap();
    let answer = read_until_close(&mut stream);
    let payload = wire::read_frame(&mut answer.as_slice(), 1 << 20).unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::TooLarge);
            assert!(e.message.contains("cap"), "{}", e.message);
        }
        other => panic!("expected typed TooLarge, got {other:?}"),
    }
    assert_still_serving(&handle);

    // A length just over the cap (but plausible) gets the same refusal.
    let mut frame = valid_ping_frame();
    frame[16..24].copy_from_slice(&(5u64 * 1024).to_le_bytes());
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame).unwrap();
    let answer = read_until_close(&mut stream);
    let payload = wire::read_frame(&mut answer.as_slice(), 1 << 20).unwrap();
    assert!(matches!(
        wire::decode_response(&payload).unwrap(),
        Response::Error(e) if e.code == ErrorCode::TooLarge
    ));
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn mid_frame_disconnect_closes_cleanly() {
    let handle = start();
    let frame = valid_ping_frame();
    // Header plus two payload bytes, then the client vanishes.
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame[..frame.len() - 3]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let answer = read_until_close(&mut stream);
    assert_clean_close_or_typed_error(&answer, ErrorCode::Malformed);
    assert_still_serving(&handle);

    // Declared-but-never-sent payload: header says 1 KiB, body absent.
    // The frame timeout must reclaim the connection.
    let mut frame = valid_ping_frame();
    frame[16..24].copy_from_slice(&1024u64.to_le_bytes());
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame[..24]).unwrap();
    let started = Instant::now();
    let answer = read_until_close(&mut stream);
    assert_clean_close_or_typed_error(&answer, ErrorCode::Malformed);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "absent payload held the connection open"
    );
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn payload_bit_flip_fails_the_checksum_with_a_typed_error() {
    let handle = start();
    let mut frame = valid_ping_frame();
    let payload_at = 24; // HEADER_LEN
    frame[payload_at] ^= 0x40;
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame).unwrap();
    let answer = read_until_close(&mut stream);
    let payload = wire::read_frame(&mut answer.as_slice(), 1 << 20).unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Malformed);
            assert!(e.message.contains("checksum"), "{}", e.message);
        }
        other => panic!("expected typed Malformed, got {other:?}"),
    }
    assert_still_serving(&handle);

    // A trailer (CRC) bit flip is caught the same way.
    let mut frame = valid_ping_frame();
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame).unwrap();
    let answer = read_until_close(&mut stream);
    let payload = wire::read_frame(&mut answer.as_slice(), 1 << 20).unwrap();
    assert!(matches!(
        wire::decode_response(&payload).unwrap(),
        Response::Error(e) if e.code == ErrorCode::Malformed
    ));
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn garbage_and_wrong_protocol_prefixes_close_cleanly() {
    let handle = start();
    // Neither the frame magic nor an HTTP method: closed without a byte.
    let mut stream = raw_connect(&handle);
    stream.write_all(b"SSH-2.0-OpenSSH_9.7\r\n").unwrap();
    let answer = read_until_close(&mut stream);
    assert!(answer.is_empty(), "server spoke to an unknown protocol");
    assert_still_serving(&handle);

    // Valid magic, wrong format version: typed malformed error.
    let mut frame = valid_ping_frame();
    frame[8] = 0xEE; // version word lives after the 8-byte magic
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame).unwrap();
    let answer = read_until_close(&mut stream);
    let payload = wire::read_frame(&mut answer.as_slice(), 1 << 20).unwrap();
    assert!(matches!(
        wire::decode_response(&payload).unwrap(),
        Response::Error(e) if e.code == ErrorCode::Malformed
    ));
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn valid_frame_with_hostile_payload_keeps_the_session() {
    let handle = start();
    // A correctly sealed frame whose payload is not a valid request:
    // the stream stays in sync, so the server answers typed and keeps
    // serving the same connection.
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut sealed_garbage = Vec::new();
    wire::write_frame(&mut sealed_garbage, &[0xFF, 0xAB, 0xCD]).unwrap();
    client.send_raw(&sealed_garbage).unwrap();
    match client.read_response().unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("expected typed Malformed, got {other:?}"),
    }
    // Same connection, valid request: still served.
    client.ping().unwrap();

    // An empty sealed payload is equally typed.
    let mut empty = Vec::new();
    wire::write_frame(&mut empty, &[]).unwrap();
    client.send_raw(&empty).unwrap();
    assert!(matches!(
        client.read_response().unwrap(),
        Response::Error(e) if e.code == ErrorCode::Malformed
    ));
    client.ping().unwrap();

    let snap = handle.shutdown();
    assert!(snap.malformed >= 2, "malformed counter: {}", snap.malformed);
}

#[test]
fn hostile_append_frames_keep_the_session() {
    use tsq_service::engine::IngestRow;
    use tsq_store::Encoder;
    let handle = start();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // A perfectly sealed APPEND whose payload smuggles a NaN value: the
    // decoder refuses it as malformed and the connection stays in sync.
    let req = Request::Append {
        relation: "walks".into(),
        rows: vec![IngestRow {
            label: "s0".into(),
            values: vec![1.0],
        }],
    };
    let mut payload = wire::encode_request(&req);
    let len = payload.len();
    payload[len - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
    let mut framed = Vec::new();
    wire::write_frame(&mut framed, &payload).unwrap();
    client.send_raw(&framed).unwrap();
    match client.read_response().unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("expected typed Malformed, got {other:?}"),
    }
    client.ping().unwrap();

    // A sealed APPEND declaring u64::MAX rows dies in the allocation
    // guard — typed, no allocation, session intact.
    let mut enc = Encoder::new();
    enc.u8(6); // REQ_APPEND
    enc.str("walks");
    enc.u64(u64::MAX);
    let mut framed = Vec::new();
    wire::write_frame(&mut framed, &enc.into_bytes()).unwrap();
    client.send_raw(&framed).unwrap();
    assert!(matches!(
        client.read_response().unwrap(),
        Response::Error(e) if e.code == ErrorCode::Malformed
    ));
    client.ping().unwrap();

    // A well-formed APPEND against this read-only engine: the trait
    // default answers typed Unsupported, never a panic or close.
    match client.append(
        "walks",
        vec![IngestRow {
            label: "s0".into(),
            values: vec![1.0],
        }],
    ) {
        Err(tsq_service::ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Unsupported),
        other => panic!("expected remote Unsupported, got {other:?}"),
    }
    assert_still_serving(&handle);
    let snap = handle.shutdown();
    assert_eq!(snap.malformed, 2);
    assert_eq!(snap.unsupported, 1);
}

#[test]
fn hostile_inputs_are_visible_in_metrics() {
    let handle = start();
    // One oversized declaration, one bit flip, one garbage prefix.
    let mut oversized = valid_ping_frame();
    oversized[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    let mut stream = raw_connect(&handle);
    stream.write_all(&oversized).unwrap();
    read_until_close(&mut stream);

    let mut flipped = valid_ping_frame();
    flipped[24] ^= 0x02;
    let mut stream = raw_connect(&handle);
    stream.write_all(&flipped).unwrap();
    read_until_close(&mut stream);

    let mut stream = raw_connect(&handle);
    stream.write_all(b"garbage!").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    read_until_close(&mut stream);

    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"malformed\":2"), "{stats}");
    let snap = handle.shutdown();
    assert_eq!(snap.malformed, 2);
}
