//! Negative-path coverage for query validation: nonsense thresholds and
//! windows must fail with a *typed* error — at the parser when the literal
//! itself is invalid, at the engine when only the catalog can tell — and
//! never silently produce an empty answer.

use tsq_core::SeriesRelation;
use tsq_lang::{parse, Catalog, LangError};
use tsq_series::generate::RandomWalkGenerator;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let rel =
        SeriesRelation::from_series("walks", RandomWalkGenerator::new(7).relation(20, 32)).unwrap();
    cat.register(rel).unwrap();
    cat
}

#[test]
fn negative_eps_is_a_parse_error_in_every_query_form() {
    for src in [
        "FIND SIMILAR TO walks.s0 IN walks WITHIN -1",
        "FIND SIMILAR TO walks.s0 IN walks WITHIN -0.0001 APPLY mavg(4)",
        "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN -3 WINDOW 8",
        "JOIN walks WITHIN -2 USING SCAN",
    ] {
        match parse(src) {
            Err(LangError::Parse { pos, message }) => {
                assert!(message.contains("non-negative"), "{src}: {message}");
                // The error points at the offending number, not at byte 0.
                assert!(pos > 0, "{src}");
            }
            other => panic!("{src}: expected a parse error, got {other:?}"),
        }
    }
}

#[test]
fn degenerate_window_is_a_parse_error() {
    for src in [
        "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW 0",
        "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW 1",
        "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW 7.5",
        "FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW -4",
        "FIND 2 NEAREST SUBSEQUENCE OF walks.s0 IN walks WINDOW 1",
    ] {
        assert!(
            matches!(parse(src), Err(LangError::Parse { .. })),
            "{src} should be rejected at parse time"
        );
    }
}

#[test]
fn executing_rejected_queries_never_reaches_the_engine() {
    let cat = catalog();
    // The same strings through the full run() pipeline: still parse errors.
    let err = cat
        .run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN -1 WINDOW 8")
        .unwrap_err();
    assert!(matches!(err, LangError::Parse { .. }));
    let err = cat
        .run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW 1")
        .unwrap_err();
    assert!(matches!(err, LangError::Parse { .. }));
}

#[test]
fn engine_level_validation_surfaces_typed_errors() {
    let cat = catalog();
    // Window is syntactically fine but the query object is the wrong
    // length for it: typed LengthMismatch from the engine.
    let err = cat
        .run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 1 WINDOW 8")
        .unwrap_err();
    assert!(matches!(
        err,
        LangError::Engine(tsq_core::Error::LengthMismatch {
            expected: 8,
            got: 32
        })
    ));
    // Programmatic (non-parser) construction of a negative threshold is
    // caught by the engine's own typed check.
    let idx = tsq_core::SubseqIndex::build(
        tsq_core::SubseqConfig::new(8),
        RandomWalkGenerator::new(8).relation(4, 32),
    )
    .unwrap();
    let q = tsq_series::TimeSeries::new(vec![0.0; 8]);
    assert!(matches!(
        idx.subseq_range(&q, -1.0),
        Err(tsq_core::Error::NegativeThreshold { .. })
    ));
    assert!(matches!(
        tsq_core::SubseqConfig::new(1).validate(),
        Err(tsq_core::Error::InvalidWindow { window: 1 })
    ));
}

#[test]
fn huge_or_fractional_nearest_counts_rejected() {
    let cat = catalog();
    // Saturation bug: `1e20 as usize` silently became usize::MAX before
    // the parse-time bound; fractional counts silently truncated.
    for src in [
        "FIND 1e20 NEAREST TO walks.s0 IN walks",
        "FIND 2.7 NEAREST TO walks.s0 IN walks",
        "FIND 0 NEAREST TO walks.s0 IN walks",
        "FIND -3 NEAREST TO walks.s0 IN walks",
        "FIND 1e20 NEAREST SUBSEQUENCE OF walks.s0 IN walks WINDOW 8",
    ] {
        assert!(
            matches!(cat.run(src), Err(LangError::Parse { .. })),
            "{src} should be rejected at parse time"
        );
    }
}

#[test]
fn non_finite_inputs_are_typed_errors_not_panics() {
    let cat = catalog();
    // Overflowing literals die at the lexer with a position.
    match cat.run("FIND SIMILAR TO [1e999, 2] IN walks WITHIN 1") {
        Err(LangError::Lex { message, .. }) => assert!(message.contains("overflows")),
        other => panic!("expected lex error, got {other:?}"),
    }
    assert!(matches!(
        cat.run("FIND SIMILAR TO walks.s0 IN walks WITHIN 1e999"),
        Err(LangError::Lex { .. })
    ));
    // Engine-level boundaries (bypassing the parser) reject NaN/∞ with
    // the typed NonFinite error instead of corrupting orderings.
    let idx = tsq_core::SubseqIndex::build(
        tsq_core::SubseqConfig::new(8),
        RandomWalkGenerator::new(8).relation(4, 32),
    )
    .unwrap();
    let q = tsq_series::TimeSeries::new(vec![0.0; 8]);
    assert!(matches!(
        idx.subseq_range(&q, f64::NAN),
        Err(tsq_core::Error::NonFinite { .. })
    ));
    assert!(matches!(
        idx.subseq_range(&q, f64::INFINITY),
        Err(tsq_core::Error::NonFinite { .. })
    ));
    assert!(tsq_series::TimeSeries::try_new(vec![1.0, f64::NAN]).is_err());
}

#[test]
fn whole_sequence_negative_eps_reported_with_position() {
    // Regression shape: before typed validation this produced an empty
    // result set via the engine's generic Unsupported path.
    match parse("FIND SIMILAR TO walks.s0 IN walks WITHIN -5") {
        Err(LangError::Parse { message, .. }) => {
            assert!(
                message.contains("-5"),
                "message should cite the value: {message}"
            )
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}
