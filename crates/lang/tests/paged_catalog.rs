//! Paged catalogs answer byte-identically to in-memory catalogs.
//!
//! `Catalog::open_paged` restores a snapshot and then moves every
//! relation's R\*-tree behind a pin-counted buffer pool. Storage mode is
//! an execution detail: every query form — range, k-NN, both joins, and
//! subsequence search — returns the same rows, plans, and traversal
//! counters; only the measured `pool_hits`/`pool_misses` differ (zero in
//! memory, real page traffic when paged).

use std::path::PathBuf;

use tsq_core::SeriesRelation;
use tsq_lang::Catalog;
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsq-paged-catalog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series("walks", RandomWalkGenerator::new(61).relation(80, 32))
            .unwrap(),
    )
    .unwrap();
    cat.register(
        SeriesRelation::from_series("stocks", StockGenerator::new(62).relation(40, 32)).unwrap(),
    )
    .unwrap();
    cat
}

/// Every query form, including the subsequence paths (which stay
/// unpaged: ST-indexes are built on demand from the in-memory series).
fn workload() -> Vec<String> {
    vec![
        "FIND SIMILAR TO walks.s1 IN walks WITHIN 2.5".into(),
        "FIND SIMILAR TO walks.s0 IN walks WITHIN 5 APPLY mavg(4)".into(),
        "FIND 6 NEAREST TO stocks.s3 IN stocks".into(),
        "FIND 4 NEAREST TO walks.s2 IN walks APPLY reverse".into(),
        "JOIN stocks WITHIN 1.5 APPLY mavg(4) USING INDEX".into(),
        "JOIN walks WITHIN 1.0 USING TREE".into(),
        "FIND SUBSEQUENCE OF walks.s5 IN walks WITHIN 40 WINDOW 32".into(),
        "FIND 3 NEAREST SUBSEQUENCE OF stocks.s1 IN stocks WINDOW 32".into(),
    ]
}

#[test]
fn open_paged_answers_every_query_form_identically() {
    let cat = catalog();
    let path = temp_path("equivalence.tsq");
    cat.save(&path).unwrap();

    let mut mem = Catalog::new();
    mem.open(&path).unwrap();
    // A thrashing 1 MiB pool and an effectively unbounded one must both
    // agree with memory — capacity only moves hit/miss traffic around.
    for budget_mib in [1usize, 4096] {
        let paged_path = temp_path(&format!("equivalence-{budget_mib}.tsq"));
        std::fs::copy(&path, &paged_path).unwrap();
        let mut paged = Catalog::new();
        let restored = paged.open_paged(&paged_path, budget_mib).unwrap();
        assert_eq!(restored, vec!["stocks".to_string(), "walks".to_string()]);
        for q in workload() {
            let a = mem.run(&q).unwrap();
            let b = paged.run(&q).unwrap();
            assert_eq!(a.rows, b.rows, "{q}: rows differ at {budget_mib} MiB");
            assert_eq!(a.plan, b.plan, "{q}: plan differs at {budget_mib} MiB");
            assert_eq!(a.stats.candidates, b.stats.candidates, "{q}");
            assert_eq!(a.stats.refined, b.stats.refined, "{q}");
            assert_eq!(a.stats.false_hits, b.stats.false_hits, "{q}");
            assert_eq!(a.stats.nodes_visited, b.stats.nodes_visited, "{q}");
            assert_eq!(a.stats.disk_accesses, b.stats.disk_accesses, "{q}");
            // Memory never touches a pool.
            assert_eq!(a.stats.pool_hits + a.stats.pool_misses, 0, "{q}");
        }
    }
}

#[test]
fn paged_explain_analyze_reports_measured_pool_traffic() {
    let cat = catalog();
    let path = temp_path("analyze.tsq");
    cat.save(&path).unwrap();

    let mut mem = Catalog::new();
    mem.open(&path).unwrap();
    let mut paged = Catalog::new();
    paged.open_paged(&path, 64).unwrap();

    let q = "EXPLAIN ANALYZE FIND SIMILAR TO walks.s1 IN walks WITHIN 2.5";
    let plain = mem.run(q).unwrap();
    let measured = paged.run(q).unwrap();
    let plain_text = plain.explain.expect("explain text");
    let measured_text = measured.explain.expect("explain text");
    assert!(
        !plain_text.contains("measured:"),
        "in-memory must not claim measured I/O:\n{plain_text}"
    );
    assert!(
        measured_text.contains("measured: pool_hits="),
        "paged EXPLAIN ANALYZE must report measured I/O:\n{measured_text}"
    );
    // Cold pool: the first index traversal faulted real pages in.
    assert!(measured.stats.pool_misses > 0, "cold pool must miss");
    // Warm re-run: everything resident, zero misses.
    let warm = paged.run(q).unwrap();
    assert_eq!(warm.stats.pool_misses, 0, "warm pool must not fault");
    assert_eq!(warm.stats.pool_hits, warm.stats.nodes_visited);
}

#[test]
fn paged_relations_reject_append_with_a_typed_error() {
    let cat = catalog();
    let path = temp_path("append-reject.tsq");
    cat.save(&path).unwrap();
    let mut paged = Catalog::new();
    paged.open_paged(&path, 8).unwrap();

    // The page file is immutable: APPEND must come back as the typed
    // `Unsupported` engine error — never a panic — at both entry points.
    let err = paged
        .run_mut("APPEND walks s0 VALUES (1.5, 2.0)")
        .unwrap_err();
    match &err {
        tsq_lang::LangError::Engine(tsq_core::Error::Unsupported(m)) => {
            assert!(m.contains("paged"), "message should name the cause: {m}")
        }
        other => panic!("expected Engine(Unsupported), got {other:?}"),
    }

    // The rejection is mapped to the service's own typed error (wire
    // code `unsupported`, HTTP 409) by the Engine impl.
    let shared = tsq_lang::SharedCatalog::new(paged);
    match tsq_service::Engine::append(
        &shared,
        "walks",
        vec![tsq_service::IngestRow {
            label: "s0".into(),
            values: vec![1.0],
        }],
    ) {
        Err(tsq_service::EngineError::Unsupported(m)) => assert!(m.contains("paged")),
        other => panic!("expected EngineError::Unsupported, got {other:?}"),
    }

    // The catalog survives and still answers queries afterwards.
    let out = tsq_service::Engine::execute(&shared, "FIND 3 NEAREST TO walks.s1 IN walks").unwrap();
    assert_eq!(out.rows.len(), 3);
}

#[test]
fn open_paged_rejects_double_attach_and_missing_snapshot() {
    let cat = catalog();
    let path = temp_path("double.tsq");
    cat.save(&path).unwrap();
    let mut paged = Catalog::new();
    paged.open_paged(&path, 8).unwrap();
    // A second paged open collides with the already-restored relations
    // (same duplicate-name rules as plain `open`).
    assert!(paged.open_paged(&path, 8).is_err());
    // A missing snapshot is a typed error, not a panic, and leaves the
    // catalog untouched.
    let mut fresh = Catalog::new();
    assert!(fresh
        .open_paged(&temp_path("does-not-exist.tsq"), 8)
        .is_err());
    assert!(fresh.relation_names().is_empty());
}
