//! Golden-text `EXPLAIN` snapshot tests.
//!
//! Each test pins the full rendered plan for a deterministic catalog, so
//! any change to the planner's cost model, operator choice or rendering
//! shows up as a reviewable diff in this file rather than as a silent
//! behavior change.

use tsq_core::SeriesRelation;
use tsq_lang::Catalog;
use tsq_series::generate::RandomWalkGenerator;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let rel = SeriesRelation::from_series("walks", RandomWalkGenerator::new(51).relation(60, 32))
        .unwrap();
    cat.register(rel).unwrap();
    cat
}

fn explain(cat: &Catalog, query: &str) -> String {
    cat.run(query)
        .unwrap_or_else(|e| panic!("{query}: {e}"))
        .explain
        .expect("EXPLAIN output carries the rendered plan")
}

#[test]
fn golden_selective_range_picks_index() {
    let cat = catalog();
    assert_eq!(
        explain(&cat, "EXPLAIN FIND SIMILAR TO walks.s0 IN walks WITHIN 0.5"),
        "\
Range on \"walks\": eps=0.5, transform=identity
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => IndexRange  (cost 3.0: disk 3.0, cpu 0.0; nodes 3.0, candidates 0.0, refines 0.0)
     considered: IndexRange 3.0 | EarlyAbandonScan 60.1 | SeqScan 60.5
"
    );
}

#[test]
fn golden_unselective_range_picks_scan() {
    let cat = catalog();
    assert_eq!(
        explain(&cat, "EXPLAIN FIND SIMILAR TO walks.s0 IN walks WITHIN 20"),
        "\
Range on \"walks\": eps=20, transform=identity
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => EarlyAbandonScan  (cost 60.1: disk 60.0, cpu 0.1; nodes 0.0, candidates 60.0, refines 60.0)
     considered: IndexRange 63.5 | EarlyAbandonScan 60.1 | SeqScan 60.5
"
    );
}

#[test]
fn golden_knn_with_transform() {
    let cat = catalog();
    assert_eq!(
        explain(
            &cat,
            "EXPLAIN FIND 4 NEAREST TO walks.s3 IN walks APPLY mavg(4)"
        ),
        "\
Knn on \"walks\": k=4, transform=mavg(4)
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => IndexKnn  (cost 11.2: disk 11.0, cpu 0.2; nodes 3.0, candidates 8.0, refines 8.0)
     considered: IndexKnn 11.2 | SeqScan 60.9
"
    );
}

#[test]
fn golden_join_auto_and_forced() {
    let cat = catalog();
    // Un-hinted: the planner picks the early-abandoning scan join here
    // (60 records beat ~390 candidate fetches).
    assert_eq!(
        explain(&cat, "EXPLAIN JOIN walks WITHIN 1.5 APPLY mavg(4)"),
        "\
Join on \"walks\": eps=1.5, transform=mavg(4)
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => JoinScan  (cost 66.9: disk 60.0, cpu 6.9; nodes 0.0, candidates 1770.0, refines 1770.0)
     considered: JoinIndex 575.6 | JoinTree 398.5 | JoinScan 66.9 | JoinScan(full) 87.7
"
    );
    // USING demotes to an override hint: the method runs even though the
    // estimate says it is costlier, and the plan is marked [forced].
    assert_eq!(
        explain(&cat, "EXPLAIN JOIN walks WITHIN 1.5 APPLY mavg(4) USING TREE"),
        "\
Join on \"walks\": eps=1.5, transform=mavg(4), using TREE
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => JoinTree [forced]  (cost 398.5: disk 392.4, cpu 6.1; nodes 5.0, candidates 387.4, refines 387.4)
     considered: JoinIndex 575.6 | JoinTree 398.5 | JoinScan 66.9 | JoinScan(full) 87.7
"
    );
}

#[test]
fn golden_subseq_cold_then_cached() {
    let cat = catalog();
    // Cold: no cached ST-index — the plan says so and estimates coarsely.
    assert_eq!(
        explain(
            &cat,
            "EXPLAIN FIND SUBSEQUENCE OF walks.s2 IN walks WITHIN 2 WINDOW 32"
        ),
        "\
SubseqRange on \"walks\": eps=2, window=32
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => SubseqIndexProbe [cold: builds ST-index]  (cost 4.5: disk 4.0, cpu 0.5; nodes 1.0, candidates 3.0, refines 3.0)
     considered: SubseqIndexProbe 4.5
"
    );
    // EXPLAIN never executes: the cache is still cold.
    assert_eq!(cat.subseq_cache_len(), 0);
    // Run the query (builds + caches), then the plan reflects the real
    // trail tree.
    cat.run("FIND SUBSEQUENCE OF walks.s2 IN walks WITHIN 2 WINDOW 32")
        .unwrap();
    assert_eq!(cat.subseq_cache_len(), 1);
    assert_eq!(
        explain(
            &cat,
            "EXPLAIN FIND SUBSEQUENCE OF walks.s2 IN walks WITHIN 2 WINDOW 32"
        ),
        "\
SubseqRange on \"walks\": eps=2, window=32
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => SubseqIndexProbe  (cost 1.9: disk 1.9, cpu 0.0; nodes 1.9, candidates 0.0, refines 0.0)
     considered: SubseqIndexProbe 1.9
"
    );
}

#[test]
fn golden_explain_analyze_appends_actuals() {
    let cat = catalog();
    assert_eq!(
        explain(
            &cat,
            "EXPLAIN ANALYZE FIND SIMILAR TO walks.s0 IN walks WITHIN 0.5"
        ),
        "\
Range on \"walks\": eps=0.5, transform=identity
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => IndexRange  (cost 3.0: disk 3.0, cpu 0.0; nodes 3.0, candidates 0.0, refines 0.0)
     considered: IndexRange 3.0 | EarlyAbandonScan 60.1 | SeqScan 60.5
     actual: rows=1, nodes=3, candidates=1, refined=1, false_hits=0, disk=4
"
    );
}

#[test]
fn golden_windowed_range() {
    let cat = catalog();
    assert_eq!(
        explain(
            &cat,
            "EXPLAIN ANALYZE FIND SIMILAR TO walks.s0 IN walks WITHIN 2 WHERE MEAN BETWEEN -1 AND 1"
        ),
        "\
Range on \"walks\": eps=2, transform=identity, where mean in [-1, 1]
  relation: 60 series x 32 points; index: 6-d R*-tree, height 2, 3 node(s)
  => IndexRange  (cost 3.5: disk 3.5, cpu 0.0; nodes 2.0, candidates 1.5, refines 1.5)
     considered: IndexRange 3.5 | EarlyAbandonScan 60.1 | SeqScan 60.5
     actual: rows=0, nodes=1, candidates=0, refined=0, false_hits=0, disk=1
"
    );
}

#[test]
fn explain_errors_are_typed() {
    let cat = catalog();
    // Planning validates like execution: a wrong-length subsequence query
    // fails EXPLAIN with the same typed error.
    assert!(cat
        .run("EXPLAIN FIND SUBSEQUENCE OF walks.s2 IN walks WITHIN 2 WINDOW 16")
        .is_err());
    assert!(cat
        .run("EXPLAIN FIND SIMILAR TO walks.s0 IN nope WITHIN 1")
        .is_err());
}
