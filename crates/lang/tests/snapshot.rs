//! Catalog snapshot semantics: round-trip fidelity, atomic
//! collision-checked restore (the PR-4 bugfix), LRU cache persistence,
//! and typed rejection of corrupt / truncated / wrong-version /
//! wrong-endian / bit-flipped snapshots — never a panic.

use std::path::PathBuf;

use tsq_core::{Error, SeriesRelation};
use tsq_lang::{Catalog, LangError};
use tsq_series::generate::{RandomWalkGenerator, StockGenerator};
use tsq_store::StoreError;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsq-snapshot-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series("walks", RandomWalkGenerator::new(41).relation(40, 32))
            .unwrap(),
    )
    .unwrap();
    cat.register(
        SeriesRelation::from_series("stocks", StockGenerator::new(42).relation(25, 32)).unwrap(),
    )
    .unwrap();
    cat
}

/// The whole language surface, exercised against one catalog.
fn workload() -> Vec<String> {
    vec![
        "FIND SIMILAR TO walks.s1 IN walks WITHIN 2.5".into(),
        "FIND SIMILAR TO walks.s0 IN walks WITHIN 5 APPLY mavg(4)".into(),
        "FIND 6 NEAREST TO stocks.s3 IN stocks".into(),
        "FIND 4 NEAREST TO walks.s2 IN walks APPLY reverse".into(),
        "JOIN stocks WITHIN 1.5 APPLY mavg(4) USING INDEX".into(),
        "JOIN walks WITHIN 1.0 USING TREE".into(),
        "FIND SUBSEQUENCE OF walks.s5 IN walks WITHIN 40 WINDOW 32".into(),
        "FIND 3 NEAREST SUBSEQUENCE OF stocks.s1 IN stocks WINDOW 32".into(),
    ]
}

#[test]
fn save_open_round_trip_preserves_every_query_form() {
    let cat = catalog();
    // Prime the subsequence cache so the snapshot carries ST-indexes.
    for q in workload() {
        cat.run(&q).unwrap();
    }
    let want: Vec<_> = workload().iter().map(|q| cat.run(q).unwrap()).collect();
    let path = temp_path("roundtrip.tsq");
    let bytes = cat.save(&path).unwrap();
    assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());

    let mut fresh = Catalog::new();
    let restored = fresh.open(&path).unwrap();
    assert_eq!(restored, vec!["stocks".to_string(), "walks".to_string()]);
    // The cached ST-indexes came along, no rebuild needed.
    assert_eq!(fresh.subseq_cache_len(), cat.subseq_cache_len());
    for (q, want) in workload().iter().zip(&want) {
        let got = fresh.run(q).unwrap();
        assert_eq!(&got, want, "{q}: restored catalog must answer identically");
    }
}

#[test]
fn save_open_save_is_byte_identical() {
    let cat = catalog();
    cat.run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 10 WINDOW 32")
        .unwrap();
    let first = cat.snapshot_bytes().unwrap();
    let mut fresh = Catalog::new();
    fresh.restore_bytes(&first).unwrap();
    let second = fresh.snapshot_bytes().unwrap();
    assert_eq!(
        first, second,
        "canonical encoding must survive a round trip"
    );
}

#[test]
fn load_builds_a_fresh_catalog() {
    let cat = catalog();
    let path = temp_path("load.tsq");
    cat.save(&path).unwrap();
    let loaded = Catalog::load(&path).unwrap();
    assert_eq!(loaded.relation_names(), vec!["stocks", "walks"]);
    let a = cat.run("FIND 3 NEAREST TO walks.s7 IN walks").unwrap();
    let b = loaded.run("FIND 3 NEAREST TO walks.s7 IN walks").unwrap();
    assert_eq!(a, b);
}

#[test]
fn name_collision_is_a_typed_error_and_restore_is_atomic() {
    let cat = catalog();
    let path = temp_path("collision.tsq");
    cat.save(&path).unwrap();

    // Target catalog already has a different "walks" plus its own cache
    // entry and an unrelated relation.
    let mut target = Catalog::new();
    target
        .register(
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(99).relation(5, 16))
                .unwrap(),
        )
        .unwrap();
    target
        .register(
            SeriesRelation::from_series("other", RandomWalkGenerator::new(98).relation(4, 16))
                .unwrap(),
        )
        .unwrap();
    target
        .run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 100 WINDOW 16")
        .unwrap();
    let cache_before = target.subseq_cache_keys();
    let walks_before = target
        .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 100")
        .unwrap();

    let err = target.open(&path).unwrap_err();
    assert!(
        matches!(
            err,
            LangError::Engine(Error::Store(StoreError::DuplicateRelation { ref name }))
                if name == "walks"
        ),
        "{err:?}"
    );

    // Atomicity: nothing was merged — not even the non-colliding
    // "stocks" relation — and the cache is untouched.
    assert_eq!(target.relation_names(), vec!["other", "walks"]);
    assert!(target.run("FIND 1 NEAREST TO stocks.s0 IN stocks").is_err());
    assert_eq!(target.subseq_cache_keys(), cache_before);
    assert_eq!(
        target
            .run("FIND SIMILAR TO walks.s0 IN walks WITHIN 100")
            .unwrap(),
        walks_before,
        "the pre-existing relation must keep answering from its own data"
    );
}

#[test]
fn collision_failure_does_not_clobber_cache_invalidation() {
    // Regression: a failed open must leave the PR-3 invalidation logic
    // fully working — re-registering a relation afterwards still evicts
    // its cached ST-indexes.
    let cat = catalog();
    let path = temp_path("collision-invalidate.tsq");
    cat.save(&path).unwrap();

    let mut target = Catalog::new();
    target
        .register(
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(7).relation(6, 16))
                .unwrap(),
        )
        .unwrap();
    target
        .run("FIND SUBSEQUENCE OF walks.s0 IN walks WITHIN 100 WINDOW 16")
        .unwrap();
    assert_eq!(target.subseq_cache_len(), 1);
    assert!(target.open(&path).is_err());
    assert_eq!(
        target.subseq_cache_len(),
        1,
        "failed open must not touch the cache"
    );
    // Re-registration still invalidates.
    target
        .register(
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(8).relation(6, 16))
                .unwrap(),
        )
        .unwrap();
    assert_eq!(target.subseq_cache_len(), 0);
}

#[test]
fn lru_order_survives_the_round_trip() {
    fn probe(w: usize) -> String {
        let vals: Vec<String> = (0..w).map(|i| format!("{i}")).collect();
        format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 100 WINDOW {w}",
            vals.join(", ")
        )
    }
    let mut cat = catalog();
    cat.set_subseq_cache_capacity(3);
    for w in [4usize, 5, 6] {
        cat.run(&probe(w)).unwrap();
    }
    // Touch 4 so the recency order is 5 < 6 < 4.
    cat.run(&probe(4)).unwrap();
    let want: Vec<(String, usize)> = [5usize, 6, 4]
        .iter()
        .map(|&w| ("walks".to_string(), w))
        .collect();
    assert_eq!(cat.subseq_cache_keys(), want);

    let bytes = cat.snapshot_bytes().unwrap();
    let mut fresh = Catalog::new();
    fresh.set_subseq_cache_capacity(3);
    fresh.restore_bytes(&bytes).unwrap();
    assert_eq!(
        fresh.subseq_cache_keys(),
        want,
        "recency order must survive"
    );
    // The restored LRU keeps evicting in the same order: a new window
    // evicts 5 (the least recent), not 4.
    fresh.run(&probe(7)).unwrap();
    let keys = fresh.subseq_cache_keys();
    assert_eq!(keys.len(), 3);
    assert!(!keys.contains(&("walks".to_string(), 5)), "{keys:?}");
    assert!(keys.contains(&("walks".to_string(), 4)));
    assert!(keys.contains(&("walks".to_string(), 7)));
}

#[test]
fn restore_respects_a_smaller_capacity() {
    let cat = catalog();
    for w in [4usize, 5, 6, 7] {
        let vals: Vec<String> = (0..w).map(|i| format!("{i}")).collect();
        cat.run(&format!(
            "FIND SUBSEQUENCE OF [{}] IN walks WITHIN 100 WINDOW {w}",
            vals.join(", ")
        ))
        .unwrap();
    }
    assert_eq!(cat.subseq_cache_len(), 4);
    let bytes = cat.snapshot_bytes().unwrap();
    let mut small = Catalog::new();
    small.set_subseq_cache_capacity(2);
    small.restore_bytes(&bytes).unwrap();
    // Only the two most recent entries survive the replay.
    assert_eq!(
        small.subseq_cache_keys(),
        vec![("walks".to_string(), 6), ("walks".to_string(), 7)]
    );
}

#[test]
fn corrupt_inputs_are_typed_errors() {
    let cat = catalog();
    let good = cat.snapshot_bytes().unwrap();

    // Truncations at every length (sampled for speed).
    for cut in (0..good.len()).step_by(211) {
        let mut fresh = Catalog::new();
        let err = fresh.restore_bytes(&good[..cut]);
        assert!(err.is_err(), "cut at {cut} restored");
        assert!(
            fresh.relation_names().is_empty(),
            "cut at {cut} mutated the catalog"
        );
    }

    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(
        Catalog::new().restore_bytes(&bad).unwrap_err(),
        LangError::Engine(Error::Store(StoreError::BadMagic))
    ));

    // Future format version.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        Catalog::new().restore_bytes(&bad).unwrap_err(),
        LangError::Engine(Error::Store(StoreError::UnsupportedVersion {
            got: 7,
            supported: tsq_store::FORMAT_VERSION
        }))
    ));

    // Byte-swapped endianness marker.
    let mut bad = good.clone();
    bad[12..16].reverse();
    assert!(matches!(
        Catalog::new().restore_bytes(&bad).unwrap_err(),
        LangError::Engine(Error::Store(StoreError::WrongEndian))
    ));

    // A flipped payload byte fails the checksum.
    let mut bad = good.clone();
    let mid = 24 + (good.len() - 28) / 2;
    bad[mid] ^= 0x10;
    assert!(matches!(
        Catalog::new().restore_bytes(&bad).unwrap_err(),
        LangError::Engine(Error::Store(StoreError::ChecksumMismatch { .. }))
    ));

    // Missing file.
    assert!(matches!(
        Catalog::new()
            .open(&temp_path("does-not-exist.tsq"))
            .unwrap_err(),
        LangError::Engine(Error::Store(StoreError::Io(_)))
    ));
}

#[test]
fn bit_flips_never_panic_even_past_the_checksum() {
    // Flip bits in the *payload* and re-seal so the checksum passes:
    // this drives corrupt bytes into the structural validators, which
    // must reject (or, for benign flips like a mutated f64 payload bit,
    // accept) without ever panicking.
    let mut cat = Catalog::new();
    cat.register(
        SeriesRelation::from_series("w", RandomWalkGenerator::new(3).relation(6, 16)).unwrap(),
    )
    .unwrap();
    cat.run("FIND SUBSEQUENCE OF w.s0 IN w WITHIN 100 WINDOW 16")
        .unwrap();
    let sealed = cat.snapshot_bytes().unwrap();
    let payload = tsq_store::unseal(&sealed).unwrap().to_vec();
    let mut attempts = 0usize;
    let mut rejected = 0usize;
    for byte in (0..payload.len()).step_by(13) {
        for bit in 0..8 {
            let mut bad = payload.clone();
            bad[byte] ^= 1 << bit;
            let resealed = tsq_store::seal(&bad);
            attempts += 1;
            // Must return — Ok for benign flips, Err for structural ones —
            // and must never panic (a panic fails this whole test).
            if Catalog::new().restore_bytes(&resealed).is_err() {
                rejected += 1;
            }
        }
    }
    assert!(attempts > 100, "fuzz loop must actually run ({attempts})");
    assert!(
        rejected > attempts / 10,
        "structural validation rejected only {rejected}/{attempts} flips"
    );
}

#[test]
fn empty_catalog_round_trips() {
    let cat = Catalog::new();
    let bytes = cat.snapshot_bytes().unwrap();
    let mut fresh = Catalog::new();
    assert!(fresh.restore_bytes(&bytes).unwrap().is_empty());
    assert!(fresh.relation_names().is_empty());
}

#[test]
fn restored_catalog_keeps_serving_after_mutation() {
    // A restored catalog is a first-class catalog: registration,
    // invalidation and further snapshots all keep working.
    let cat = catalog();
    cat.run("FIND SUBSEQUENCE OF walks.s1 IN walks WITHIN 10 WINDOW 32")
        .unwrap();
    let path = temp_path("mutate-after.tsq");
    cat.save(&path).unwrap();
    let mut restored = Catalog::load(&path).unwrap();
    assert_eq!(restored.subseq_cache_len(), 1);
    // Replacing walks invalidates its restored cache entry.
    restored
        .register(
            SeriesRelation::from_series("walks", RandomWalkGenerator::new(77).relation(8, 32))
                .unwrap(),
        )
        .unwrap();
    assert_eq!(restored.subseq_cache_len(), 0);
    assert!(restored
        .run("FIND SUBSEQUENCE OF walks.s1 IN walks WITHIN 10 WINDOW 32")
        .is_ok());
    // And the mutated catalog snapshots cleanly again.
    let path2 = temp_path("mutate-after-2.tsq");
    restored.save(&path2).unwrap();
    let again = Catalog::load(&path2).unwrap();
    assert_eq!(again.relation_names(), vec!["stocks", "walks"]);
}
