//! Smoke tests for the `tsq` shell binary: `--help`, a tiny generate +
//! query session, and rejection of unknown arguments.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_tsq");

#[test]
fn help_prints_grammar() {
    let out = Command::new(BIN).arg("--help").output().expect("run tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("meta-commands"), "missing help text: {stdout}");
    assert!(stdout.contains("FIND SIMILAR TO"), "missing grammar: {stdout}");
}

#[test]
fn unknown_argument_is_rejected() {
    let out = Command::new(BIN).arg("--bogus").output().expect("run tsq");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");
}

#[test]
fn tiny_session_generates_and_queries() {
    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b".gen w rw 8 16 1\n\
              FIND 2 NEAREST TO w.s0 IN w\n\
              .rel\n\
              .quit\n",
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("registered w (8 series)"), "stdout: {stdout}");
    assert!(stdout.contains("D = "), "query produced no rows: {stdout}");
    assert!(
        stdout.contains("w: 8 series of length 16"),
        ".rel listing missing: {stdout}"
    );
}
