//! Smoke tests for the `tsq` shell binary: `--help`, a tiny generate +
//! query session, rejection of unknown arguments, thread-count clamping
//! in `.batch`, and the `.serve` / `--serve` service modes.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_tsq");

/// Streams a child's stdout line-by-line through a channel so a test can
/// react to output (e.g. the announced server address) while the shell
/// is still running.
fn stdout_lines(child: &mut Child) -> mpsc::Receiver<String> {
    let stdout = child.stdout.take().expect("child stdout");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

/// Waits for the line announcing the serving address and extracts it.
fn wait_for_addr(rx: &mpsc::Receiver<String>) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        let line = rx.recv_timeout(left).expect("server never announced");
        if let Some(at) = line.find("serving on ") {
            let rest = &line[at + "serving on ".len()..];
            return rest.split_whitespace().next().unwrap().to_string();
        }
    }
}

#[test]
fn help_prints_grammar() {
    let out = Command::new(BIN).arg("--help").output().expect("run tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("meta-commands"),
        "missing help text: {stdout}"
    );
    assert!(
        stdout.contains("FIND SIMILAR TO"),
        "missing grammar: {stdout}"
    );
}

#[test]
fn unknown_argument_is_rejected() {
    let out = Command::new(BIN).arg("--bogus").output().expect("run tsq");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");
}

#[test]
fn snapshot_flag_restores_a_saved_catalog() {
    let dir = std::env::temp_dir().join(format!("tsq-bin-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("session.tsq");
    let path_str = path.to_str().unwrap();

    // Session 1: generate, query, snapshot.
    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            format!(".gen w rw 8 16 1\nFIND 2 NEAREST TO w.s0 IN w\n.save {path_str}\n.quit\n")
                .as_bytes(),
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let first = String::from_utf8(out.stdout).unwrap();
    assert!(first.contains("snapshot: 1 relation(s)"), "{first}");

    // Session 2: a fresh process restores the snapshot via the flag and
    // answers the same query identically.
    let mut child = Command::new(BIN)
        .arg("--snapshot")
        .arg(path_str)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq --snapshot");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"FIND 2 NEAREST TO w.s0 IN w\n.rel\n.quit\n")
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let second = String::from_utf8(out.stdout).unwrap();
    assert!(second.contains("restored 1 relation(s)"), "{second}");
    assert!(second.contains("w: 8 series of length 16"), "{second}");
    let rows = |s: &str| -> Vec<String> {
        s.lines()
            .map(|l| l.trim_start_matches("tsq> ").to_string())
            .filter(|l| l.contains("D = "))
            .collect()
    };
    assert_eq!(
        rows(&first),
        rows(&second),
        "answers must survive the restart"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_flag_rejects_a_missing_file() {
    let out = Command::new(BIN)
        .arg("--snapshot")
        .arg("/nonexistent/nope.tsq")
        .output()
        .expect("run tsq");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("cannot restore snapshot"),
        "stderr: {stderr}"
    );

    // And the flag without a path is a usage error.
    let out = Command::new(BIN)
        .arg("--snapshot")
        .output()
        .expect("run tsq");
    assert!(!out.status.success());
}

#[test]
fn batch_thread_counts_are_clamped_not_obeyed() {
    // Regression: `.batch <file> 1000000` used to hand the request
    // straight to the worker pool, which would try to spawn a million OS
    // threads. The executor now clamps, and the shell says so.
    let dir = std::env::temp_dir().join(format!("tsq-batch-clamp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let batch_path = dir.join("queries.txt");
    std::fs::write(
        &batch_path,
        "FIND 2 NEAREST TO w.s0 IN w\nFIND 2 NEAREST TO w.s1 IN w\n",
    )
    .expect("write batch file");

    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            format!(
                ".gen w rw 8 16 1\n.batch {} 1000000\n.quit\n",
                batch_path.to_str().unwrap()
            )
            .as_bytes(),
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("note: clamped 1000000 thread(s) to"),
        "clamp note missing: {stdout}"
    );
    assert!(
        stdout.contains("2 queries on") && stdout.contains("0 error(s)"),
        "batch summary missing: {stdout}"
    );
    // The summary reports the clamped count, never the request.
    assert!(
        !stdout.contains("1000000 thread(s),"),
        "summary still reports the unclamped count: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_meta_command_serves_queries_and_stops_on_enter() {
    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    let mut stdin = child.stdin.take().expect("child stdin");
    stdin
        .write_all(b".gen w rw 8 16 1\n.serve 127.0.0.1:0\n")
        .expect("write stdin");
    stdin.flush().ok();

    let rx = stdout_lines(&mut child);
    let addr = wait_for_addr(&rx);
    let mut client = tsq_service::Client::connect(&addr).expect("connect to .serve");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client.ping().expect("ping");
    let reply = client.query("FIND 2 NEAREST TO w.s0 IN w").expect("query");
    assert_eq!(reply.rows.len(), 2);
    assert_eq!(reply.rows[0].a, "s0");
    drop(client);

    // Enter stops the server; the catalog survives for the next command.
    stdin
        .write_all(b"\nFIND 2 NEAREST TO w.s0 IN w\n.quit\n")
        .expect("write stdin");
    stdin.flush().ok();
    drop(stdin);
    let status = child.wait().expect("wait tsq");
    assert!(status.success());
    let rest: Vec<String> = rx.iter().collect();
    let joined = rest.join("\n");
    assert!(joined.contains("server drained"), "{joined}");
    assert!(
        joined.contains("D = "),
        "catalog lost after .serve: {joined}"
    );
}

#[test]
fn serve_flag_runs_headless_until_remote_shutdown() {
    let mut child = Command::new(BIN)
        .arg("--serve")
        .arg("127.0.0.1:0")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq --serve");
    let rx = stdout_lines(&mut child);
    let addr = wait_for_addr(&rx);

    let mut client = tsq_service::Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client.ping().expect("ping");
    // An empty catalog still answers typed errors, not hangs.
    match client.query("FIND 1 NEAREST TO w.s0 IN w") {
        Err(tsq_service::ClientError::Remote(e)) => {
            assert_eq!(e.code, tsq_service::ErrorCode::BadQuery)
        }
        other => panic!("expected typed BadQuery, got {other:?}"),
    }
    client.shutdown().expect("remote shutdown");

    let status = child.wait().expect("wait tsq");
    assert!(status.success());
    let joined = rx.iter().collect::<Vec<_>>().join("\n");
    assert!(joined.contains("server drained"), "{joined}");
}

#[test]
fn append_and_ingest_keep_the_session_alive() {
    let dir = std::env::temp_dir().join(format!("tsq-append-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("tail.csv");
    // Catch-up rows for the three series the first APPEND left behind.
    std::fs::write(
        &csv,
        "s1, 1.0, 2.0\ns2, 0.5, -0.5\n# comment\ns3, 3.25, 4\n",
    )
    .unwrap();

    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            format!(
                ".gen w rw 4 16 1\n\
                 APPEND w s0 VALUES (1.5, 2.5)\n\
                 .rel\n\
                 .ingest w {}\n\
                 .rel\n\
                 FIND 2 NEAREST TO w.s0 IN w\n\
                 APPEND w s0 VALUES ()\n\
                 APPEND nowhere s0 VALUES (1)\n\
                 FIND 2 NEAREST TO w.s1 IN w\n\
                 .quit\n",
                csv.to_str().unwrap()
            )
            .as_bytes(),
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The single-series APPEND answers with the new length.
    assert!(stdout.contains("s0 @ 18   D = 2.0000"), "{stdout}");
    assert!(stdout.contains("plan Append"), "{stdout}");
    // Mid-ingest the relation is honestly reported as ragged ...
    assert!(
        stdout.contains("w: 4 series of lengths 16..18 (ragged mid-ingest)"),
        "{stdout}"
    );
    // ... and uniform again once `.ingest` catches the others up.
    assert!(
        stdout.contains("appended 6 point(s) across 3 series to w"),
        "{stdout}"
    );
    assert!(stdout.contains("w: 4 series of length 18"), "{stdout}");
    // Malformed and unresolvable APPENDs are errors, not session deaths:
    // the final query still answers.
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.matches("D = ").count() >= 4, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paged_catalog_rejects_append_in_the_shell() {
    let dir = std::env::temp_dir().join(format!("tsq-paged-append-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("paged.tsq");
    let snap_str = snap.to_str().unwrap();

    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(format!(".gen w rw 4 16 1\n.save {snap_str}\n.quit\n").as_bytes())
        .expect("write stdin");
    assert!(child.wait_with_output().expect("wait tsq").status.success());

    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            format!(
                ".open {snap_str} --paged 8\n\
                 APPEND w s0 VALUES (1.0)\n\
                 FIND 2 NEAREST TO w.s0 IN w\n\
                 .quit\n"
            )
            .as_bytes(),
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success(), "shell must survive the rejection");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // A typed error naming the cause — and the session keeps answering.
    assert!(
        stdout.contains("error:") && stdout.contains("paged"),
        "{stdout}"
    );
    assert!(stdout.contains("D = "), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tiny_session_generates_and_queries() {
    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b".gen w rw 8 16 1\n\
              FIND 2 NEAREST TO w.s0 IN w\n\
              .rel\n\
              .quit\n",
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("registered w (8 series)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("D = "), "query produced no rows: {stdout}");
    assert!(
        stdout.contains("w: 8 series of length 16"),
        ".rel listing missing: {stdout}"
    );
}
