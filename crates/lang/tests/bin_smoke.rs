//! Smoke tests for the `tsq` shell binary: `--help`, a tiny generate +
//! query session, and rejection of unknown arguments.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_tsq");

#[test]
fn help_prints_grammar() {
    let out = Command::new(BIN).arg("--help").output().expect("run tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("meta-commands"),
        "missing help text: {stdout}"
    );
    assert!(
        stdout.contains("FIND SIMILAR TO"),
        "missing grammar: {stdout}"
    );
}

#[test]
fn unknown_argument_is_rejected() {
    let out = Command::new(BIN).arg("--bogus").output().expect("run tsq");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");
}

#[test]
fn snapshot_flag_restores_a_saved_catalog() {
    let dir = std::env::temp_dir().join(format!("tsq-bin-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("session.tsq");
    let path_str = path.to_str().unwrap();

    // Session 1: generate, query, snapshot.
    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            format!(".gen w rw 8 16 1\nFIND 2 NEAREST TO w.s0 IN w\n.save {path_str}\n.quit\n")
                .as_bytes(),
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let first = String::from_utf8(out.stdout).unwrap();
    assert!(first.contains("snapshot: 1 relation(s)"), "{first}");

    // Session 2: a fresh process restores the snapshot via the flag and
    // answers the same query identically.
    let mut child = Command::new(BIN)
        .arg("--snapshot")
        .arg(path_str)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq --snapshot");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"FIND 2 NEAREST TO w.s0 IN w\n.rel\n.quit\n")
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let second = String::from_utf8(out.stdout).unwrap();
    assert!(second.contains("restored 1 relation(s)"), "{second}");
    assert!(second.contains("w: 8 series of length 16"), "{second}");
    let rows = |s: &str| -> Vec<String> {
        s.lines()
            .map(|l| l.trim_start_matches("tsq> ").to_string())
            .filter(|l| l.contains("D = "))
            .collect()
    };
    assert_eq!(
        rows(&first),
        rows(&second),
        "answers must survive the restart"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_flag_rejects_a_missing_file() {
    let out = Command::new(BIN)
        .arg("--snapshot")
        .arg("/nonexistent/nope.tsq")
        .output()
        .expect("run tsq");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("cannot restore snapshot"),
        "stderr: {stderr}"
    );

    // And the flag without a path is a usage error.
    let out = Command::new(BIN)
        .arg("--snapshot")
        .output()
        .expect("run tsq");
    assert!(!out.status.success());
}

#[test]
fn tiny_session_generates_and_queries() {
    let mut child = Command::new(BIN)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tsq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b".gen w rw 8 16 1\n\
              FIND 2 NEAREST TO w.s0 IN w\n\
              .rel\n\
              .quit\n",
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait tsq");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("registered w (8 series)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("D = "), "query produced no rows: {stdout}");
    assert!(
        stdout.contains("w: 8 series of length 16"),
        ".rel listing missing: {stdout}"
    );
}
