//! Errors of the query language.

use std::fmt;

/// Errors across the lex → parse → plan → execute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Tokenizer failure.
    Lex {
        /// Byte offset.
        pos: usize,
        /// Description.
        message: String,
    },
    /// Parser failure.
    Parse {
        /// Byte offset.
        pos: usize,
        /// Description.
        message: String,
    },
    /// Name-resolution failure (unknown relation, label, transformation).
    Resolve(String),
    /// Query-engine failure.
    Engine(tsq_core::Error),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            LangError::Parse { pos, message } => {
                write!(f, "parse error at byte {pos}: {message}")
            }
            LangError::Resolve(m) => write!(f, "resolution error: {m}"),
            LangError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<tsq_core::Error> for LangError {
    fn from(e: tsq_core::Error) -> Self {
        LangError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LangError::Parse {
            pos: 3,
            message: "expected TO".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        let e: LangError = tsq_core::Error::UnknownSeries(7).into();
        assert!(e.to_string().contains("unknown series"));
    }
}
