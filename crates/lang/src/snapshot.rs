//! Catalog persistence: [`Catalog::save`] / [`Catalog::open`] /
//! [`Catalog::load`] snapshot an entire catalog — every relation with its
//! labels, every whole-match [`SimilarityIndex`] (R\*-tree node structure
//! preserved byte-identically, never rebuilt), and the LRU cache of
//! subsequence ST-indexes in recency order — to a single `tsq-store` file.
//!
//! Sharded relations persist shard-per-section: the [`ShardSpec`]
//! (rule + boundaries), the membership lists, and one R\*-tree per shard,
//! so a restored catalog scatter-gathers over exactly the trees that were
//! saved. Per-shard ST-index caches are derived state and are rebuilt on
//! first use instead of being persisted.
//!
//! ## Guarantees
//!
//! - **Round-trip fidelity.** Every query form (range, k-NN, join,
//!   subsequence) on a restored catalog returns exactly the answers — and
//!   the same traversal statistics — as the catalog that was saved. The
//!   proptest suite in `tests/store_consistency.rs` asserts this across
//!   randomized catalogs.
//! - **Atomic, collision-checked restore.** [`Catalog::open`] decodes the
//!   whole snapshot *before* touching the catalog; a relation name that is
//!   already registered aborts the restore with a typed
//!   [`StoreError::DuplicateRelation`] and leaves the catalog — including
//!   its subsequence-cache invalidation state — completely unchanged.
//! - **Typed failure.** Corrupt, truncated, wrong-version or wrong-endian
//!   files surface as [`LangError`]-wrapped [`StoreError`]s; no input can
//!   panic the shell.
//! - **Canonical bytes.** Relations are written in name order and cache
//!   entries in recency order, so `save → open → save` reproduces the
//!   original file byte for byte.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tsq_core::shard::{ShardBy, ShardMap, ShardSpec, ShardedIndex};
use tsq_core::{
    executor, store as core_store, RelationStats, SeriesRelation, SimilarityIndex, SubseqIndex,
};
use tsq_store::{read_payload, seal, unseal, write_file, Decoder, Encoder, StoreError};

use crate::error::LangError;
use crate::exec::{CacheSlot, CachedSubseq, Catalog, Indexed};

/// Everything one snapshot contains, decoded but not yet merged. The
/// catalog-level index configuration is decoded (and validated) too, but
/// only [`Catalog::load`] applies it — merging into an existing catalog
/// keeps that catalog's configuration.
struct DecodedSnapshot {
    /// `(name, relation, index, stats)` in the file's (sorted) order.
    /// Sharded relations carry no persisted stats — [`ShardedIndex`]
    /// recomputes its per-shard statistics deterministically on restore.
    relations: Vec<(String, SeriesRelation, Indexed, Option<RelationStats>)>,
    /// `(name, window, index)` in LRU order (least recent first).
    cache: Vec<(String, usize, SubseqIndex)>,
}

impl Catalog {
    /// The unsealed snapshot payload (no header/checksum frame yet).
    ///
    /// Every relation and cache entry is framed as a length-prefixed
    /// *section*, so restores can slice the payload cheaply and decode
    /// sections on the worker pool ([`executor::parallel_map`]) — the
    /// restart-latency path scales with the machine, like everything else
    /// in the engine.
    fn snapshot_payload(&self) -> Result<Vec<u8>, LangError> {
        let mut enc = Encoder::new();
        core_store::write_index_config(&mut enc, &self.config);
        let names = self.relation_names();
        enc.usize(names.len());
        for name in &names {
            let rel = &self.relations[name];
            let indexed = &self.indexes[name];
            let mut section = Encoder::new();
            section.str(name);
            section.usize(rel.len());
            for id in 0..rel.len() {
                section.str(rel.label(id).expect("label within len"));
            }
            match indexed {
                Indexed::Whole(index) => {
                    section.u8(RELATION_WHOLE);
                    // Paged relations reconstruct their node structure from
                    // the page file here, byte-identically to the in-memory
                    // form — the only fallible step of a snapshot.
                    index.write_to(&mut section).map_err(LangError::Engine)?;
                    // Planner statistics travel with the relation, so a
                    // restored catalog costs — and therefore chooses —
                    // plans identically.
                    let stats = self
                        .stats
                        .get(name)
                        .cloned()
                        .unwrap_or_else(|| RelationStats::from_index(index));
                    core_store::write_relation_stats(&mut section, &stats);
                }
                Indexed::Sharded(sharded) => {
                    section.u8(RELATION_SHARDED);
                    let map = sharded.map();
                    let spec = map.spec();
                    section.u8(match spec.by() {
                        ShardBy::Hash => SHARD_BY_HASH,
                        ShardBy::Range => SHARD_BY_RANGE,
                    });
                    section.usize(spec.count());
                    section.usize(spec.boundaries().len());
                    for boundary in spec.boundaries() {
                        section.str(boundary);
                    }
                    for shard in 0..spec.count() {
                        let members = map.members(shard);
                        section.usize(members.len());
                        for &global in members {
                            section.usize(global);
                        }
                    }
                    // Per-shard R*-trees travel whole (structure preserved
                    // byte-identically, like the unsharded form); per-shard
                    // statistics are recomputed on restore.
                    for part in sharded.parts() {
                        part.write_to(&mut section).map_err(LangError::Engine)?;
                    }
                }
            }
            enc.usize(section.len());
            enc.raw(&section.into_bytes());
        }
        // Cache entries in recency order (least recently used first), so
        // restoring replays them into an identical LRU ordering. The
        // series data is *not* repeated per cached index — a cached
        // ST-index's store always equals its relation's series, so only
        // the trails travel (SubseqIndex::write_trails_to). Per-shard
        // ST-indexes are cheap derived state and are *not* persisted;
        // they rebuild on first use after a restore.
        let cache = self.cache_read();
        let mut entries: Vec<(&(String, usize), &CacheSlot)> = cache
            .map
            .iter()
            .filter(|(_, slot)| slot.index.as_whole().is_some())
            .collect();
        entries.sort_by_key(|(key, slot)| (slot.last_used.load(Ordering::Relaxed), (*key).clone()));
        enc.usize(entries.len());
        for ((name, window), slot) in entries {
            let mut section = Encoder::new();
            section.str(name);
            section.usize(*window);
            slot.index
                .as_whole()
                .expect("filtered to whole entries")
                .write_trails_to(&mut section);
            enc.usize(section.len());
            enc.raw(&section.into_bytes());
        }
        Ok(enc.into_bytes())
    }

    /// Serializes the whole catalog into a sealed snapshot (header,
    /// payload, checksum) — the bytes [`Catalog::save`] writes to disk.
    ///
    /// # Errors
    /// [`LangError::Engine`] wrapping [`tsq_core::Error::Store`] when a
    /// paged relation's page file cannot be read back (in-memory catalogs
    /// cannot fail).
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, LangError> {
        Ok(seal(&self.snapshot_payload()?))
    }

    /// Writes a snapshot of the whole catalog to `path` (via a temporary
    /// sibling file renamed into place). Returns the file size in bytes.
    ///
    /// # Errors
    /// [`LangError::Engine`] wrapping [`tsq_core::Error::Store`] on I/O
    /// failure.
    pub fn save(&self, path: &Path) -> Result<u64, LangError> {
        write_file(path, &self.snapshot_payload()?).map_err(store_err)
    }

    /// Restores a snapshot (produced by [`Catalog::snapshot_bytes`] /
    /// [`Catalog::save`]) into this catalog, returning the restored
    /// relation names in sorted order.
    ///
    /// The merge is atomic: the snapshot is fully decoded and validated —
    /// including a check that no restored relation name is already
    /// registered — before the catalog is touched. On any error the
    /// catalog is left exactly as it was.
    ///
    /// # Errors
    /// Typed [`StoreError`]s (wrapped in [`LangError::Engine`]) for bad
    /// magic, unsupported versions, wrong endianness, checksum
    /// mismatches, truncation, structural corruption, and
    /// [`StoreError::DuplicateRelation`] for name collisions.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<Vec<String>, LangError> {
        let payload = unseal(bytes).map_err(store_err)?;
        self.restore_payload(payload)
    }

    /// Restores an already-unsealed payload (the frame — magic, version,
    /// endianness, checksum — has been validated by the caller).
    fn restore_payload(&mut self, payload: &[u8]) -> Result<Vec<String>, LangError> {
        let snapshot = decode_snapshot(payload).map_err(store_err)?;
        for (name, _, _, _) in &snapshot.relations {
            if self.relations.contains_key(name) {
                return Err(store_err(StoreError::DuplicateRelation {
                    name: name.clone(),
                }));
            }
        }
        let mut restored = Vec::with_capacity(snapshot.relations.len());
        for (name, relation, index, stats) in snapshot.relations {
            // Fresh names cannot have stale cache entries, but re-assert
            // the PR-3 invalidation invariant anyway: nothing keyed by a
            // name being (re-)introduced survives the registration.
            self.cache_write().map.retain(|(rel, _), _| rel != &name);
            self.relations.insert(name.clone(), relation);
            self.indexes.insert(name.clone(), index);
            // Sharded relations keep no catalog-level stats entry; their
            // per-shard statistics live inside the ShardedIndex.
            if let Some(stats) = stats {
                self.stats.insert(name.clone(), stats);
            } else {
                self.stats.remove(&name);
            }
            restored.push(name);
        }
        // Replay the cached ST-indexes least-recent-first with fresh
        // stamps: relative recency survives the round trip, and the
        // capacity bound applies exactly as if the entries had been built.
        for (name, window, index) in snapshot.cache {
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            let key = (name, window);
            let mut cache = self.cache_write();
            cache.map.insert(
                key.clone(),
                CacheSlot {
                    index: CachedSubseq::Whole(Arc::new(index)),
                    last_used: AtomicU64::new(stamp),
                },
            );
            while cache.map.len() > cache.capacity {
                let Some(victim) = Catalog::lru_key(&cache, Some(&key)) else {
                    break;
                };
                cache.map.remove(&victim);
            }
        }
        restored.sort();
        Ok(restored)
    }

    /// Reads and restores a snapshot file into this catalog (see
    /// [`Catalog::restore_bytes`] for the semantics).
    ///
    /// # Errors
    /// Same as [`Catalog::restore_bytes`], plus I/O failures.
    pub fn open(&mut self, path: &Path) -> Result<Vec<String>, LangError> {
        let payload = read_payload(path).map_err(store_err)?;
        self.restore_payload(&payload)
    }

    /// [`Catalog::open`] followed by attaching paged node storage to every
    /// restored relation: each whole-match R\*-tree is written to a
    /// sidecar page file next to the snapshot (`<path>.<relation>.pages`)
    /// and its in-memory nodes are dropped; queries then fetch nodes
    /// through a pin-counted LRU buffer pool, and their statistics carry
    /// *measured* `pool_hits`/`pool_misses`. The `budget_mib` pool budget
    /// (MiB, minimum 1) is split evenly across the restored relations.
    ///
    /// Planner statistics were persisted in the snapshot, so plan choices
    /// are identical to the in-memory catalog's. Paged relations are
    /// read-only until re-registered; [`Catalog::save`] still works (the
    /// node structure is read back from the page files).
    ///
    /// # Errors
    /// Same as [`Catalog::open`], plus I/O failures while writing or
    /// reopening the sidecar page files.
    pub fn open_paged(&mut self, path: &Path, budget_mib: usize) -> Result<Vec<String>, LangError> {
        let restored = self.open(path)?;
        let budget_bytes = (budget_mib.max(1) as u64) << 20;
        let per_relation = (budget_bytes / restored.len().max(1) as u64).max(1);
        let mut taken = std::collections::HashSet::new();
        // Distinct hostile names can sanitize to the same sidecar; suffix
        // until unique so one page file is never truncated out from under
        // another relation's open pool.
        let mut claim = |name: &str| {
            let mut sidecar = paged_sidecar(path, name, 0);
            let mut bump = 0usize;
            while !taken.insert(sidecar.clone()) {
                bump += 1;
                sidecar = paged_sidecar(path, name, bump);
            }
            sidecar
        };
        for name in &restored {
            match self.indexes.get_mut(name).expect("restored relation") {
                Indexed::Whole(index) => {
                    let sidecar = claim(name);
                    index
                        .attach_paged_budget(&sidecar, per_relation)
                        .map_err(LangError::Engine)?;
                }
                Indexed::Sharded(sharded) => {
                    // A sharded relation's slice of the pool budget splits
                    // further across its shards, one sidecar per shard.
                    let count = sharded.shard_count() as u64;
                    let per_shard = (per_relation / count.max(1)).max(1);
                    for (shard, part) in sharded.parts_mut().iter_mut().enumerate() {
                        let sidecar = claim(&format!("{name}.s{shard}"));
                        part.attach_paged_budget(&sidecar, per_shard)
                            .map_err(LangError::Engine)?;
                    }
                }
            }
        }
        Ok(restored)
    }

    /// Builds a fresh catalog from a snapshot file, adopting the
    /// snapshot's index configuration for future registrations.
    ///
    /// # Errors
    /// Same as [`Catalog::open`].
    pub fn load(path: &Path) -> Result<Catalog, LangError> {
        let payload = read_payload(path).map_err(store_err)?;
        let mut dec = Decoder::new(&payload);
        let config = core_store::read_index_config(&mut dec).map_err(store_err)?;
        let mut catalog = Catalog::with_config(config);
        catalog.restore_payload(&payload)?;
        Ok(catalog)
    }
}

/// Relation-section kind tags: a whole (unsharded) index followed by its
/// planner statistics, or a sharded relation (spec, membership, one index
/// per shard — statistics recomputed on restore).
const RELATION_WHOLE: u8 = 0;
const RELATION_SHARDED: u8 = 1;
/// [`ShardBy`] tags within a sharded relation section.
const SHARD_BY_HASH: u8 = 0;
const SHARD_BY_RANGE: u8 = 1;

fn store_err(e: StoreError) -> LangError {
    LangError::Engine(tsq_core::Error::Store(e))
}

/// Sidecar page-file path for one relation of a paged catalog. Relation
/// names are file-system-hostile in general, so everything outside
/// `[A-Za-z0-9_-]` is flattened to `_`; `bump > 0` disambiguates names
/// that collide after flattening.
fn paged_sidecar(snapshot: &Path, relation: &str, bump: usize) -> std::path::PathBuf {
    let safe: String = relation
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut os = snapshot.as_os_str().to_os_string();
    if bump == 0 {
        os.push(format!(".{safe}.pages"));
    } else {
        os.push(format!(".{safe}.{bump}.pages"));
    }
    std::path::PathBuf::from(os)
}

fn unwrap_core(e: tsq_core::Error) -> StoreError {
    match e {
        tsq_core::Error::Store(s) => s,
        other => StoreError::corrupt(format!("index restore failed: {other}")),
    }
}

/// Unwraps an order-preserving [`executor::parallel_map`] result set,
/// returning the first error in section order.
fn collect_sections<T>(results: Vec<Result<T, StoreError>>) -> Result<Vec<T>, StoreError> {
    results.into_iter().collect()
}

fn decode_snapshot(payload: &[u8]) -> Result<DecodedSnapshot, StoreError> {
    // Phase 1 (sequential, cheap): slice the payload into its
    // length-prefixed sections.
    let mut dec = Decoder::new(payload);
    let _config = core_store::read_index_config(&mut dec)?;
    let relation_count = dec.seq(8, "relation count")?;
    let mut rel_sections = Vec::with_capacity(relation_count);
    for _ in 0..relation_count {
        let len = dec.seq(1, "relation section length")?;
        rel_sections.push(dec.bytes(len, "relation section")?);
    }
    let cache_count = dec.seq(8, "subseq cache count")?;
    let mut cache_sections = Vec::with_capacity(cache_count);
    for _ in 0..cache_count {
        let len = dec.seq(1, "cache section length")?;
        cache_sections.push(dec.bytes(len, "cache section")?);
    }
    dec.finish()?;

    // Phase 2 (parallel): decode relation sections on the worker pool.
    let threads = executor::default_threads();
    let relations = collect_sections(executor::parallel_map(
        threads,
        rel_sections,
        decode_relation_section,
    ))?;
    for (i, (name, _, _, _)) in relations.iter().enumerate() {
        if relations[..i].iter().any(|(n, _, _, _)| n == name) {
            return Err(StoreError::corrupt(format!(
                "relation {name:?} appears twice in the snapshot"
            )));
        }
    }

    // Phase 3 (parallel): decode cached ST-indexes, which borrow their
    // stored series from the relations decoded in phase 2.
    let cache = collect_sections(executor::parallel_map(threads, cache_sections, |bytes| {
        decode_cache_section(bytes, &relations)
    }))?;
    for (i, (name, window, _)) in cache.iter().enumerate() {
        if cache[..i].iter().any(|(n, w, _)| n == name && w == window) {
            return Err(StoreError::corrupt(format!(
                "cache entry ({name:?}, {window}) appears twice in the snapshot"
            )));
        }
    }
    Ok(DecodedSnapshot { relations, cache })
}

fn decode_relation_section(
    bytes: &[u8],
) -> Result<(String, SeriesRelation, Indexed, Option<RelationStats>), StoreError> {
    let mut dec = Decoder::new(bytes);
    let name = dec.str("relation name")?;
    let label_count = dec.seq(8, "label count")?;
    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        labels.push(dec.str("series label")?);
    }
    let (indexed, stats) = match dec.u8("relation kind")? {
        RELATION_WHOLE => {
            let index = SimilarityIndex::read_from(&mut dec).map_err(unwrap_core)?;
            let stats = core_store::read_relation_stats(&mut dec)?;
            dec.finish()?;
            if index.len() != label_count {
                return Err(StoreError::corrupt(format!(
                    "relation {name:?} has {label_count} label(s) for {} series",
                    index.len()
                )));
            }
            if stats.cardinality != index.len() || stats.series_len != index.series_len() {
                return Err(StoreError::corrupt(format!(
                    "relation {name:?} stats describe {} series of length {}, \
                     index holds {} of length {}",
                    stats.cardinality,
                    stats.series_len,
                    index.len(),
                    index.series_len()
                )));
            }
            (Indexed::Whole(index), Some(stats))
        }
        RELATION_SHARDED => {
            let by = match dec.u8("shard rule")? {
                SHARD_BY_HASH => ShardBy::Hash,
                SHARD_BY_RANGE => ShardBy::Range,
                other => {
                    return Err(StoreError::corrupt(format!(
                        "relation {name:?} has unknown shard rule tag {other}"
                    )))
                }
            };
            let count = dec.seq(1, "shard count")?;
            let boundary_count = dec.seq(1, "shard boundary count")?;
            let mut boundaries = Vec::with_capacity(boundary_count);
            for _ in 0..boundary_count {
                boundaries.push(dec.str("shard boundary")?);
            }
            let spec = ShardSpec::from_parts(by, count, boundaries).map_err(unwrap_core)?;
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                let len = dec.seq(8, "shard member count")?;
                let mut shard = Vec::with_capacity(len);
                for _ in 0..len {
                    shard.push(dec.usize("shard member id")?);
                }
                members.push(shard);
            }
            let map = ShardMap::from_members(spec, members).map_err(unwrap_core)?;
            if map.total() != label_count {
                return Err(StoreError::corrupt(format!(
                    "relation {name:?} has {label_count} label(s) but its shard map \
                     assigns {}",
                    map.total()
                )));
            }
            let mut parts = Vec::with_capacity(count);
            for _ in 0..count {
                parts.push(SimilarityIndex::read_from(&mut dec).map_err(unwrap_core)?);
            }
            dec.finish()?;
            // from_parts re-validates membership against part sizes and
            // recomputes per-shard planner statistics deterministically.
            let sharded = ShardedIndex::from_parts(map, parts).map_err(unwrap_core)?;
            (Indexed::Sharded(sharded), None)
        }
        other => {
            return Err(StoreError::corrupt(format!(
                "relation {name:?} has unknown kind tag {other}"
            )))
        }
    };
    let items = labels
        .into_iter()
        .enumerate()
        .map(|(id, label)| {
            let series = match &indexed {
                Indexed::Whole(index) => index.series(id),
                Indexed::Sharded(sharded) => sharded.series(id),
            };
            (label, series.expect("id < len").clone())
        })
        .collect();
    let relation = SeriesRelation::from_labeled(&name, items)
        .map_err(|e| StoreError::corrupt(format!("relation {name:?} cannot be rebuilt: {e}")))?;
    Ok((name, relation, indexed, stats))
}

fn decode_cache_section(
    bytes: &[u8],
    relations: &[(String, SeriesRelation, Indexed, Option<RelationStats>)],
) -> Result<(String, usize, SubseqIndex), StoreError> {
    let mut dec = Decoder::new(bytes);
    let name = dec.str("cached relation name")?;
    let window = dec.usize("cached window")?;
    // Cached ST-indexes travel without their stored series (the
    // trails-only form): the owning relation's series *are* the store, so
    // hand them over instead of re-parsing a copy.
    let Some((_, relation, _, _)) = relations.iter().find(|(n, _, _, _)| n == &name) else {
        return Err(StoreError::corrupt(format!(
            "cached ST-index references unknown relation {name:?}"
        )));
    };
    let index =
        SubseqIndex::read_trails_from(&mut dec, relation.series().to_vec()).map_err(unwrap_core)?;
    dec.finish()?;
    if index.config().window != window {
        return Err(StoreError::corrupt(format!(
            "cached ST-index for window {window} was built for window {}",
            index.config().window
        )));
    }
    Ok((name, window, index))
}
